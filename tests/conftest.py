"""Shared fixtures: keep every test hermetic with respect to the result store.

The CLI enables the persistent result store by default, and the store
defaults to ``~/.cache/repro`` — exactly right for users, exactly wrong for
tests, which must neither read a developer's warm cache (a stale entry could
mask a timing regression) nor litter it.  Pointing ``REPRO_CACHE_DIR`` at a
*per-test* temporary directory makes every test run cold and independent of
test ordering by construction; tests that exercise the store itself build
their own :class:`~repro.store.ResultStore` on ``tmp_path`` anyway.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-store"))
