"""Unit tests for StallAccountant, TimingCore and MemoryFabric."""

import pytest

from repro.common.errors import ConfigurationError
from repro.engine import MemoryFabric, StallAccountant, TimingCore
from repro.isa.instruction import Instruction, MemoryOperand
from repro.isa.opcodes import Opcode
from repro.isa.registers import Register, RegisterClass
from repro.memory.model import MemoryModel
from repro.trace.record import DynamicInstruction


class TestStallAccountant:
    def test_stalls_accumulate_by_kind(self):
        stalls = StallAccountant()
        stalls.stall("dispatch", 3)
        stalls.stall("dispatch", 4)
        stalls.stall("fetch", 1)
        assert stalls.stalls("dispatch") == 7
        assert stalls.stalls("fetch") == 1
        assert stalls.stalls("unknown") == 0

    def test_negative_charges_clamp_to_zero(self):
        stalls = StallAccountant()
        stalls.stall("dispatch", -5)
        assert stalls.stalls("dispatch") == 0

    def test_categories_accumulate_and_copy(self):
        stalls = StallAccountant()
        stalls.account("vector_compute", 64)
        stalls.account("vector_compute", 36)
        stalls.account("scalar", 1)
        assert stalls.total("vector_compute") == 100
        copied = stalls.categories()
        copied["scalar"] = 999
        assert stalls.total("scalar") == 1


class TestTimingCore:
    def test_bump_only_extends(self):
        core = TimingCore()
        core.bump(10)
        core.bump(5)
        assert core.horizon == 10

    def test_finish_time_includes_pointers(self):
        core = TimingCore()
        core.bump(10)
        assert core.finish_time() == 10
        assert core.finish_time(25, 3) == 25

    def test_pools_are_registered_by_name(self):
        core = TimingCore()
        pool = core.add_pool("FU", count=2)
        assert core.pool("FU") is pool
        with pytest.raises(ConfigurationError, match="already exists"):
            core.add_pool("FU")
        with pytest.raises(ConfigurationError, match="unknown resource pool"):
            core.pool("LD")


def _scalar_load(address: int) -> DynamicInstruction:
    instruction = Instruction(
        opcode=Opcode.S_LOAD,
        destinations=(Register(RegisterClass.SCALAR, 0),),
        sources=(Register(RegisterClass.ADDRESS, 0),),
        memory=MemoryOperand(region="data"),
    )
    return DynamicInstruction(instruction=instruction, sequence=0, base_address=address)


def _scalar_store(address: int) -> DynamicInstruction:
    instruction = Instruction(
        opcode=Opcode.S_STORE,
        sources=(
            Register(RegisterClass.SCALAR, 0),
            Register(RegisterClass.ADDRESS, 0),
        ),
        memory=MemoryOperand(region="data"),
    )
    return DynamicInstruction(instruction=instruction, sequence=0, base_address=address)


class TestMemoryFabric:
    def test_scalar_load_miss_then_hit(self):
        fabric = MemoryFabric(MemoryModel(latency=50))
        miss = fabric.scalar_access(_scalar_load(0x1000))
        assert not miss.hit and miss.uses_port
        hit = fabric.scalar_access(_scalar_load(0x1000))
        assert hit.hit and not hit.uses_port

    def test_scalar_load_ready_latencies(self):
        fabric = MemoryFabric(MemoryModel(latency=50))
        miss = fabric.scalar_access(_scalar_load(0x1000))
        assert fabric.scalar_load_ready(miss, 10) == 10 + 1 + 50
        hit = fabric.scalar_access(_scalar_load(0x1000))
        assert fabric.scalar_load_ready(hit, 10) == 10 + 1  # hit latency 1

    def test_store_hit_stays_off_port_unless_write_through(self):
        fabric = MemoryFabric(MemoryModel(latency=1))
        fabric.scalar_access(_scalar_load(0x2000))  # allocate the line
        assert not fabric.scalar_access(_scalar_store(0x2000)).uses_port

        through = MemoryFabric(
            MemoryModel(latency=1), scalar_store_writes_through=True
        )
        through.scalar_access(_scalar_load(0x2000))
        assert through.scalar_access(_scalar_store(0x2000)).uses_port

    def test_bus_occupation_accumulates_traffic_and_port_time(self):
        fabric = MemoryFabric(MemoryModel(latency=1))
        record = _scalar_load(0x3000)
        start, end = fabric.occupy_scalar_bus(4, record)
        assert (start, end) == (4, 5)
        assert fabric.traffic_bytes == record.bytes_accessed
        assert fabric.port_free() == 5
        # The next reference waits for the single port.
        start, end = fabric.occupy_scalar_bus(0, record)
        assert start == 5

    def test_two_ports_overlap_references(self):
        fabric = MemoryFabric(MemoryModel(latency=1), ports=2)
        record = _scalar_load(0x4000)
        first, _ = fabric.occupy_scalar_bus(0, record)
        second, _ = fabric.occupy_scalar_bus(0, record)
        assert (first, second) == (0, 0)
        assert fabric.port_recorder().busy_time() == 1  # merged "any port busy"
