"""Same-cycle enqueue/dequeue ordering rules, pinned as regression tests.

The timestamp-arithmetic simulators never step cycles, so every "who goes
first within one cycle" question is answered by a convention baked into
:class:`~repro.dva.queues.TimedQueue`,
:class:`~repro.common.intervals.IntervalRecorder` and
:class:`~repro.engine.ResourcePool`.  The event core leans on exactly these
conventions when it registers wakeups (``slot_free_time`` et al.), so each
one is pinned here:

* a queue entry may be popped on the very cycle it was pushed (zero
  residency is legal), but never earlier;
* a queue slot is reusable on the cycle its entry is released — the blocking
  time is the pop cycle itself, not the cycle after;
* busy intervals are half-open ``[start, end)``: a resource handed over at a
  cycle boundary is busy each cycle exactly once, and zero-length intervals
  are no-ops rather than errors.
"""

import pytest

from repro.common.errors import SimulationError
from repro.common.intervals import Interval, IntervalRecorder
from repro.dva.queues import TimedQueue
from repro.engine import ResourcePool


class TestTimedQueueSameCycleRules:
    def test_pop_on_the_push_cycle_is_legal(self):
        queue = TimedQueue("iq", capacity=4)
        queue.push(5)
        queue.pop(5)
        assert queue.outstanding == 0

    def test_pop_before_the_push_cycle_raises(self):
        queue = TimedQueue("iq", capacity=4)
        queue.push(5)
        with pytest.raises(SimulationError, match="precedes push"):
            queue.pop(4)

    def test_slot_is_reusable_on_the_release_cycle_not_after(self):
        queue = TimedQueue("iq", capacity=1)
        queue.push(0)
        queue.pop(5)
        assert queue.slot_free_time() == 5
        assert queue.earliest_push(3) == 5
        assert queue.push(3) == 5  # accepted at the pop cycle, not 6

    def test_push_stall_charges_exactly_the_blocked_cycles(self):
        queue = TimedQueue("iq", capacity=1)
        queue.push(0)
        queue.pop(5)
        queue.push(3)
        assert queue.push_stall_cycles == 2

    def test_slot_free_time_is_zero_under_capacity(self):
        queue = TimedQueue("iq", capacity=2)
        queue.push(9)
        assert queue.slot_free_time() == 0

    def test_slot_free_time_matches_earliest_push_for_any_request(self):
        queue = TimedQueue("iq", capacity=1)
        queue.push(0)
        queue.pop(7)
        for requested in (0, 6, 7, 8, 20):
            assert queue.earliest_push(requested) == max(
                queue.slot_free_time(), requested
            )

    def test_slot_free_time_requires_the_consumer_to_have_run(self):
        # The event core registers slot_free_time as a wakeup; if the
        # consumer side has not been simulated yet that is a program-order
        # bug, and it must fail loudly on both cores with the same message.
        queue = TimedQueue("iq", capacity=1)
        queue.push(0)
        with pytest.raises(SimulationError, match="has not been released yet"):
            queue.slot_free_time()

    def test_same_cycle_push_then_pop_round_trip(self):
        # A full capacity-1 pipeline: every entry lives zero cycles and the
        # queue still accepts one entry per cycle with no stalls.
        queue = TimedQueue("iq", capacity=1)
        for cycle in range(4):
            assert queue.push(cycle) == cycle
            queue.pop(cycle)
        assert queue.push_stall_cycles == 0


class TestIntervalSameCycleRules:
    def test_zero_length_interval_is_ignored_not_an_error(self):
        recorder = IntervalRecorder("FU")
        recorder.record(5, 5)
        assert len(recorder) == 0
        assert recorder.busy_time() == 0

    def test_negative_interval_raises(self):
        recorder = IntervalRecorder("FU")
        with pytest.raises(SimulationError, match="before it starts"):
            recorder.record(5, 4)

    def test_boundary_handover_counts_each_cycle_once(self):
        recorder = IntervalRecorder("FU")
        recorder.record(0, 5)
        recorder.record(5, 8)
        assert recorder.merged_pairs() == [(0, 8)]
        assert recorder.busy_time() == 8

    def test_intervals_are_half_open_at_the_end(self):
        recorder = IntervalRecorder("FU")
        recorder.record(0, 5)
        assert recorder.busy_at(4)
        assert not recorder.busy_at(5)
        assert not Interval(0, 5).overlaps(Interval(5, 8))

    def test_last_end_is_the_handover_cycle(self):
        recorder = IntervalRecorder("FU")
        recorder.record(2, 6)
        assert recorder.last_end() == 6


class TestResourcePoolSameCycleRules:
    def test_unit_is_reacquirable_on_its_free_cycle(self):
        pool = ResourcePool("LD", 1)
        assert pool.acquire(0, 5) == (0, 0)
        # The next acquisition starts on the cycle the unit frees, not after.
        start, unit = pool.acquire(0, 3)
        assert (start, unit) == (5, 0)
        assert pool.free[0] == 8

    def test_occupy_then_acquire_agree_on_the_boundary(self):
        pool = ResourcePool("LD", 1)
        pool.occupy(0, 5)
        assert pool.free[0] == 5
        start, _unit = pool.acquire(5, 2)
        assert start == 5
        assert pool.free[0] == 7
