"""Unit tests for the engine scoreboard (register availability tracking)."""

from repro.engine import Scoreboard
from repro.isa.registers import Register, RegisterClass


def v(number: int) -> Register:
    return Register(RegisterClass.VECTOR, number)


def s(number: int) -> Register:
    return Register(RegisterClass.SCALAR, number)


class TestOwnerlessScoreboard:
    """The reference machine's usage: ready + chain_start, no ownership."""

    def test_unwritten_register_is_ready_at_cycle_zero(self):
        board = Scoreboard()
        assert board.read(v(1)) == 0

    def test_write_sets_ready(self):
        board = Scoreboard()
        board.write(v(1), 42)
        assert board.read(v(1)) == 42

    def test_chain_start_served_only_when_asked(self):
        board = Scoreboard()
        board.write(v(1), 100, chain_start=54)
        assert board.read(v(1)) == 100
        assert board.read(v(1), allow_chain=True) == 54

    def test_chain_request_without_chainable_producer_waits_for_ready(self):
        board = Scoreboard()
        board.write(v(1), 100)  # chain_start=None: not chainable
        assert board.read(v(1), allow_chain=True) == 100

    def test_rewrite_clears_stale_chain_start(self):
        """Every write resolves chainability anew — a scalar producer after a
        chainable one must not leave the old chain_start behind."""
        board = Scoreboard()
        board.write(v(1), 100, chain_start=54)
        board.write(v(1), 200)
        assert board.read(v(1), allow_chain=True) == 200


class TestOwnedScoreboard:
    """The decoupled machine's usage: ownership and cross-processor delay."""

    def test_default_owner_assigned_on_first_touch(self):
        board = Scoreboard(default_owner=lambda r: r.register_class)
        assert board.entry(s(3)).owner is RegisterClass.SCALAR

    def test_local_read_ignores_cross_delay(self):
        board = Scoreboard(default_owner=lambda r: r.register_class)
        board.write(s(1), 10, owner=RegisterClass.SCALAR)
        assert board.read(s(1), consumer=RegisterClass.SCALAR, cross_delay=5) == 10

    def test_remote_read_pays_cross_delay(self):
        board = Scoreboard(default_owner=lambda r: r.register_class)
        board.write(s(1), 10, owner=RegisterClass.SCALAR)
        assert board.read(s(1), consumer=RegisterClass.ADDRESS, cross_delay=5) == 15

    def test_chaining_is_local_only(self):
        board = Scoreboard(default_owner=lambda r: r.register_class)
        board.write(v(1), 100, chain_start=54, owner=RegisterClass.VECTOR)
        local = board.read(
            v(1), consumer=RegisterClass.VECTOR, allow_chain=True, cross_delay=1
        )
        remote = board.read(
            v(1), consumer=RegisterClass.ADDRESS, allow_chain=True, cross_delay=1
        )
        assert local == 54
        assert remote == 101

    def test_write_without_owner_keeps_current_owner(self):
        board = Scoreboard(default_owner=lambda r: r.register_class)
        board.write(s(1), 10, owner=RegisterClass.ADDRESS)
        board.write(s(1), 20)
        assert board.entry(s(1)).owner is RegisterClass.ADDRESS

    def test_len_and_contains(self):
        board = Scoreboard()
        assert s(1) not in board
        board.write(s(1), 1)
        assert s(1) in board
        assert len(board) == 1
