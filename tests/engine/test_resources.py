"""Unit tests for ResourcePool and lane-occupancy arithmetic."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.engine import ResourcePool, occupancy_cycles


class TestOccupancyCycles:
    def test_single_lane_is_identity(self):
        assert occupancy_cycles(64) == 64

    def test_zero_elements_still_cost_one_cycle(self):
        assert occupancy_cycles(0) == 1
        assert occupancy_cycles(0, lanes=4) == 1

    def test_lanes_divide_rounding_up(self):
        assert occupancy_cycles(64, lanes=2) == 32
        assert occupancy_cycles(65, lanes=2) == 33
        assert occupancy_cycles(3, lanes=8) == 1

    def test_invalid_lane_count_rejected(self):
        with pytest.raises(ConfigurationError):
            occupancy_cycles(8, lanes=0)


class TestConstruction:
    def test_single_unit_keeps_bare_name(self):
        pool = ResourcePool("LD")
        assert pool.unit_names == ("LD",)

    def test_multi_unit_names_are_numbered(self):
        pool = ResourcePool("LD", count=2)
        assert pool.unit_names == ("LD0", "LD1")

    def test_explicit_unit_names(self):
        pool = ResourcePool("FU", count=2, unit_names=("FU1", "FU2"))
        assert [r.name for r in pool.recorders] == ["FU1", "FU2"]

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourcePool("X", count=0)
        with pytest.raises(ConfigurationError):
            ResourcePool("X", count=2, unit_names=("only-one",))


class TestAcquire:
    def test_acquire_waits_for_the_unit(self):
        pool = ResourcePool("FU")
        start, unit = pool.acquire(0, 10)
        assert (start, unit) == (0, 0)
        start, unit = pool.acquire(3, 5)
        assert start == 10  # unit busy until 10

    def test_least_loaded_selection_first_unit_wins_ties(self):
        """The seed's ``fu1_free <= fu2_free`` rule: FU1 takes ties."""
        pool = ResourcePool("FU", count=2, unit_names=("FU1", "FU2"))
        assert pool.acquire(0, 10)[1] == 0  # tie at 0/0 -> FU1
        assert pool.acquire(0, 10)[1] == 1  # FU1 busy -> FU2
        assert pool.acquire(0, 4)[1] == 0  # tie at 10/10 -> FU1
        assert pool.acquire(0, 1)[1] == 1  # FU2 frees later than... FU1 at 14, FU2 at 10

    def test_pinned_unit_overrides_selection(self):
        pool = ResourcePool("FU", count=2)
        start, unit = pool.acquire(0, 10, unit=1)
        assert (start, unit) == (0, 1)
        # Pinned again even though unit 0 is idle.
        start, unit = pool.acquire(0, 5, unit=1)
        assert (start, unit) == (10, 1)

    def test_earliest_free_tracks_the_best_unit(self):
        pool = ResourcePool("LD", count=2)
        pool.acquire(0, 7)
        assert pool.earliest_free() == 0
        pool.acquire(0, 3)
        assert pool.earliest_free() == 3


class TestOccupy:
    def test_occupy_records_and_advances(self):
        pool = ResourcePool("AP")
        pool.occupy(5, 9)
        assert pool.free_time() == 9
        assert pool.recorder().busy_time() == 4

    def test_occupy_never_rewinds_free_time(self):
        pool = ResourcePool("AP")
        pool.occupy(0, 10)
        pool.occupy(2, 3)
        assert pool.free_time() == 10

    def test_backwards_interval_rejected(self):
        pool = ResourcePool("AP")
        with pytest.raises(SimulationError):
            pool.occupy(5, 4)


class TestRecording:
    def test_record_false_tracks_time_without_intervals(self):
        pool = ResourcePool("FP", record=False)
        pool.occupy(0, 100)
        assert pool.free_time() == 100
        with pytest.raises(SimulationError):
            pool.recorder()
        with pytest.raises(SimulationError):
            pool.busy_time()

    def test_combined_recorder_single_unit_is_the_unit(self):
        pool = ResourcePool("LD")
        pool.acquire(0, 5)
        assert pool.combined_recorder() is pool.recorder()

    def test_combined_recorder_merges_units(self):
        pool = ResourcePool("LD", count=2)
        pool.acquire(0, 5, unit=0)
        pool.acquire(2, 5, unit=1)
        combined = pool.combined_recorder()
        assert combined.name == "LD"
        assert combined.busy_time() == 7  # [0,5) U [2,7)

    def test_busy_time_sums_all_units(self):
        pool = ResourcePool("QMOV", count=2)
        pool.acquire(0, 5, unit=0)
        pool.acquire(0, 3, unit=1)
        assert pool.busy_time() == 8
