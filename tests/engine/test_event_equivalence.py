"""Differential equivalence suite: the event core against the tick oracle.

Three layers of pinning:

* a fixed-seed batch of fuzzed (machine, program, latency) cases runs on
  every CI invocation via :mod:`repro.core.fuzz` — total cycles, stall
  counters, final scoreboard and error text must all be identical
  (``scripts/fuzz_cores.py`` runs larger batches and single-case repros);
* the core selector must thread through the public layers — ``RunConfig``,
  ``MachineSpec`` pins, the registry and the CLI — without changing what a
  cell *is*: store keys deliberately ignore the core, so tick- and
  event-computed results are interchangeable in the store;
* the ``--distributed`` path, whose workers always run the tick core,
  refuses an event-core request instead of silently ignoring it.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.cli import main as cli_main
from repro.core.config import RunConfig
from repro.core.fuzz import (
    DEFAULT_SEED,
    case_seed,
    generate_case,
    repro_command,
    run_case,
)
from repro.core.machine import MachineSpec
from repro.core.registry import architecture, simulate
from repro.core.experiment import Runner, SweepSpec
from repro.store import ResultStore
from repro.store.keys import cell_key, core_invariant_label
from repro.workloads.perfect_club import load_program

#: Cases in the in-tree CI batch; scripts/fuzz_cores.py defaults to 200+.
CI_CASES = 80


@pytest.mark.parametrize("index", range(CI_CASES))
def test_fuzzed_case_is_cycle_identical(index):
    case = generate_case(case_seed(DEFAULT_SEED, index))
    failure = run_case(case)
    assert failure is None, (
        f"{failure}\n  repro: {repro_command(DEFAULT_SEED, index)}"
    )


class TestCoreSelectorPlumbing:
    @pytest.fixture(scope="class")
    def trace(self):
        return load_program("arc2d").build_trace(scale=1.0)

    @pytest.mark.parametrize("arch", ["ref", "dva", "dva-nobypass"])
    def test_registry_simulate_is_identical_on_both_cores(self, trace, arch):
        tick = simulate(trace, arch, config=RunConfig(latency=100))
        event = simulate(trace, arch, config=RunConfig(latency=100, core="event"))
        assert event.to_json() == tick.to_json()

    def test_spec_pin_overrides_the_runconfig_core(self, trace):
        pinned = simulate(trace, "dva@core=event", config=RunConfig(latency=50))
        plain = simulate(trace, "dva", config=RunConfig(latency=50))
        assert pinned.total_cycles == plain.total_cycles

    def test_unknown_core_is_rejected_everywhere(self):
        with pytest.raises(ConfigurationError, match="unknown timing core"):
            RunConfig(core="cycle")
        with pytest.raises(ConfigurationError):
            MachineSpec(family="dva", core="cycle")
        with pytest.raises(ConfigurationError):
            architecture("dva@core=cycle")

    def test_spec_core_round_trips_through_the_spec_string(self):
        spec = architecture("dva@core=event").spec
        assert spec.core == "event"
        assert spec.to_string() == "dva@core=event"


class TestStoreKeyCoreInvariance:
    def test_runconfig_core_does_not_change_the_key(self):
        simulator = architecture("dva")
        tick_key = cell_key("arc2d", 1.0, 50, simulator, RunConfig(latency=50))
        event_key = cell_key(
            "arc2d", 1.0, 50, simulator, RunConfig(latency=50, core="event")
        )
        assert tick_key == event_key

    def test_spec_core_pin_does_not_change_the_key(self):
        config = RunConfig(latency=50)
        base = cell_key("arc2d", 1.0, 50, architecture("dva"), config)
        pinned = cell_key("arc2d", 1.0, 50, architecture("dva@core=event"), config)
        assert base == pinned

    def test_core_pin_is_stripped_even_among_other_pins(self):
        config = RunConfig(latency=50)
        mixed = cell_key(
            "arc2d", 1.0, 50, architecture("dva@lanes=2,core=event"), config
        )
        plain = cell_key("arc2d", 1.0, 50, architecture("dva@lanes=2"), config)
        assert mixed == plain

    def test_core_invariant_label_strips_only_the_core(self):
        assert core_invariant_label("dva@core=event") == "dva"
        assert core_invariant_label("dva@lanes=2,core=event") == "dva@lanes=2"
        assert core_invariant_label("dva@lanes=2") == "dva@lanes=2"
        assert core_invariant_label("dva") == "dva"
        # Unparseable labels (hand-written simulators) pass through untouched.
        assert core_invariant_label("custom@weird label") == "custom@weird label"


class TestSweepOverCores:
    def test_axis_core_sweep_shares_cells_and_restores_provenance(self, tmp_path):
        spec = SweepSpec.from_strings(
            programs="arc2d",
            latencies="100",
            architectures="dva",
            axes=("core=tick,event",),
        )
        store = ResultStore(tmp_path)
        cold = Runner(jobs=1, store=store).run(spec)
        assert {r.architecture for r in cold} == {"dva@core=tick", "dva@core=event"}
        assert len({r.total_cycles for r in cold}) == 1

        warm = Runner(jobs=1, store=ResultStore(tmp_path)).run(spec)
        assert warm.cached_count == 2 and warm.simulated_count == 0
        # The shared store entry answers both cells, relabelled per request.
        assert {r.architecture for r in warm} == {"dva@core=tick", "dva@core=event"}

    def test_tick_warmed_store_answers_an_event_sweep(self, tmp_path):
        spec = SweepSpec.from_strings(
            programs="arc2d", latencies="50", architectures="ref,dva"
        )
        cold = Runner(jobs=1, store=ResultStore(tmp_path)).run(spec)
        assert cold.simulated_count == 2
        warm = Runner(jobs=1, store=ResultStore(tmp_path)).run(
            spec, config=RunConfig(core="event")
        )
        assert warm.cached_count == 2 and warm.simulated_count == 0

    def test_distributed_refuses_the_event_core(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            cli_main(
                [
                    "sweep",
                    "--programs", "arc2d",
                    "--latencies", "1",
                    "--arch", "dva",
                    "--core", "event",
                    "--distributed",
                    "--store-dir", str(tmp_path),
                ]
            )
        assert "tick core" in capsys.readouterr().err
