"""Property tests for the event queue and the wakeup scheduler.

Two invariants carry the event core's correctness argument (see
:mod:`repro.engine.events`):

1. within one drain, pop times are non-decreasing, and same-cycle wakeups
   all surface — none may be lost when two resources free on the same cycle;
2. the spans one ``jump`` attributes to blocking resources sum exactly to
   the distance travelled (``final - start``), so skip-ahead stall
   accounting can never invent or drop a cycle.

The tests below pin both properties on seeded random workloads plus the
hand-written edge cases (ties, past wakeups, empty queues, guard resets).
"""

import random

import pytest

from repro.common.errors import SimulationError
from repro.engine import EventQueue, WakeupScheduler


class TestEventQueueOrdering:
    def test_pops_are_sorted_within_a_drain(self):
        rng = random.Random(1234)
        for _ in range(50):
            queue = EventQueue()
            times = [rng.randrange(0, 1000) for _ in range(rng.randrange(1, 40))]
            for time in times:
                queue.push(time, "resource")
            popped = [queue.pop()[0] for _ in range(len(times))]
            assert popped == sorted(times)

    def test_same_time_pushes_pop_in_fifo_order(self):
        queue = EventQueue()
        for tag in ("first", "second", "third"):
            queue.push(7, tag)
        assert [queue.pop()[1] for _ in range(3)] == ["first", "second", "third"]

    def test_no_wakeup_lost_when_two_resources_free_the_same_cycle(self):
        queue = EventQueue()
        queue.push(5, "memory-port")
        queue.push(5, "functional-unit")
        popped = [queue.pop() for _ in range(2)]
        assert popped == [(5, "memory-port"), (5, "functional-unit")]

    def test_pop_from_empty_queue_raises(self):
        with pytest.raises(SimulationError, match="empty event queue"):
            EventQueue().pop()

    def test_peek_into_empty_queue_raises(self):
        with pytest.raises(SimulationError, match="empty event queue"):
            EventQueue().peek_time()

    def test_peek_does_not_consume(self):
        queue = EventQueue()
        queue.push(3, "operand")
        assert queue.peek_time() == 3
        assert len(queue) == 1
        assert queue.pop() == (3, "operand")
        assert not queue

    def test_guard_is_per_drain_not_per_lifetime(self):
        # A wakeup registered after one drain may legitimately be *earlier*
        # than that drain's pops (a later instruction's operand was ready
        # long ago).  reset_guard makes the monotonicity contract per-drain.
        queue = EventQueue()
        queue.push(10, "memory-port")
        assert queue.pop() == (10, "memory-port")
        queue.push(2, "operand")
        with pytest.raises(SimulationError, match="non-decreasing within a drain"):
            queue.pop()
        queue.push(2, "operand")  # the failed pop consumed the entry
        queue.reset_guard()
        assert queue.pop() == (2, "operand")


class TestWakeupSchedulerAttribution:
    def test_skip_spans_sum_exactly_to_the_distance_travelled(self):
        rng = random.Random(987)
        for _ in range(100):
            scheduler = WakeupScheduler()
            start = rng.randrange(0, 50)
            for _ in range(rng.randrange(0, 12)):
                scheduler.wake(
                    rng.randrange(0, 200),
                    rng.choice(("operand", "memory-port", "functional-unit")),
                )
            final = scheduler.jump(start)
            assert final >= start
            assert sum(scheduler.spans.values()) == final - start

    def test_jump_with_no_events_stays_put(self):
        scheduler = WakeupScheduler()
        assert scheduler.jump(17) == 17
        assert scheduler.spans == {}
        assert scheduler.total_skipped() == 0

    def test_each_span_goes_to_the_resource_that_blocked(self):
        scheduler = WakeupScheduler()
        scheduler.wake(4, "operand")
        scheduler.wake(9, "memory-port")
        assert scheduler.jump(1) == 9
        assert scheduler.spans == {"operand": 3, "memory-port": 5}

    def test_same_cycle_wakeups_attribute_once_without_losing_either(self):
        scheduler = WakeupScheduler()
        scheduler.wake(6, "memory-port")
        scheduler.wake(6, "functional-unit")
        assert scheduler.jump(2) == 6
        # The first pop at 6 takes the whole span; the second surfaces with
        # a zero-cycle entry rather than vanishing.
        assert scheduler.spans == {"memory-port": 4, "functional-unit": 0}

    def test_past_wakeups_never_move_the_clock_backwards(self):
        scheduler = WakeupScheduler()
        scheduler.wake(3, "operand")
        assert scheduler.jump(10) == 10
        assert scheduler.spans == {"operand": 0}

    def test_spans_accumulate_across_jumps(self):
        rng = random.Random(55)
        scheduler = WakeupScheduler()
        travelled = 0
        clock = 0
        for _ in range(30):
            for _ in range(rng.randrange(0, 5)):
                scheduler.wake(clock + rng.randrange(0, 40), "memory-port")
            final = scheduler.jump(clock)
            travelled += final - clock
            clock = final + rng.randrange(0, 3)
        assert scheduler.total_skipped() == travelled

    def test_consecutive_jumps_tolerate_earlier_wakeups(self):
        # The scenario that motivated the per-drain guard: jump one reaches
        # cycle 20, then the next instruction's operand was ready at 5.
        scheduler = WakeupScheduler()
        scheduler.wake(20, "memory-port")
        assert scheduler.jump(0) == 20
        scheduler.wake(5, "operand")
        assert scheduler.jump(20) == 20
        assert scheduler.spans == {"memory-port": 20, "operand": 0}
