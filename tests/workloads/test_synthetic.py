"""Tests for the parametric synthetic kernels."""

import pytest

from repro.trace.generator import TraceBuilder
from repro.trace.statistics import compute_statistics
from repro.workloads import synthetic
from repro.workloads.compiler import VectorizingCompiler


def _stats_for(kernel):
    compiler = VectorizingCompiler("synthetic")
    compiled = compiler.compile(kernel)
    builder = TraceBuilder("synthetic")
    compiled.emit_invocation(builder)
    return compute_statistics(builder.build())


class TestFactories:
    def test_daxpy_shape(self):
        kernel = synthetic.daxpy(elements=256, max_vector_length=128)
        assert len(kernel.loads) == 2
        assert len(kernel.stores) == 1
        assert kernel.fu2_ops == 1
        assert kernel.uses_scalar_operand

    def test_stream_triad_is_memory_bound(self):
        kernel = synthetic.stream_triad()
        assert kernel.vector_memory_streams > kernel.fu_any_ops + kernel.fu2_ops

    def test_compute_bound_is_compute_bound(self):
        kernel = synthetic.compute_bound(fu_ops=12)
        assert kernel.fu_any_ops + kernel.fu2_ops == 12
        assert kernel.vector_memory_streams == 2
        assert kernel.load_use_distance > 0

    def test_reduction_flags(self):
        assert synthetic.reduction().reduction
        assert not synthetic.reduction().reduction_carried
        assert synthetic.reduction(carried=True).reduction_carried

    def test_spill_heavy_spills(self):
        kernel = synthetic.spill_heavy(spill_pairs=3)
        assert kernel.vector_spill_pairs == 3

    def test_gather_scatter_indexed(self):
        kernel = synthetic.gather_scatter()
        assert any(stream.indexed for stream in kernel.loads)
        assert any(stream.indexed for stream in kernel.stores)

    def test_strided_kernel(self):
        kernel = synthetic.strided(stride=7)
        assert kernel.loads[0].stride == 7

    @pytest.mark.parametrize(
        "factory",
        [
            synthetic.daxpy,
            synthetic.stream_triad,
            synthetic.stencil3,
            synthetic.compute_bound,
            synthetic.reduction,
            synthetic.spill_heavy,
            synthetic.gather_scatter,
            synthetic.strided,
        ],
    )
    def test_every_factory_compiles_and_traces(self, factory):
        kernel = factory()
        stats = _stats_for(kernel)
        assert stats.vector_instructions > 0
        assert stats.total_instructions > 0

    def test_simple_program(self):
        model = synthetic.simple_program(elements=256, repetitions=2)
        trace = model.build_trace()
        stats = compute_statistics(trace)
        assert stats.vector_operations > 0
        assert trace.name == "synthetic"
