"""Tests for the loop-kernel description language."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import WorkloadError
from repro.isa.registers import VECTOR_REGISTER_LENGTH
from repro.workloads.kernel import KernelSchedule, LoopKernel, VectorStream


class TestVectorStream:
    def test_requires_region(self):
        with pytest.raises(WorkloadError):
            VectorStream(region="")

    def test_rejects_zero_stride(self):
        with pytest.raises(WorkloadError):
            VectorStream(region="x", stride=0)

    def test_negative_stride_ok(self):
        assert VectorStream(region="x", stride=-3).stride == -3


class TestLoopKernelValidation:
    def test_requires_name_and_elements(self):
        with pytest.raises(WorkloadError):
            LoopKernel(name="", elements=10)
        with pytest.raises(WorkloadError):
            LoopKernel(name="k", elements=0)

    def test_max_vector_length_bounds(self):
        with pytest.raises(WorkloadError):
            LoopKernel(name="k", elements=10, max_vector_length=0)
        with pytest.raises(WorkloadError):
            LoopKernel(
                name="k", elements=10, max_vector_length=VECTOR_REGISTER_LENGTH + 1
            )

    def test_carried_reduction_requires_reduction(self):
        with pytest.raises(WorkloadError):
            LoopKernel(name="k", elements=10, reduction_carried=True)

    def test_negative_counts_rejected(self):
        with pytest.raises(WorkloadError):
            LoopKernel(name="k", elements=10, fu_any_ops=-1)
        with pytest.raises(WorkloadError):
            LoopKernel(name="k", elements=10, scalar_ops=-1)

    def test_kernel_without_any_vector_work_rejected(self):
        with pytest.raises(WorkloadError):
            LoopKernel(name="k", elements=10, fu_any_ops=0)

    def test_invocations_positive(self):
        with pytest.raises(WorkloadError):
            LoopKernel(name="k", elements=10, invocations=0)


class TestStripMining:
    def test_exact_multiple(self):
        kernel = LoopKernel(name="k", elements=256, max_vector_length=128)
        assert kernel.strips_per_invocation == 2
        assert kernel.strip_lengths == [128, 128]

    def test_remainder_strip(self):
        kernel = LoopKernel(name="k", elements=300, max_vector_length=128)
        assert kernel.strips_per_invocation == 3
        assert kernel.strip_lengths == [128, 128, 44]

    def test_short_loop_single_strip(self):
        kernel = LoopKernel(name="k", elements=20, max_vector_length=128)
        assert kernel.strip_lengths == [20]

    @given(
        elements=st.integers(1, 4000),
        max_vl=st.integers(1, VECTOR_REGISTER_LENGTH),
    )
    def test_strips_cover_all_elements(self, elements, max_vl):
        kernel = LoopKernel(name="k", elements=elements, max_vector_length=max_vl)
        lengths = kernel.strip_lengths
        assert sum(lengths) == elements
        assert all(0 < length <= max_vl for length in lengths)
        assert len(lengths) == kernel.strips_per_invocation


class TestInstructionCountEstimates:
    def test_vector_counts(self):
        kernel = LoopKernel(
            name="k",
            elements=128,
            loads=(VectorStream("x"), VectorStream("y")),
            stores=(VectorStream("z"),),
            fu_any_ops=2,
            fu2_ops=1,
            vector_spill_pairs=1,
            reduction=True,
            uses_scalar_operand=True,
        )
        # 3 memory streams + 2+1 compute + reduction + splat + 4 per spill pair.
        assert kernel.vector_memory_streams == 3
        assert kernel.vector_compute_ops == 5
        assert kernel.vector_instructions_per_strip == 3 + 5 + 4

    def test_seed_splat_conditions(self):
        no_loads = LoopKernel(name="k", elements=16, fu_any_ops=2)
        assert no_loads.emits_seed_splat
        with_loads = LoopKernel(
            name="k", elements=16, loads=(VectorStream("x"),), fu_any_ops=2
        )
        assert not with_loads.emits_seed_splat
        distance = LoopKernel(
            name="k",
            elements=16,
            loads=(VectorStream("x"),),
            fu_any_ops=4,
            load_use_distance=2,
        )
        assert distance.emits_seed_splat
        assert distance.vector_instructions_per_strip == 1 + 4 + 1

    def test_scalar_counts(self):
        kernel = LoopKernel(
            name="k",
            elements=64,
            loads=(VectorStream("x", stride=4),),
            fu_any_ops=1,
            address_ops=3,
            scalar_ops=5,
            scalar_loads=1,
            scalar_stores=1,
            scalar_spill_pairs=2,
            reduction=True,
            reduction_carried=True,
        )
        # set_vl + 2 set_vs + 3 addr + 5 scalar + 1 load + 1 store + 4 spill
        # + 3 loop control + 1 reduction accumulate + 1 carried move.
        assert kernel.scalar_instructions_per_strip == 1 + 2 + 3 + 5 + 1 + 1 + 4 + 3 + 1 + 1


class TestKernelSchedule:
    def test_total_invocations(self):
        kernel = LoopKernel(name="k", elements=10, invocations=3)
        schedule = KernelSchedule(kernel, repetitions=4)
        assert schedule.total_invocations == 12

    def test_rejects_non_positive_repetitions(self):
        kernel = LoopKernel(name="k", elements=10)
        with pytest.raises(WorkloadError):
            KernelSchedule(kernel, repetitions=0)
