"""Tests for the program models and the Perfect Club registry."""

import pytest

from repro.common.errors import WorkloadError
from repro.trace.statistics import compute_statistics
from repro.workloads import (
    PERFECT_CLUB_PROGRAMS,
    ProgramModel,
    load_program,
    program_names,
    synthetic,
)
from repro.workloads.kernel import KernelSchedule
from repro.workloads.perfect_club import build_all_programs, build_trace


class TestProgramModel:
    def test_requires_kernels(self):
        with pytest.raises(WorkloadError):
            ProgramModel(name="empty", schedules=())

    def test_requires_name(self):
        with pytest.raises(WorkloadError):
            ProgramModel(name="", schedules=(KernelSchedule(synthetic.daxpy()),))

    def test_build_trace_rejects_non_positive_scale(self):
        model = synthetic.simple_program()
        with pytest.raises(WorkloadError):
            model.build_trace(scale=0)

    def test_scale_changes_trace_length(self):
        model = synthetic.simple_program(repetitions=4)
        small = model.build_trace(scale=0.5)
        base = model.build_trace(scale=1.0)
        large = model.build_trace(scale=2.0)
        assert len(small) < len(base) < len(large)

    def test_small_scale_keeps_every_kernel(self):
        model = synthetic.simple_program(repetitions=8)
        trace = model.build_trace(scale=0.01)
        labels = {record.block_label for record in trace}
        assert any("stream_triad" in label for label in labels)
        assert any("daxpy" in label for label in labels)

    def test_prologue_emitted_once(self):
        model = synthetic.simple_program()
        trace = model.build_trace()
        prologue_records = [r for r in trace if "prologue" in r.block_label]
        assert len(prologue_records) == model.prologue_scalar_instructions

    def test_metadata_carries_targets_and_scale(self):
        model = load_program("ARC2D")
        trace = model.build_trace(scale=0.5)
        assert trace.metadata["program"] == "ARC2D"
        assert trace.metadata["scale"] == 0.5
        assert "vectorization_percent" in trace.metadata["targets"]

    def test_kernel_named(self):
        model = load_program("DYFESM")
        assert model.kernel_named("dyfesm_element_forces").reduction_carried is False
        with pytest.raises(WorkloadError):
            model.kernel_named("missing")


class TestPerfectClubRegistry:
    def test_six_programs_registered(self):
        assert program_names() == ["ARC2D", "FLO52", "BDNA", "TRFD", "DYFESM", "SPEC77"]
        assert len(PERFECT_CLUB_PROGRAMS) == 6

    def test_load_is_case_insensitive(self):
        assert load_program("arc2d").name == "ARC2D"

    def test_unknown_program_rejected(self):
        with pytest.raises(WorkloadError):
            load_program("NASA7")

    def test_build_all_programs(self):
        programs = build_all_programs()
        assert set(programs) == set(program_names())
        assert all(isinstance(model, ProgramModel) for model in programs.values())

    def test_build_trace_helper(self):
        trace = build_trace("FLO52", scale=0.25)
        assert trace.name == "FLO52"
        assert len(trace) > 0


class TestPublishedStatistics:
    """The synthetic models should land near the paper's Table 1 numbers."""

    @pytest.mark.parametrize(
        "name",
        ["ARC2D", "FLO52", "BDNA", "TRFD"],
    )
    def test_vectorization_close_to_table1(self, name):
        model = load_program(name)
        stats = compute_statistics(model.build_trace(scale=0.5))
        target = model.targets.vectorization_percent
        assert target is not None
        assert abs(stats.vectorization_percent - target) < 4.0

    @pytest.mark.parametrize("name", ["ARC2D", "FLO52", "BDNA", "TRFD"])
    def test_average_vector_length_close_to_table1(self, name):
        model = load_program(name)
        stats = compute_statistics(model.build_trace(scale=0.5))
        target = model.targets.average_vector_length
        assert target is not None
        assert abs(stats.average_vector_length - target) <= 3.0

    def test_every_program_is_highly_vectorized(self):
        # The paper requires > 70 % vectorization for a program to be studied.
        for name in program_names():
            stats = compute_statistics(load_program(name).build_trace(scale=0.5))
            assert stats.vectorization_percent > 70.0

    def test_bdna_is_the_spill_champion(self):
        fractions = {}
        for name in program_names():
            stats = compute_statistics(load_program(name).build_trace(scale=0.5))
            fractions[name] = stats.spill_fraction
        assert max(fractions, key=fractions.get) == "BDNA"
        assert fractions["BDNA"] > 0.6
        assert fractions["SPEC77"] < 0.05

    def test_dyfesm_has_carried_reduction_loops(self):
        model = load_program("DYFESM")
        carried = [k for k in model.kernels if k.reduction_carried]
        assert len(carried) == 2
