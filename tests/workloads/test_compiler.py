"""Tests for the vectorizing compiler."""

import pytest

from repro.common.errors import WorkloadError
from repro.isa.opcodes import Opcode
from repro.trace.generator import TraceBuilder
from repro.trace.statistics import compute_statistics
from repro.workloads.compiler import VectorizingCompiler
from repro.workloads.kernel import LoopKernel, VectorStream
from repro.workloads import synthetic


def _compile(kernel):
    compiler = VectorizingCompiler("test")
    return compiler, compiler.compile(kernel)


class TestCompilation:
    def test_one_block_per_distinct_strip_length(self):
        kernel = LoopKernel(name="k", elements=300, max_vector_length=128, fu_any_ops=1)
        _, compiled = _compile(kernel)
        assert sorted(compiled.blocks) == [44, 128]
        assert compiled.block_for_length(128) is not compiled.block_for_length(44)

    def test_unknown_strip_length_rejected(self):
        kernel = LoopKernel(name="k", elements=128, fu_any_ops=1)
        _, compiled = _compile(kernel)
        with pytest.raises(WorkloadError):
            compiled.block_for_length(99)

    def test_block_starts_with_set_vl(self):
        kernel = synthetic.daxpy(elements=200, max_vector_length=100)
        _, compiled = _compile(kernel)
        block = compiled.block_for_length(100)
        assert block.instructions[0].opcode is Opcode.SET_VL
        assert block.instructions[0].immediate == 100

    def test_instruction_counts_match_kernel_estimates(self):
        kernel = LoopKernel(
            name="counts",
            elements=64,
            loads=(VectorStream("x"), VectorStream("y")),
            stores=(VectorStream("z"),),
            fu_any_ops=3,
            fu2_ops=2,
            vector_spill_pairs=1,
            scalar_spill_pairs=1,
            address_ops=4,
            scalar_ops=3,
            scalar_loads=1,
            scalar_stores=1,
            reduction=True,
            uses_scalar_operand=True,
        )
        _, compiled = _compile(kernel)
        block = compiled.block_for_length(64)
        assert block.vector_instruction_count == kernel.vector_instructions_per_strip
        assert block.scalar_instruction_count == kernel.scalar_instructions_per_strip

    def test_fu2_only_ops_emitted(self):
        kernel = LoopKernel(
            name="k", elements=64, loads=(VectorStream("x"),), fu_any_ops=1, fu2_ops=2
        )
        _, compiled = _compile(kernel)
        opcodes = [i.opcode for i in compiled.block_for_length(64)]
        assert opcodes.count(Opcode.V_MUL) == 2

    def test_strided_stream_toggles_vector_stride(self):
        kernel = LoopKernel(
            name="k", elements=64, loads=(VectorStream("m", stride=5),), fu_any_ops=1
        )
        _, compiled = _compile(kernel)
        opcodes = [i.opcode for i in compiled.block_for_length(64)]
        assert opcodes.count(Opcode.SET_VS) == 2
        load = next(i for i in compiled.block_for_length(64) if i.opcode is Opcode.V_LOAD)
        assert load.memory.stride == 5

    def test_indexed_streams_use_gather_scatter(self):
        kernel = synthetic.gather_scatter(elements=64)
        _, compiled = _compile(kernel)
        opcodes = [i.opcode for i in compiled.block_for_length(64)]
        assert Opcode.V_GATHER in opcodes
        assert Opcode.V_SCATTER in opcodes

    def test_reduction_emits_vsum_and_accumulate(self):
        kernel = synthetic.reduction(elements=64)
        _, compiled = _compile(kernel)
        opcodes = [i.opcode for i in compiled.block_for_length(64)]
        assert Opcode.V_SUM in opcodes
        assert Opcode.S_FADD in opcodes

    def test_carried_reduction_emits_cross_processor_move(self):
        kernel = synthetic.reduction(elements=64, carried=True)
        _, compiled = _compile(kernel)
        block = compiled.block_for_length(64)
        moves = [i for i in block if i.opcode is Opcode.S_MOV]
        assert moves, "carried reduction must forward the accumulator to addressing"
        assert moves[0].sources[0].register_class.value == "s"
        assert moves[0].destinations[0].register_class.value == "a"

    def test_spill_pair_store_and_reload_same_region(self):
        kernel = synthetic.spill_heavy(elements=64, spill_pairs=1)
        _, compiled = _compile(kernel)
        block = compiled.block_for_length(64)
        spill_accesses = [i for i in block if i.is_memory and i.is_spill_access]
        assert len(spill_accesses) == 2
        store, load = spill_accesses
        assert store.is_store and load.is_load
        assert store.memory.region == load.memory.region

    def test_load_use_distance_defers_load_consumption(self):
        kernel = LoopKernel(
            name="k",
            elements=64,
            loads=(VectorStream("x"),),
            fu_any_ops=6,
            load_use_distance=3,
        )
        _, compiled = _compile(kernel)
        block = compiled.block_for_length(64)
        load = next(i for i in block if i.opcode is Opcode.V_LOAD)
        loaded_register = load.destinations[0]
        compute = [
            i
            for i in block
            if i.is_vector and not i.is_memory and i.opcode is not Opcode.V_SPLAT
        ]
        early = compute[: kernel.load_use_distance]
        assert all(loaded_register not in op.sources for op in early)
        later = compute[kernel.load_use_distance:]
        assert any(loaded_register in op.sources for op in later)

    def test_same_compiler_accumulates_program(self):
        compiler = VectorizingCompiler("multi")
        compiler.compile(synthetic.daxpy(elements=64))
        compiler.compile(synthetic.stream_triad(elements=64))
        labels = compiler.program.block_labels
        assert any(label.startswith("daxpy") for label in labels)
        assert any(label.startswith("stream_triad") for label in labels)


class TestEmission:
    def test_emit_invocation_covers_all_elements(self):
        kernel = synthetic.daxpy(elements=300, max_vector_length=128)
        _, compiled = _compile(kernel)
        builder = TraceBuilder("demo")
        compiled.emit_invocation(builder)
        trace = builder.build()
        loads = [r for r in trace if r.opcode is Opcode.V_LOAD]
        # Two load streams, three strips each.
        assert len(loads) == 6
        assert sum(r.vector_length for r in loads) == 2 * 300

    def test_stream_addresses_advance_between_strips(self):
        kernel = synthetic.daxpy(elements=256, max_vector_length=128)
        _, compiled = _compile(kernel)
        builder = TraceBuilder("demo")
        compiled.emit_invocation(builder)
        trace = builder.build()
        x_loads = [
            r for r in trace if r.is_load and r.instruction.memory.region == "daxpy.x"
        ]
        assert len(x_loads) == 2
        assert x_loads[1].base_address == x_loads[0].base_address + 128 * 8

    def test_spill_addresses_repeat_within_iteration(self):
        kernel = synthetic.spill_heavy(elements=256, max_vector_length=128, spill_pairs=1)
        _, compiled = _compile(kernel)
        builder = TraceBuilder("demo")
        compiled.emit_invocation(builder)
        trace = builder.build()
        spills = [r for r in trace if r.is_spill_access and r.is_vector_memory]
        assert len(spills) == 4  # store+reload per strip, two strips
        assert spills[0].base_address == spills[1].base_address
        assert spills[2].base_address == spills[3].base_address

    def test_emit_program_repeats_invocations(self):
        kernel = synthetic.daxpy(elements=128, invocations=2)
        _, compiled = _compile(kernel)
        builder = TraceBuilder("demo")
        compiled.emit_program(builder)
        trace = builder.build()
        assert trace.blocks_executed == 2

    def test_trace_statistics_reflect_kernel_shape(self):
        kernel = synthetic.stream_triad(elements=512, max_vector_length=128)
        _, compiled = _compile(kernel)
        builder = TraceBuilder("demo")
        compiled.emit_invocation(builder)
        stats = compute_statistics(builder.build())
        assert stats.average_vector_length == pytest.approx(128.0)
        assert stats.vector_memory_instructions == 3 * 4
