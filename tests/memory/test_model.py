"""Tests for the main-memory timing model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.isa.instruction import MemoryOperand, make_instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import s_reg, v_reg
from repro.memory.model import MemoryModel, MemoryTimings
from repro.trace.record import DynamicInstruction


def _vector_load(vl=64, base=0x1000):
    instruction = make_instruction(
        Opcode.V_LOAD, destinations=[v_reg(0)], memory=MemoryOperand(region="x")
    )
    return DynamicInstruction(
        instruction=instruction, sequence=0, vector_length=vl, base_address=base
    )


def _vector_store(vl=64, base=0x2000):
    instruction = make_instruction(
        Opcode.V_STORE, sources=[v_reg(0)], memory=MemoryOperand(region="y")
    )
    return DynamicInstruction(
        instruction=instruction, sequence=0, vector_length=vl, base_address=base
    )


def _scalar_load(base=0x3000):
    instruction = make_instruction(
        Opcode.S_LOAD, destinations=[s_reg(0)], memory=MemoryOperand(region="g")
    )
    return DynamicInstruction(instruction=instruction, sequence=0, base_address=base)


def _vector_add(vl=64):
    instruction = make_instruction(
        Opcode.V_ADD, destinations=[v_reg(2)], sources=[v_reg(0), v_reg(1)]
    )
    return DynamicInstruction(instruction=instruction, sequence=0, vector_length=vl)


class TestMemoryTimings:
    def test_defaults(self):
        timings = MemoryTimings()
        assert timings.latency == 1
        assert timings.bus_cycles_per_element == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MemoryTimings(latency=-1)
        with pytest.raises(ConfigurationError):
            MemoryTimings(bus_cycles_per_element=0)
        with pytest.raises(ConfigurationError):
            MemoryTimings(scalar_bus_cycles=0)


class TestMemoryModel:
    def test_constructor_guard(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(timings=MemoryTimings(), latency=5)

    def test_latency_shortcut(self):
        assert MemoryModel(latency=30).latency == 30
        assert MemoryModel().latency == 1

    def test_bus_occupancy(self):
        model = MemoryModel(latency=10)
        assert model.bus_occupancy(_vector_load(vl=50)) == 50
        assert model.bus_occupancy(_vector_store(vl=7)) == 7
        assert model.bus_occupancy(_scalar_load()) == 1
        assert model.bus_occupancy(_vector_add()) == 0

    def test_zero_length_vector_still_issues(self):
        model = MemoryModel(latency=10)
        assert model.bus_occupancy(_vector_load(vl=0)) == 1

    def test_load_complete_includes_latency_and_streaming(self):
        model = MemoryModel(latency=30)
        record = _vector_load(vl=64)
        assert model.load_complete(record, bus_start=100) == 100 + 30 + 64
        assert model.first_element_arrival(bus_start=100) == 130

    def test_store_complete_hides_latency(self):
        model = MemoryModel(latency=100)
        record = _vector_store(vl=16)
        assert model.store_complete(record, bus_start=40) == 56

    def test_direction_guards(self):
        model = MemoryModel()
        with pytest.raises(ConfigurationError):
            model.load_complete(_vector_store(), bus_start=0)
        with pytest.raises(ConfigurationError):
            model.store_complete(_vector_load(), bus_start=0)

    def test_traffic_bytes(self):
        model = MemoryModel()
        assert model.traffic_bytes(_vector_load(vl=10)) == 80
        assert model.traffic_bytes(_scalar_load()) == 8

    def test_with_latency_preserves_other_parameters(self):
        base = MemoryModel(MemoryTimings(latency=1, bus_cycles_per_element=2))
        derived = base.with_latency(70)
        assert derived.latency == 70
        assert derived.timings.bus_cycles_per_element == 2
        assert base.latency == 1
