"""Tests for the scalar cache."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigurationError
from repro.memory.scalar_cache import ScalarCache, ScalarCacheConfig


class TestScalarCacheConfig:
    def test_defaults(self):
        config = ScalarCacheConfig()
        assert config.capacity_bytes == 32 * 1024

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScalarCacheConfig(line_bytes=0)
        with pytest.raises(ConfigurationError):
            ScalarCacheConfig(line_bytes=24)
        with pytest.raises(ConfigurationError):
            ScalarCacheConfig(lines=0)
        with pytest.raises(ConfigurationError):
            ScalarCacheConfig(hit_latency=-1)


class TestScalarCache:
    def test_cold_miss_then_hit(self):
        cache = ScalarCache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.access(0x1008)  # same 32-byte line
        assert cache.hits == 2
        assert cache.misses == 1

    def test_different_lines_miss(self):
        cache = ScalarCache(ScalarCacheConfig(line_bytes=32, lines=8))
        assert not cache.access(0x0)
        assert not cache.access(0x20)
        assert cache.accesses == 2
        assert cache.hit_rate == 0.0

    def test_conflict_eviction(self):
        cache = ScalarCache(ScalarCacheConfig(line_bytes=32, lines=2))
        cache.access(0x00)          # line 0
        cache.access(0x40)          # maps to line 0 again, evicts
        assert not cache.access(0x00)

    def test_probe_does_not_modify_state(self):
        cache = ScalarCache()
        assert not cache.probe(0x500)
        assert cache.accesses == 0
        cache.access(0x500)
        assert cache.probe(0x500)
        assert cache.accesses == 1

    def test_reset(self):
        cache = ScalarCache()
        cache.access(0x100)
        cache.reset()
        assert cache.accesses == 0
        assert not cache.probe(0x100)

    def test_hit_rate_empty(self):
        assert ScalarCache().hit_rate == 0.0

    @given(st.lists(st.integers(0, 0x3FF), min_size=1, max_size=200))
    def test_repeated_small_working_set_eventually_hits(self, addresses):
        # A working set smaller than the cache must hit on every second pass.
        cache = ScalarCache(ScalarCacheConfig(line_bytes=32, lines=64))
        for address in addresses:
            cache.access(address)
        hits_before = cache.hits
        for address in addresses:
            assert cache.access(address) or True
        # Second pass over a <=1 KiB working set in a 2 KiB cache: all hits.
        assert cache.hits - hits_before == len(addresses)
