"""Tests for memory ranges and the disambiguation rule."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SimulationError
from repro.isa.instruction import MemoryOperand, make_instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import ELEMENT_SIZE_BYTES, s_reg, v_reg
from repro.memory.ranges import (
    FULL_RANGE,
    MemoryRange,
    accesses_identical,
    range_of_access,
    ranges_conflict,
)
from repro.trace.record import DynamicInstruction


def _vector_access(opcode, base, vl, stride, indexed=False, spill=False):
    instruction = make_instruction(
        opcode,
        destinations=[v_reg(0)] if opcode in (Opcode.V_LOAD, Opcode.V_GATHER) else (),
        sources=[v_reg(0)] if opcode in (Opcode.V_STORE, Opcode.V_SCATTER) else (),
        memory=MemoryOperand(region="r", stride=stride, indexed=indexed, is_spill=spill),
    )
    return DynamicInstruction(
        instruction=instruction,
        sequence=0,
        vector_length=vl,
        stride_elements=stride,
        base_address=base,
    )


def _scalar_access(opcode, base):
    instruction = make_instruction(
        opcode,
        destinations=[s_reg(0)] if opcode is Opcode.S_LOAD else (),
        sources=[s_reg(0)] if opcode is Opcode.S_STORE else (),
        memory=MemoryOperand(region="r"),
    )
    return DynamicInstruction(
        instruction=instruction, sequence=0, base_address=base
    )


class TestMemoryRange:
    def test_invalid_range(self):
        with pytest.raises(SimulationError):
            MemoryRange(100, 50)

    def test_size_and_contains(self):
        memory_range = MemoryRange(0x100, 0x140)
        assert memory_range.size == 0x40
        assert memory_range.contains(0x100)
        assert memory_range.contains(0x13F)
        assert not memory_range.contains(0x140)

    def test_full_range(self):
        assert FULL_RANGE.contains(0)
        assert FULL_RANGE.contains(2**62)
        assert FULL_RANGE.overlaps(MemoryRange(0, 0))
        with pytest.raises(SimulationError):
            _ = FULL_RANGE.size

    def test_overlap(self):
        assert MemoryRange(0, 10).overlaps(MemoryRange(9, 20))
        assert not MemoryRange(0, 10).overlaps(MemoryRange(10, 20))
        assert ranges_conflict(MemoryRange(0, 10), MemoryRange(5, 6))


class TestRangeOfAccess:
    def test_unit_stride_vector(self):
        record = _vector_access(Opcode.V_LOAD, base=0x1000, vl=10, stride=1)
        memory_range = range_of_access(record)
        assert memory_range.start == 0x1000
        assert memory_range.end == 0x1000 + 9 * 8 + 8

    def test_strided_vector(self):
        record = _vector_access(Opcode.V_STORE, base=0x2000, vl=4, stride=3)
        memory_range = range_of_access(record)
        assert memory_range.start == 0x2000
        assert memory_range.end == 0x2000 + 3 * 3 * 8 + 8

    def test_negative_stride_swaps_endpoints(self):
        record = _vector_access(Opcode.V_LOAD, base=0x3000, vl=5, stride=-2)
        memory_range = range_of_access(record)
        assert memory_range.start == 0x3000 - 4 * 2 * 8
        assert memory_range.end == 0x3000 + 8

    def test_zero_length_vector(self):
        record = _vector_access(Opcode.V_LOAD, base=0x4000, vl=0, stride=1)
        memory_range = range_of_access(record)
        assert memory_range.size == 0

    def test_scalar_access_covers_one_element(self):
        record = _scalar_access(Opcode.S_LOAD, base=0x5000)
        memory_range = range_of_access(record)
        assert memory_range.size == ELEMENT_SIZE_BYTES

    def test_gather_and_scatter_cover_all_memory(self):
        gather = _vector_access(Opcode.V_GATHER, base=0x100, vl=8, stride=1, indexed=True)
        scatter = _vector_access(Opcode.V_SCATTER, base=0x9000, vl=8, stride=1, indexed=True)
        assert range_of_access(gather).full
        assert range_of_access(scatter).full
        assert range_of_access(gather).overlaps(MemoryRange(0, 1))

    def test_non_memory_instruction_rejected(self):
        record = DynamicInstruction(
            instruction=make_instruction(
                Opcode.V_ADD, destinations=[v_reg(0)], sources=[v_reg(1)]
            ),
            sequence=0,
            vector_length=8,
        )
        with pytest.raises(SimulationError):
            range_of_access(record)

    @given(
        base=st.integers(0, 2**30),
        vl=st.integers(1, 128),
        stride=st.integers(-16, 16).filter(lambda s: s != 0),
    )
    def test_every_element_address_is_inside_the_range(self, base, vl, stride):
        record = _vector_access(Opcode.V_LOAD, base=base, vl=vl, stride=stride)
        memory_range = range_of_access(record)
        for element in range(vl):
            address = base + element * stride * ELEMENT_SIZE_BYTES
            assert memory_range.contains(address)


class TestAccessesIdentical:
    def test_identical_load_store_pair(self):
        store = _vector_access(Opcode.V_STORE, base=0x100, vl=16, stride=1)
        load = _vector_access(Opcode.V_LOAD, base=0x100, vl=16, stride=1)
        assert accesses_identical(load, store)

    def test_different_base_not_identical(self):
        store = _vector_access(Opcode.V_STORE, base=0x100, vl=16, stride=1)
        load = _vector_access(Opcode.V_LOAD, base=0x108, vl=16, stride=1)
        assert not accesses_identical(load, store)

    def test_different_length_not_identical(self):
        store = _vector_access(Opcode.V_STORE, base=0x100, vl=16, stride=1)
        load = _vector_access(Opcode.V_LOAD, base=0x100, vl=8, stride=1)
        assert not accesses_identical(load, store)

    def test_indexed_never_identical(self):
        store = _vector_access(Opcode.V_SCATTER, base=0x100, vl=16, stride=1, indexed=True)
        load = _vector_access(Opcode.V_GATHER, base=0x100, vl=16, stride=1, indexed=True)
        assert not accesses_identical(load, store)

    def test_scalar_vector_mismatch(self):
        store = _scalar_access(Opcode.S_STORE, base=0x100)
        load = _vector_access(Opcode.V_LOAD, base=0x100, vl=1, stride=1)
        assert not accesses_identical(load, store)

    def test_scalar_pair_identical(self):
        store = _scalar_access(Opcode.S_STORE, base=0x200)
        load = _scalar_access(Opcode.S_LOAD, base=0x200)
        assert accesses_identical(load, store)

    def test_wrong_direction_rejected(self):
        store = _vector_access(Opcode.V_STORE, base=0x100, vl=16, stride=1)
        load = _vector_access(Opcode.V_LOAD, base=0x100, vl=16, stride=1)
        assert not accesses_identical(store, load)
