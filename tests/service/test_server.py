"""End-to-end service tests: real sockets, real simulations, tiny traces.

Every test starts a :class:`ReproService` on an ephemeral port inside one
``asyncio.run`` and talks to it with a raw reader/writer HTTP client — no
external HTTP library, and no server subprocess (the CI smoke script covers
that path).
"""

import asyncio
import json

import pytest

from repro.service.server import ReproService
from repro.store import ResultStore

SCALE = 0.05  # tiny traces keep each simulated cell in the low milliseconds

SWEEP_BODY = {
    "programs": ["trfd"],
    "latencies": [1, 50],
    "architectures": ["ref", "dva"],
    "scale": SCALE,
}


async def request(port, method, path, body=None, headers=()):
    """One HTTP exchange: returns (status, parsed-JSON body or raw text)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = b"" if body is None else json.dumps(body).encode()
        head = [f"{method} {path} HTTP/1.1", "Host: t", "Connection: close"]
        head += [f"{name}: {value}" for name, value in headers]
        head.append(f"Content-Length: {len(payload)}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    status_line, _, rest = raw.partition(b"\r\n")
    status = int(status_line.split()[1])
    _, _, body_bytes = raw.partition(b"\r\n\r\n")
    try:
        return status, json.loads(body_bytes)
    except ValueError:
        return status, body_bytes.decode("utf-8", "replace")


async def poll_until_settled(port, sweep_id, timeout=30.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        status, payload = await request(port, "GET", f"/v1/sweeps/{sweep_id}")
        assert status == 200
        if payload["state"] != "running":
            return payload
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"sweep never settled: {payload}")
        await asyncio.sleep(0.02)


class running_service:
    """Async context manager: a started service + its bound port."""

    def __init__(self, store, **kwargs):
        self.service = ReproService(store=store, batch_window=0.002, **kwargs)

    async def __aenter__(self):
        self.server = await self.service.start(host="127.0.0.1", port=0)
        self.port = self.server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc):
        self.server.close()
        await self.server.wait_closed()
        await self.service.aclose()


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


class TestEndpoints:
    def test_healthz_reports_liveness(self, store):
        async def main():
            async with running_service(store) as svc:
                return await request(svc.port, "GET", "/v1/healthz")

        status, payload = asyncio.run(main())
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0

    def test_run_simulates_cold_and_answers_warm_from_store(self, store):
        async def main():
            async with running_service(store) as svc:
                body = {"program": "trfd", "arch": "dva", "latency": 1, "scale": SCALE}
                cold = await request(svc.port, "POST", "/v1/run", body)
                warm = await request(svc.port, "POST", "/v1/run", body)
                return cold, warm, svc.service.scheduler.counters()

        (cold_status, cold), (warm_status, warm), counters = asyncio.run(main())
        assert cold_status == warm_status == 200
        assert cold["cached"] is False and warm["cached"] is True
        assert warm["total_cycles"] == cold["total_cycles"]
        assert counters["simulated"] == 1 and counters["store_hits"] == 1

    def test_sweep_lifecycle_cold_then_fully_warm(self, store):
        async def main():
            async with running_service(store) as svc:
                status, submitted = await request(svc.port, "POST", "/v1/sweeps", SWEEP_BODY)
                assert status == 202
                cold = await poll_until_settled(svc.port, submitted["sweep"])

                # Re-submit the identical sweep against a *pristine* service
                # whose cold paths are booby-trapped: if the warm sweep
                # builds a trace or dispatches a batch, it detonates.
                async with running_service(store) as warm_svc:
                    warm_svc.service.scheduler.runner.run_batch = _detonate
                    from repro.core.experiment import TraceCache

                    original = TraceCache.get
                    TraceCache.get = _detonate
                    try:
                        status, resubmitted = await request(
                            warm_svc.port, "POST", "/v1/sweeps", SWEEP_BODY
                        )
                        assert status == 202
                        warm = await poll_until_settled(warm_svc.port, resubmitted["sweep"])
                    finally:
                        TraceCache.get = original
                    return cold, warm, warm_svc.service.scheduler.counters()

        cold, warm, warm_counters = asyncio.run(main())
        assert cold["state"] == "done"
        assert cold["done"] == cold["total"] == 4
        assert cold["simulated"] == 4 and cold["cached"] == 0
        assert len(cold["results"]) == 4

        assert warm["state"] == "done"
        assert warm["cached"] == 4 and warm["simulated"] == 0
        assert warm_counters["store_hits"] == 4
        assert warm_counters["batches_dispatched"] == 0
        # Same cells, same answers.
        cycles = lambda payload: sorted(r["total_cycles"] for r in payload["results"])  # noqa: E731
        assert cycles(warm) == cycles(cold)

    def test_sweep_events_stream_replays_and_completes(self, store):
        async def main():
            async with running_service(store) as svc:
                _, submitted = await request(svc.port, "POST", "/v1/sweeps", SWEEP_BODY)
                reader, writer = await asyncio.open_connection("127.0.0.1", svc.port)
                writer.write(
                    f"GET {submitted['events_url']} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
                )
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(), timeout=30)
                writer.close()
                return raw.decode()

        raw = asyncio.run(main())
        assert "Transfer-Encoding: chunked" in raw
        data_lines = [line for line in raw.splitlines() if line.startswith("data: ")]
        # 4 progress events + the final done payload.
        assert len(data_lines) == 5
        assert "event: done" in raw
        events = [json.loads(line[len("data: "):]) for line in data_lines[:-1]]
        assert [event["done"] for event in events] == [1, 2, 3, 4]
        final = json.loads(data_lines[-1][len("data: "):])
        assert final["state"] == "done"

    def test_client_disconnect_mid_stream_does_not_kill_the_sweep(self, store):
        async def main():
            async with running_service(store) as svc:
                _, submitted = await request(svc.port, "POST", "/v1/sweeps", SWEEP_BODY)
                # Open the event stream and slam the connection shut at once.
                reader, writer = await asyncio.open_connection("127.0.0.1", svc.port)
                writer.write(
                    f"GET {submitted['events_url']} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
                )
                await writer.drain()
                await reader.read(64)  # the response head has started
                writer.close()
                # The sweep must still run to completion for other clients.
                return await poll_until_settled(svc.port, submitted["sweep"])

        final = asyncio.run(main())
        assert final["state"] == "done"
        assert final["done"] == 4

    def test_concurrent_identical_sweeps_share_simulations(self, store):
        async def main():
            async with running_service(store) as svc:
                submissions = await asyncio.gather(
                    request(svc.port, "POST", "/v1/sweeps", SWEEP_BODY),
                    request(svc.port, "POST", "/v1/sweeps", SWEEP_BODY),
                )
                finals = await asyncio.gather(
                    *(
                        poll_until_settled(svc.port, payload["sweep"])
                        for _status, payload in submissions
                    )
                )
                return finals, svc.service.scheduler.counters()

        finals, counters = asyncio.run(main())
        assert all(final["state"] == "done" for final in finals)
        # 8 cells requested across the two sweeps, only 4 distinct → the
        # duplicates joined in-flight simulations instead of re-running.
        assert counters["cells_requested"] == 8
        assert counters["simulated"] + counters["store_hits"] + counters["inflight_joins"] == 8
        assert counters["simulated"] == 4
        assert counters["inflight_joins"] + counters["store_hits"] == 4

    def test_sweep_listing_and_status_without_results(self, store):
        async def main():
            async with running_service(store) as svc:
                _, submitted = await request(svc.port, "POST", "/v1/sweeps", SWEEP_BODY)
                await poll_until_settled(svc.port, submitted["sweep"])
                listing = await request(svc.port, "GET", "/v1/sweeps")
                slim = await request(
                    svc.port, "GET", f"/v1/sweeps/{submitted['sweep']}?results=none"
                )
                return submitted, listing, slim

        submitted, (list_status, listing), (slim_status, slim) = asyncio.run(main())
        assert list_status == slim_status == 200
        assert [job["sweep"] for job in listing["sweeps"]] == [submitted["sweep"]]
        assert "results" not in listing["sweeps"][0]
        assert "results" not in slim and slim["state"] == "done"

    def test_stats_extends_the_cache_stats_payload(self, store):
        async def main():
            async with running_service(store) as svc:
                body = {"program": "trfd", "latency": 1, "scale": SCALE}
                await request(svc.port, "POST", "/v1/run", body)
                return await request(svc.port, "GET", "/v1/stats")

        status, payload = asyncio.run(main())
        assert status == 200
        # The `repro cache stats --json` keys are all present...
        expected = store.stats()
        assert set(expected) <= set(payload)
        assert payload["entry_count"] == 1
        # ...plus the service block with live counters.
        service = payload["service"]
        assert service["requests_served"] == 2
        assert service["sweeps_submitted"] == 0
        assert service["scheduler"]["simulated"] == 1
        # ...plus the cluster block (no distributed sweeps here, so empty).
        assert payload["cluster"]["sweeps"] == []
        assert payload["cluster"]["running_sweeps"] == 0

    @pytest.mark.parametrize(
        "method, path, body, status",
        [
            ("GET", "/v1/nope", None, 404),
            ("DELETE", "/v1/run", None, 405),
            ("GET", "/v1/sweeps/sw-missing", None, 404),
            ("POST", "/v1/run", {"program": "trfd", "latency": "x"}, 400),
            ("POST", "/v1/run", {"program": "no-such-program"}, 400),
            ("POST", "/v1/run", {"program": "trfd", "arch": "no-such-arch"}, 400),
            ("POST", "/v1/sweeps", {"programs": ["trfd"], "latencies": []}, 400),
        ],
    )
    def test_errors_come_back_as_json_with_the_right_status(
        self, store, method, path, body, status
    ):
        async def main():
            async with running_service(store) as svc:
                return await request(svc.port, method, path, body)

        got_status, payload = asyncio.run(main())
        assert got_status == status
        assert payload["status"] == status and payload["error"]

    def test_keep_alive_serves_sequential_requests_on_one_connection(self, store):
        async def main():
            async with running_service(store) as svc:
                reader, writer = await asyncio.open_connection("127.0.0.1", svc.port)
                try:
                    for expect_close in (False, True):
                        connection = "close" if expect_close else "keep-alive"
                        writer.write(
                            (
                                f"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n"
                                f"Connection: {connection}\r\nContent-Length: 0\r\n\r\n"
                            ).encode()
                        )
                        await writer.drain()
                        head = await reader.readuntil(b"\r\n\r\n")
                        assert b"200 OK" in head
                        length = int(
                            [
                                line.split(b":")[1]
                                for line in head.splitlines()
                                if line.lower().startswith(b"content-length")
                            ][0]
                        )
                        body = await reader.readexactly(length)
                        assert json.loads(body)["status"] == "ok"
                    assert await reader.read() == b""  # server honoured close
                finally:
                    writer.close()

        asyncio.run(main())


def _detonate(*args, **kwargs):
    raise AssertionError("warm sweep took a cold path")
