"""The minimal HTTP layer: parsing, routing, responses, streaming.

These tests drive :func:`serve_connection` over in-memory stream pairs (a
real client socket is exercised in ``test_server.py``); request parsing is
tested against a hand-fed :class:`asyncio.StreamReader`.
"""

import asyncio
import json

import pytest

from repro.service.http import (
    EventStream,
    HttpError,
    Router,
    json_response,
    read_request,
)


def run(coro):
    return asyncio.run(coro)


def parse(data: bytes):
    # The reader must be built inside a running loop (StreamReader binds one).
    async def _parse():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)

    return run(_parse())


class TestReadRequest:
    def test_parses_method_path_query_headers_and_body(self):
        body = b'{"program":"trfd"}'
        raw = (
            b"POST /v1/run?results=full HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: %d\r\n"
            b"\r\n" % len(body)
        ) + body
        request = parse(raw)
        assert request.method == "POST"
        assert request.path == "/v1/run"
        assert request.query == {"results": "full"}
        assert request.headers["host"] == "localhost"
        assert request.body == b'{"program":"trfd"}'

    def test_body_json_helper_parses_and_rejects(self):
        raw = (
            b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}"
        )
        request = parse(raw)
        assert request.json() == {}
        request.body = b"{nope"
        with pytest.raises(HttpError) as err:
            request.json()
        assert err.value.status == 400

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_request_is_a_400(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET /partial HTTP/1.1\r\n")
        assert err.value.status == 400

    @pytest.mark.parametrize(
        "raw, status",
        [
            (b"NOT-A-REQUEST\r\n\r\n", 400),
            (b"GET / SPDY/3\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n", 413),
            (b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
        ],
    )
    def test_malformed_requests_map_to_http_errors(self, raw, status):
        with pytest.raises(HttpError) as err:
            parse(raw)
        assert err.value.status == status


class TestRouter:
    def _router(self):
        router = Router()

        async def handler(request, **params):  # pragma: no cover - never run
            raise AssertionError

        router.add("GET", "/v1/sweeps", handler)
        router.add("POST", "/v1/sweeps", handler)
        router.add("GET", "/v1/sweeps/{sweep_id}/events", handler)
        return router

    def test_exact_and_parameterized_matches(self):
        router = self._router()
        _, params = router.match("GET", "/v1/sweeps")
        assert params == {}
        _, params = router.match("GET", "/v1/sweeps/sw-1/events")
        assert params == {"sweep_id": "sw-1"}

    def test_unknown_path_is_404(self):
        with pytest.raises(HttpError) as err:
            self._router().match("GET", "/v2/sweeps")
        assert err.value.status == 404

    def test_wrong_method_is_405_listing_alternatives(self):
        with pytest.raises(HttpError) as err:
            self._router().match("DELETE", "/v1/sweeps")
        assert err.value.status == 405
        assert "GET" in str(err.value) and "POST" in str(err.value)

    def test_parameter_segment_does_not_match_deeper_paths(self):
        with pytest.raises(HttpError) as err:
            self._router().match("GET", "/v1/sweeps/sw-1/events/extra")
        assert err.value.status == 404


class TestResponses:
    def test_json_response_bodies_round_trip(self):
        response = json_response({"alpha": 1}, status=202)
        assert response.status == 202
        assert json.loads(response.body) == {"alpha": 1}

    def test_event_stream_declares_sse_content_type(self):
        async def events():  # pragma: no cover - iterated elsewhere
            yield "data: {}\n\n"

        stream = EventStream(events=events())
        assert stream.content_type == "text/event-stream"
