"""The single-flight cell scheduler: dedup, store fast path, batching.

Simulation itself is faked with a counting runner so every concurrency
property is asserted deterministically and fast; the real runner is
exercised end-to-end in ``test_server.py`` and by the sweep tests.
"""

import asyncio
import threading
import time
from dataclasses import replace

import pytest

from repro.core.config import RunConfig
from repro.core.registry import resolve_architecture
from repro.core.result import RunResult
from repro.service.scheduler import CellScheduler
from repro.store import ResultStore, cell_key


class CountingRunner:
    """A Runner stand-in: records batches, fabricates results, can be slow."""

    def __init__(self, store=None, delay=0.0, fail=False):
        self.store = store
        self.delay = delay
        self.fail = fail
        self.lock = threading.Lock()
        self.batches = []
        self.simulated = 0
        self.effective_jobs = 1

    def run_batch(self, program, scale, tasks, config):
        if self.delay:
            time.sleep(self.delay)
        if self.fail:
            raise RuntimeError("batch exploded")
        with self.lock:
            self.batches.append((program, scale, tuple(tasks)))
            self.simulated += len(tasks)
        results = []
        for latency, simulator, key in tasks:
            # Headline fields live in `detail` too, so the result survives
            # the store's JSON round trip (from_json rebuilds from detail).
            detail = {
                "program": program,
                "latency": latency,
                "total_cycles": 1000 + latency,
                "instructions": 100,
                "memory_traffic_bytes": 0,
                "scalar_cache_hits": 0,
                "scalar_cache_misses": 0,
            }
            result = RunResult(
                architecture=simulator.name,
                program=program,
                latency=latency,
                total_cycles=1000 + latency,
                instructions=100,
                detail=detail,
            )
            if self.store is not None and key is not None:
                result = replace(result, store_key=key)
                self.store.put(key, result, scale=scale)
            results.append(result)
        return results

    def close(self):
        pass


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


def make_scheduler(store=None, **runner_kwargs):
    runner = CountingRunner(store=store, **runner_kwargs)
    return CellScheduler(store=store, batch_window=0.001, runner=runner), runner


DVA = resolve_architecture("dva")
REF = resolve_architecture("ref")


class TestSingleFlight:
    def test_concurrent_identical_cells_share_one_simulation(self, store):
        async def main():
            scheduler, runner = make_scheduler(store, delay=0.02)
            try:
                results = await asyncio.gather(
                    *(scheduler.run_cell("TRFD", 50, DVA) for _ in range(8))
                )
            finally:
                scheduler.close()
            return results, runner, scheduler

        results, runner, scheduler = asyncio.run(main())
        assert runner.simulated == 1
        assert len(runner.batches) == 1
        assert scheduler.inflight_joins == 7
        assert scheduler.cells_requested == 8
        assert all(result == results[0] for result in results)

    def test_a_cancelled_waiter_does_not_cancel_the_shared_simulation(self, store):
        async def main():
            scheduler, runner = make_scheduler(store, delay=0.05)
            try:
                first = asyncio.ensure_future(scheduler.run_cell("TRFD", 50, DVA))
                await asyncio.sleep(0)  # let it register in-flight
                second = asyncio.ensure_future(scheduler.run_cell("TRFD", 50, DVA))
                await asyncio.sleep(0.01)  # batch dispatched, simulation running
                first.cancel()
                result = await second
                assert first.cancelled()
                return result, runner
            finally:
                scheduler.close()

        result, runner = asyncio.run(main())
        assert runner.simulated == 1
        assert result.total_cycles == 1050

    def test_in_flight_map_empties_once_results_land(self, store):
        async def main():
            scheduler, _runner = make_scheduler(store)
            try:
                await scheduler.run_cell("TRFD", 1, DVA)
                return scheduler.inflight_count
            finally:
                scheduler.close()

        assert asyncio.run(main()) == 0

    def test_batch_failure_propagates_to_every_waiter(self, store):
        async def main():
            scheduler, _runner = make_scheduler(store, fail=True)
            try:
                waiters = [
                    asyncio.ensure_future(scheduler.run_cell("TRFD", 1, DVA))
                    for _ in range(3)
                ]
                outcomes = await asyncio.gather(*waiters, return_exceptions=True)
                return outcomes, scheduler.inflight_count
            finally:
                scheduler.close()

        outcomes, inflight = asyncio.run(main())
        assert all(isinstance(outcome, RuntimeError) for outcome in outcomes)
        assert inflight == 0


class TestStoreFastPath:
    def test_warm_cells_never_touch_the_runner(self, store):
        async def warm():
            scheduler, _runner = make_scheduler(store)
            try:
                await scheduler.run_cell("TRFD", 50, DVA)
            finally:
                scheduler.close()

        asyncio.run(warm())

        async def cold_runner_must_stay_cold():
            scheduler, runner = make_scheduler(store, fail=True)  # dispatch would raise
            try:
                result = await scheduler.run_cell("TRFD", 50, DVA)
                return result, runner, scheduler
            finally:
                scheduler.close()

        result, runner, scheduler = asyncio.run(cold_runner_must_stay_cold())
        assert result.cached is True
        assert scheduler.store_hits == 1
        assert scheduler.batches_dispatched == 0
        assert runner.batches == []

    def test_simulated_cells_are_merged_into_the_advisory_index(self, store):
        async def main():
            scheduler, _runner = make_scheduler(store)
            try:
                await scheduler.run_cell("TRFD", 50, DVA)
                await scheduler.drain()
            finally:
                scheduler.close()

        asyncio.run(main())
        key = cell_key("TRFD", 1.0, 50, DVA, RunConfig())
        import json

        index = json.loads(store.index_path.read_text())
        assert key in index["entries"]


class TestBatching:
    def test_cells_arriving_in_one_window_coalesce_per_program(self, store):
        async def main():
            scheduler, runner = make_scheduler(store, delay=0.005)
            try:
                await asyncio.gather(
                    scheduler.run_cell("TRFD", 1, DVA),
                    scheduler.run_cell("TRFD", 50, DVA),
                    scheduler.run_cell("TRFD", 1, REF),
                    scheduler.run_cell("DYFESM", 1, DVA),
                )
                return runner, scheduler
            finally:
                scheduler.close()

        runner, scheduler = asyncio.run(main())
        assert scheduler.batches_dispatched == 2  # one per program
        by_program = {program: tasks for program, _scale, tasks in runner.batches}
        assert len(by_program["TRFD"]) == 3
        assert len(by_program["DYFESM"]) == 1

    def test_distinct_sweeps_interleave_through_the_same_scheduler(self, store):
        # Two "sweeps" (disjoint cell sets) submitted concurrently: every
        # cell completes, each exactly once, with no cross-talk.
        async def sweep(scheduler, program, latencies):
            return await asyncio.gather(
                *(scheduler.run_cell(program, latency, DVA) for latency in latencies)
            )

        async def main():
            scheduler, runner = make_scheduler(store, delay=0.01)
            try:
                first, second = await asyncio.gather(
                    sweep(scheduler, "TRFD", (1, 50, 100)),
                    sweep(scheduler, "DYFESM", (1, 50, 100)),
                )
                return first, second, runner
            finally:
                scheduler.close()

        first, second, runner = asyncio.run(main())
        assert [result.latency for result in first] == [1, 50, 100]
        assert [result.program for result in second] == ["DYFESM"] * 3
        assert runner.simulated == 6

    def test_uncacheable_cells_are_simulated_not_deduplicated(self, store):
        class OpaqueSimulator:
            name = "opaque"
            description = "not spec-backed"

            def simulate(self, trace, config):  # pragma: no cover - faked away
                raise AssertionError

        async def main():
            scheduler, runner = make_scheduler(store, delay=0.01)
            opaque = OpaqueSimulator()
            try:
                await asyncio.gather(
                    scheduler.run_cell("TRFD", 1, opaque),
                    scheduler.run_cell("TRFD", 1, opaque),
                )
                return runner, scheduler
            finally:
                scheduler.close()

        runner, scheduler = asyncio.run(main())
        assert scheduler.uncacheable == 2
        assert scheduler.inflight_joins == 0
        assert runner.simulated == 2  # no identity → no dedup, by design

    def test_closed_scheduler_rejects_new_cells(self, store):
        async def main():
            scheduler, _runner = make_scheduler(store)
            scheduler.close()
            with pytest.raises(RuntimeError):
                await scheduler.run_cell("TRFD", 1, DVA)

        asyncio.run(main())
