"""The JSON wire protocol: request parsing and payload rendering."""

import pytest

from repro.core.experiment import CellProgress, SweepSpec
from repro.service.protocol import (
    ProtocolError,
    parse_run_request,
    parse_sweep_request,
    progress_payload,
    result_payload,
    sweep_spec_payload,
)


class TestParseRunRequest:
    def test_minimal_request_gets_defaults(self):
        run = parse_run_request({"program": "trfd"})
        assert run.program == "trfd"
        assert run.architecture == "dva"
        assert run.latency == 1
        assert run.scale == 1.0

    def test_full_request(self):
        run = parse_run_request(
            {"program": "DYFESM", "arch": "dva@lanes=2", "latency": 50, "scale": 0.5}
        )
        assert run.architecture == "dva@lanes=2"
        assert run.latency == 50
        assert run.scale == 0.5

    def test_architecture_is_an_accepted_alias_for_arch(self):
        run = parse_run_request({"program": "trfd", "architecture": "ref"})
        assert run.architecture == "ref"

    @pytest.mark.parametrize(
        "payload",
        [
            [],
            "not an object",
            {},
            {"program": ""},
            {"program": 7},
            {"program": "trfd", "latency": "fifty"},
            {"program": "trfd", "latency": 1.5},
            {"program": "trfd", "latency": True},
            {"program": "trfd", "scale": "big"},
            {"program": "trfd", "arch": ""},
            {"program": "trfd", "arch": "ref", "architecture": "dva"},
            {"program": "trfd", "unknown_field": 1},
        ],
    )
    def test_malformed_requests_raise_protocol_errors(self, payload):
        with pytest.raises(ProtocolError):
            parse_run_request(payload)


class TestParseSweepRequest:
    def test_lists_parse_into_a_spec(self):
        spec = parse_sweep_request(
            {
                "programs": ["dyfesm", "trfd"],
                "latencies": [1, 50],
                "architectures": ["ref", "dva"],
            }
        )
        assert spec == SweepSpec(
            programs=("dyfesm", "trfd"), latencies=(1, 50), architectures=("ref", "dva")
        )

    def test_comma_separated_strings_parse_like_the_cli(self):
        spec = parse_sweep_request(
            {"programs": "dyfesm,trfd", "latencies": "1,50", "architectures": "ref,dva"}
        )
        assert spec.programs == ("DYFESM", "TRFD")
        assert spec.latencies == (1, 50)

    def test_axes_as_mapping(self):
        spec = parse_sweep_request(
            {"programs": ["trfd"], "latencies": [1], "axes": {"lanes": [1, 2]}}
        )
        assert spec.axes == (("lanes", (1, 2)),)

    def test_axes_as_pair_list_round_trips_with_payload(self):
        spec = parse_sweep_request(
            {"programs": ["trfd"], "latencies": [1], "axes": [["lanes", [1, 2]]]}
        )
        assert parse_sweep_request(sweep_spec_payload(spec)) == spec

    def test_spec_payload_matches_sweep_result_spec_block(self):
        spec = SweepSpec(programs=("trfd",), latencies=(1, 50), axes={"lanes": (1, 2)})
        payload = sweep_spec_payload(spec)
        assert payload["programs"] == ["TRFD"]
        assert payload["axes"] == [["lanes", [1, 2]]]
        assert parse_sweep_request(payload) == spec

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"programs": []},
            {"programs": ["trfd"]},  # no latencies at all
            {"programs": ["trfd"], "latencies": "one,two"},
            {"programs": ["trfd"], "latencies": [1], "axes": "lanes=1,2"},
            {"programs": ["trfd"], "latencies": [1], "axes": [["lanes"]]},
            {"programs": ["trfd"], "latencies": [1], "axes": {"": [1]}},
            {"programs": ["trfd"], "latencies": [1], "bogus": True},
            {"programs": ["trfd"], "latencies": [1], "scale": -1.0},
            {"programs": ["trfd"], "latencies": [1, 1.5]},
        ],
    )
    def test_malformed_sweeps_raise_protocol_errors(self, payload):
        with pytest.raises(ProtocolError):
            parse_sweep_request(payload)

    def test_configuration_errors_surface_as_protocol_errors(self):
        # Duplicate latency declaration is SweepSpec's own validation.
        with pytest.raises(ProtocolError):
            parse_sweep_request(
                {"programs": ["trfd"], "latencies": [1], "axes": {"latency": [1, 50]}}
            )


class TestResponsePayloads:
    def test_result_payload_carries_headline_and_detail(self, monkeypatch):
        from repro.core.registry import simulate
        from repro.workloads.perfect_club import build_trace

        result = simulate(build_trace("TRFD"), "dva", latency=1)
        payload = result_payload(result)
        assert payload["program"] == "TRFD"
        assert payload["architecture"] == "dva"
        assert payload["total_cycles"] == result.total_cycles
        assert payload["cached"] is False
        assert payload["summary"]["total_cycles"] == result.total_cycles

    def test_progress_payload_round_trips_the_event_fields(self):
        event = CellProgress(
            done=3, total=8, cached=2, simulated=1, program="TRFD",
            latency=50, architecture="dva", from_store=False,
        )
        payload = progress_payload(event)
        assert payload == {
            "done": 3, "total": 8, "cached": 2, "simulated": 1,
            "program": "TRFD", "latency": 50, "architecture": "dva",
            "from_store": False,
        }
