"""Property-style and integration tests for the reference simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.refarch import ReferenceConfig, simulate_reference
from repro.trace.statistics import compute_statistics
from repro.workloads import load_program, program_names, synthetic
from repro.workloads.compiler import VectorizingCompiler
from repro.trace.generator import TraceBuilder
from repro.workloads.kernel import LoopKernel, VectorStream


def _trace_for_kernel(kernel, invocations=1, name="prop"):
    compiler = VectorizingCompiler(name)
    compiled = compiler.compile(kernel)
    builder = TraceBuilder(name)
    compiled.emit_program(builder, invocations=invocations)
    return builder.build()


class TestMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(
        loads=st.integers(1, 3),
        fu_ops=st.integers(1, 4),
        vl=st.integers(8, 128),
    )
    def test_execution_time_is_monotone_in_latency(self, loads, fu_ops, vl):
        kernel = LoopKernel(
            name="k",
            elements=vl * 3,
            max_vector_length=vl,
            loads=tuple(VectorStream(f"s{i}") for i in range(loads)),
            stores=(VectorStream("out"),),
            fu_any_ops=fu_ops,
            address_ops=2,
            scalar_ops=2,
        )
        trace = _trace_for_kernel(kernel)
        cycles = [
            simulate_reference(trace, latency).total_cycles
            for latency in (1, 10, 40, 80)
        ]
        assert cycles == sorted(cycles)

    @settings(max_examples=15, deadline=None)
    @given(vl=st.integers(4, 128), latency=st.integers(1, 100))
    def test_cycles_at_least_port_occupancy(self, vl, latency):
        kernel = synthetic.stream_triad(elements=vl * 4, max_vector_length=vl)
        trace = _trace_for_kernel(kernel)
        result = simulate_reference(trace, latency)
        assert result.total_cycles >= result.port_busy.busy_time()
        assert result.total_cycles >= result.fu1_busy.busy_time()
        assert result.total_cycles >= result.fu2_busy.busy_time()

    @settings(max_examples=15, deadline=None)
    @given(vl=st.integers(4, 128))
    def test_load_chaining_never_hurts(self, vl):
        kernel = synthetic.daxpy(elements=vl * 4, max_vector_length=vl)
        trace = _trace_for_kernel(kernel)
        base = simulate_reference(trace, latency=30)
        chained = simulate_reference(
            trace, latency=30, config=ReferenceConfig(allow_load_chaining=True)
        )
        assert chained.total_cycles <= base.total_cycles


class TestBenchmarkPrograms:
    @pytest.mark.parametrize("name", program_names())
    def test_every_program_simulates(self, name):
        trace = load_program(name).build_trace(scale=0.25)
        result = simulate_reference(trace, latency=30)
        assert result.total_cycles > 0
        assert result.instructions == len(trace)
        breakdown = result.state_breakdown()
        assert sum(breakdown.cycles.values()) == result.total_cycles

    def test_memory_bound_programs_keep_port_busy(self):
        trace = load_program("ARC2D").build_trace(scale=0.5)
        result = simulate_reference(trace, latency=1)
        assert result.port_busy_fraction > 0.85

    def test_latency_hurts_short_vector_programs_more(self):
        """The paper: TRFD/SPEC77/DYFESM are hit hardest by memory latency."""
        degradation = {}
        for name in ("ARC2D", "TRFD"):
            trace = load_program(name).build_trace(scale=0.5)
            low = simulate_reference(trace, latency=1).total_cycles
            high = simulate_reference(trace, latency=100).total_cycles
            degradation[name] = high / low
        assert degradation["TRFD"] > degradation["ARC2D"]

    def test_idle_port_ordering_matches_paper(self):
        """Section 3: DYFESM and SPEC77 leave the port idle far more than ARC2D/FLO52."""
        idle = {}
        for name in ("ARC2D", "FLO52", "DYFESM", "SPEC77"):
            trace = load_program(name).build_trace(scale=0.5)
            idle[name] = simulate_reference(trace, latency=30).port_idle_fraction
        assert idle["DYFESM"] > idle["ARC2D"]
        assert idle["DYFESM"] > idle["FLO52"]
        assert idle["SPEC77"] > idle["ARC2D"]

    def test_traffic_matches_trace_bytes(self):
        trace = load_program("FLO52").build_trace(scale=0.25)
        stats = compute_statistics(trace)
        result = simulate_reference(trace, latency=10)
        # Scalar cache absorbs part of the scalar traffic, so simulator
        # traffic is bounded by the trace's total memory bytes.
        assert 0 < result.memory_traffic_bytes <= stats.memory_bytes
