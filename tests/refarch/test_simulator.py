"""Unit tests for the reference architecture simulator."""

import pytest

from repro.common.errors import SimulationError
from repro.core import simulate as core_simulate
from repro.isa.opcodes import Opcode
from repro.isa.registers import s_reg, v_reg
from repro.refarch import ReferenceConfig, simulate_reference
from repro.trace.record import DynamicInstruction, Trace
from repro.isa.instruction import make_instruction


class TestScalarOnly:
    def test_one_cycle_per_scalar_instruction(self, trace_from_block):
        def emit(b):
            for index in range(10):
                b.scalar_op(Opcode.S_ADD, s_reg(index % 4), [s_reg((index + 1) % 4)])

        trace = trace_from_block(emit)
        result = simulate_reference(trace, latency=50)
        # 10 instructions issue at cycles 0..9; the last completes at cycle 10.
        assert result.total_cycles == 10
        assert result.scalar_instructions == 10
        assert result.vector_instructions == 0
        assert result.port_busy.busy_time() == 0

    def test_dependent_scalars_still_one_per_cycle(self, trace_from_block):
        def emit(b):
            b.scalar_op(Opcode.S_LI, s_reg(0), immediate=1)
            for _ in range(5):
                b.scalar_op(Opcode.S_ADD, s_reg(0), [s_reg(0)])

        trace = trace_from_block(emit)
        result = simulate_reference(trace, latency=1)
        # A one-cycle producer is always ready by the time the next
        # instruction dispatches, so the chain still issues one per cycle.
        assert result.total_cycles == 6


class TestVectorMemoryTiming:
    def test_single_load_completion(self, trace_from_block):
        def emit(b):
            b.set_vector_length(64)
            b.vector_load(v_reg(0), "x")
            b.vector_op(Opcode.V_ADD, v_reg(1), [v_reg(0), v_reg(0)])

        trace = trace_from_block(emit)
        result = simulate_reference(trace, latency=30)
        # set_vl at 0, load issues at 1, bus [1, 65), data at 1+30+64 = 95,
        # add issues at 95 and completes at 95 + 4 + 64.
        assert result.total_cycles == 95 + 4 + 64

    def test_no_load_chaining_by_default(self, trace_from_block):
        def emit(b):
            b.set_vector_length(32)
            b.vector_load(v_reg(0), "x")
            b.vector_op(Opcode.V_ADD, v_reg(1), [v_reg(0), v_reg(0)])

        trace = trace_from_block(emit)
        base = simulate_reference(trace, latency=10)
        chained = simulate_reference(
            trace, latency=10, config=ReferenceConfig(allow_load_chaining=True)
        )
        assert chained.total_cycles < base.total_cycles

    def test_two_loads_serialize_on_port(self, trace_from_block):
        def emit(b):
            b.set_vector_length(50)
            b.vector_load(v_reg(0), "x")
            b.vector_load(v_reg(1), "y")

        trace = trace_from_block(emit)
        result = simulate_reference(trace, latency=20)
        assert result.port_busy.busy_time() == 100
        # Second load starts only when the port frees: 1 + 50 = 51,
        # completes at 51 + 20 + 50.
        assert result.total_cycles == 51 + 20 + 50

    def test_store_does_not_pay_latency(self, trace_from_block):
        def emit(b):
            b.set_vector_length(40)
            b.vector_store(v_reg(0), "out")

        trace = trace_from_block(emit)
        low = simulate_reference(trace, latency=1)
        high = simulate_reference(trace, latency=100)
        assert low.total_cycles == high.total_cycles

    def test_memory_traffic_accounting(self, trace_from_block):
        def emit(b):
            b.set_vector_length(16)
            b.vector_load(v_reg(0), "x")
            b.vector_store(v_reg(0), "y")

        trace = trace_from_block(emit)
        result = simulate_reference(trace, latency=1)
        assert result.memory_traffic_bytes == 2 * 16 * 8


class TestChaining:
    def test_fu_to_fu_chaining(self, trace_from_block):
        def emit(b):
            b.set_vector_length(100)
            b.vector_op(Opcode.V_ADD, v_reg(1), [v_reg(0), v_reg(0)])
            b.vector_op(Opcode.V_SUB, v_reg(2), [v_reg(1), v_reg(0)])

        trace = trace_from_block(emit)
        result = simulate_reference(trace, latency=1)
        # First op issues at 1, second chains at 1 + startup(4) = 5 and
        # completes at 5 + 4 + 100 = 109.
        assert result.total_cycles == 109

    def test_store_chains_from_functional_unit(self, trace_from_block):
        def emit(b):
            b.set_vector_length(60)
            b.vector_op(Opcode.V_ADD, v_reg(1), [v_reg(0), v_reg(0)])
            b.vector_store(v_reg(1), "out")

        trace = trace_from_block(emit)
        result = simulate_reference(trace, latency=1)
        # Add issues at 1; store chains at 5, occupies the port until 65.
        assert result.port_busy.raw_intervals[0].start == 5
        assert result.total_cycles == 65

    def test_reduction_result_not_chainable(self, trace_from_block):
        def emit(b):
            b.set_vector_length(30)
            b.vector_reduce(Opcode.V_SUM, s_reg(0), v_reg(0))
            b.scalar_op(Opcode.S_FADD, s_reg(1), [s_reg(0)])

        trace = trace_from_block(emit)
        result = simulate_reference(trace, latency=1)
        # V_SUM issues at 1, completes at 1 + 4 + 30 = 35; the scalar add
        # cannot chain and issues at 35, completing at 36.
        assert result.total_cycles == 36


class TestFunctionalUnits:
    def test_fu2_only_operations_use_fu2(self, trace_from_block):
        def emit(b):
            b.set_vector_length(20)
            b.vector_op(Opcode.V_MUL, v_reg(1), [v_reg(0), v_reg(0)])
            b.vector_op(Opcode.V_MUL, v_reg(2), [v_reg(0), v_reg(0)])

        trace = trace_from_block(emit)
        result = simulate_reference(trace, latency=1)
        assert result.fu2_busy.busy_time() == 40
        assert result.fu1_busy.busy_time() == 0

    def test_independent_ops_use_both_units(self, trace_from_block):
        def emit(b):
            b.set_vector_length(80)
            b.vector_op(Opcode.V_ADD, v_reg(1), [v_reg(0), v_reg(0)])
            b.vector_op(Opcode.V_SUB, v_reg(2), [v_reg(0), v_reg(0)])

        trace = trace_from_block(emit)
        result = simulate_reference(trace, latency=1)
        assert result.fu1_busy.busy_time() == 80
        assert result.fu2_busy.busy_time() == 80
        # They overlap: total time well under serial execution.
        assert result.total_cycles < 2 * 80 + 10

    def test_structural_hazard_on_fu2(self, trace_from_block):
        def emit(b):
            b.set_vector_length(50)
            b.vector_op(Opcode.V_MUL, v_reg(1), [v_reg(0), v_reg(0)])
            b.vector_op(Opcode.V_MUL, v_reg(2), [v_reg(3), v_reg(3)])

        trace = trace_from_block(emit)
        result = simulate_reference(trace, latency=1)
        intervals = result.fu2_busy.merged()
        assert len(intervals) == 1
        assert intervals[0].length == 100


class TestScalarMemory:
    def test_scalar_cache_hit_avoids_port(self, trace_from_block):
        def emit(b):
            b.scalar_load(s_reg(0), "globals")
            b.scalar_load(s_reg(1), "globals")

        trace = trace_from_block(emit)
        result = simulate_reference(trace, latency=80)
        assert result.scalar_cache_hits == 1
        assert result.scalar_cache_misses == 1
        assert result.port_busy.busy_time() == 1  # only the miss

    def test_scalar_store_write_through_option(self, trace_from_block):
        def emit(b):
            b.scalar_store(s_reg(0), "globals")
            b.scalar_store(s_reg(0), "globals")

        trace = trace_from_block(emit)
        default = simulate_reference(trace, latency=10)
        write_through = simulate_reference(
            trace, latency=10, config=ReferenceConfig(scalar_store_writes_through=True)
        )
        assert default.port_busy.busy_time() == 1
        assert write_through.port_busy.busy_time() == 2

    def test_scalar_miss_pays_latency(self, trace_from_block):
        def emit(b):
            b.scalar_load(s_reg(0), "globals")
            b.scalar_op(Opcode.S_ADD, s_reg(1), [s_reg(0)])

        trace = trace_from_block(emit)
        fast = simulate_reference(trace, latency=1)
        slow = simulate_reference(trace, latency=60)
        assert slow.total_cycles - fast.total_cycles == 59


class TestDispatchOrder:
    def test_blocked_instruction_delays_younger_ones(self, trace_from_block):
        def emit(b):
            b.set_vector_length(64)
            b.vector_load(v_reg(0), "x")
            # This depends on the load and blocks dispatch...
            b.vector_op(Opcode.V_ADD, v_reg(1), [v_reg(0), v_reg(0)])
            # ...so this independent scalar op cannot slip ahead.
            b.scalar_op(Opcode.S_ADD, s_reg(0), [s_reg(0)])

        trace = trace_from_block(emit)
        result = simulate_reference(trace, latency=40)
        # Load data at 1 + 40 + 64 = 105; add issues at 105; scalar at 106.
        assert result.total_cycles == 105 + 4 + 64
        assert result.dispatch_stall_cycles > 0


class TestValidation:
    def test_queue_move_rejected(self):
        instruction = make_instruction(Opcode.QMOV_V_LOAD, destinations=[v_reg(0)])
        trace = Trace(name="bad")
        trace.append(DynamicInstruction(instruction=instruction, sequence=0))
        with pytest.raises(SimulationError):
            core_simulate(trace, "ref", latency=1)

    def test_empty_trace(self):
        result = simulate_reference(Trace(name="empty"), latency=10)
        assert result.total_cycles == 0
        assert result.instructions == 0
        assert result.port_idle_fraction == 0.0


class TestStateBreakdown:
    def test_breakdown_partitions_execution_time(self, trace_from_block):
        def emit(b):
            b.set_vector_length(32)
            b.vector_load(v_reg(0), "x")
            b.vector_op(Opcode.V_MUL, v_reg(1), [v_reg(0), v_reg(0)])
            b.vector_op(Opcode.V_ADD, v_reg(2), [v_reg(1), v_reg(0)])
            b.vector_store(v_reg(2), "y")

        trace = trace_from_block(emit, repeats=5)
        result = simulate_reference(trace, latency=25)
        breakdown = result.state_breakdown()
        assert sum(breakdown.cycles.values()) == result.total_cycles
        assert result.all_idle_cycles > 0
        assert breakdown.cycles_resource_idle("LD") == result.port_idle_cycles
