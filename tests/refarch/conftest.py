"""Shared helpers for reference-architecture tests."""

import pytest

from repro.isa.builder import InstructionBuilder
from repro.isa.program import BasicBlock
from repro.trace.generator import TraceBuilder


@pytest.fixture
def trace_from_block():
    """Build a one-block trace from a callback that emits instructions."""

    def _build(emitter, name="unit", repeats=1):
        block = BasicBlock("body")
        emitter(InstructionBuilder(block))
        builder = TraceBuilder(name)
        for _ in range(repeats):
            builder.append_block(block)
        return builder.build()

    return _build
