"""Tests for the register model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.isa.registers import (
    RegisterClass,
    RegisterFile,
    VECTOR_REGISTER_COUNT,
    VL_REGISTER,
    VS_REGISTER,
    a_reg,
    s_reg,
    v_reg,
)


class TestRegister:
    def test_constructors(self):
        assert a_reg(3).register_class is RegisterClass.ADDRESS
        assert s_reg(2).register_class is RegisterClass.SCALAR
        assert v_reg(7).register_class is RegisterClass.VECTOR

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            v_reg(VECTOR_REGISTER_COUNT)
        with pytest.raises(ConfigurationError):
            a_reg(-1)

    def test_names(self):
        assert str(v_reg(3)) == "v3"
        assert str(a_reg(0)) == "a0"
        assert str(VL_REGISTER) == "VL"
        assert str(VS_REGISTER) == "VS"

    def test_classification(self):
        assert v_reg(0).is_vector
        assert not v_reg(0).is_scalar
        assert a_reg(0).is_scalar
        assert s_reg(0).is_scalar
        assert not s_reg(0).is_vector

    def test_vector_banks_group_pairs(self):
        assert v_reg(0).bank == 0
        assert v_reg(1).bank == 0
        assert v_reg(2).bank == 1
        assert v_reg(7).bank == 3

    def test_bank_of_scalar_register_rejected(self):
        with pytest.raises(ConfigurationError):
            _ = s_reg(0).bank

    def test_hashable_and_equal(self):
        assert v_reg(3) == v_reg(3)
        assert v_reg(3) != v_reg(4)
        assert len({v_reg(1), v_reg(1), v_reg(2)}) == 2


class TestRegisterFile:
    def test_round_robin_allocation(self):
        register_file = RegisterFile(RegisterClass.VECTOR)
        allocated = register_file.allocate_many(10)
        assert [r.index for r in allocated[:8]] == list(range(8))
        assert allocated[8].index == 0
        assert allocated[9].index == 1

    def test_reduced_size(self):
        register_file = RegisterFile(RegisterClass.VECTOR, size=4)
        allocated = register_file.allocate_many(5)
        assert [r.index for r in allocated] == [0, 1, 2, 3, 0]

    def test_reset(self):
        register_file = RegisterFile(RegisterClass.SCALAR)
        register_file.allocate()
        register_file.reset()
        assert register_file.allocate().index == 0

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            RegisterFile(RegisterClass.VECTOR, size=0)
        with pytest.raises(ConfigurationError):
            RegisterFile(RegisterClass.VECTOR, size=100)
