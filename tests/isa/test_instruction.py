"""Tests for the static instruction representation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.isa.instruction import MemoryOperand, make_instruction
from repro.isa.opcodes import ExecutionUnit, Opcode, OpcodeClass
from repro.isa.registers import VL_REGISTER, s_reg, v_reg


class TestMemoryOperand:
    def test_requires_region(self):
        with pytest.raises(ConfigurationError):
            MemoryOperand(region="")

    def test_rejects_zero_stride(self):
        with pytest.raises(ConfigurationError):
            MemoryOperand(region="a", stride=0)

    def test_negative_stride_allowed(self):
        operand = MemoryOperand(region="a", stride=-2)
        assert operand.stride == -2


class TestInstruction:
    def test_memory_instruction_requires_memory_operand(self):
        with pytest.raises(ConfigurationError):
            make_instruction(Opcode.V_LOAD, destinations=[v_reg(0)])

    def test_non_memory_instruction_rejects_memory_operand(self):
        with pytest.raises(ConfigurationError):
            make_instruction(
                Opcode.V_ADD,
                destinations=[v_reg(0)],
                sources=[v_reg(1)],
                memory=MemoryOperand(region="a"),
            )

    def test_classification_properties(self):
        load = make_instruction(
            Opcode.V_LOAD,
            destinations=[v_reg(1)],
            memory=MemoryOperand(region="x"),
        )
        assert load.is_vector
        assert load.is_memory
        assert load.is_load
        assert load.is_vector_memory
        assert not load.is_store
        assert load.execution_unit is ExecutionUnit.MEMORY
        assert load.opcode_class is OpcodeClass.VECTOR_MEMORY

        multiply = make_instruction(
            Opcode.V_MUL, destinations=[v_reg(2)], sources=[v_reg(0), v_reg(1)]
        )
        assert multiply.requires_fu2
        assert multiply.is_vector
        assert not multiply.is_memory

    def test_reads_and_writes(self):
        instruction = make_instruction(
            Opcode.V_ADD, destinations=[v_reg(2)], sources=[v_reg(0), v_reg(1)]
        )
        assert instruction.writes(v_reg(2))
        assert instruction.reads(v_reg(0))
        assert not instruction.reads(v_reg(2))
        assert instruction.vector_destinations() == (v_reg(2),)
        assert instruction.vector_sources() == (v_reg(0), v_reg(1))

    def test_scalar_operand_helpers(self):
        instruction = make_instruction(
            Opcode.V_SPLAT, destinations=[v_reg(0)], sources=[s_reg(1), VL_REGISTER]
        )
        assert instruction.scalar_sources() == (s_reg(1),)
        assert instruction.scalar_destinations() == ()

    def test_spill_marker(self):
        spill_store = make_instruction(
            Opcode.V_STORE,
            sources=[v_reg(0)],
            memory=MemoryOperand(region="spill0", is_spill=True),
        )
        assert spill_store.is_spill_access
        normal_store = make_instruction(
            Opcode.V_STORE,
            sources=[v_reg(0)],
            memory=MemoryOperand(region="data"),
        )
        assert not normal_store.is_spill_access

    def test_with_label(self):
        original = make_instruction(Opcode.S_ADD, destinations=[s_reg(0)])
        relabelled = original.with_label("loop1")
        assert relabelled.label == "loop1"
        assert relabelled.opcode is original.opcode
        assert original.label == ""

    def test_uid_uniqueness(self):
        first = make_instruction(Opcode.S_ADD, destinations=[s_reg(0)])
        second = make_instruction(Opcode.S_ADD, destinations=[s_reg(0)])
        assert first.uid != second.uid

    def test_string_rendering(self):
        instruction = make_instruction(
            Opcode.V_LOAD,
            destinations=[v_reg(1)],
            memory=MemoryOperand(region="x", stride=2, is_spill=True),
        )
        rendered = str(instruction)
        assert "v_load" in rendered
        assert "v1" in rendered
        assert "x:2!spill" in rendered
