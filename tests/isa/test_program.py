"""Tests for basic blocks, programs and the instruction builder."""

import pytest

from repro.common.errors import ConfigurationError
from repro.isa.builder import InstructionBuilder
from repro.isa.instruction import make_instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import BasicBlock, Program
from repro.isa.registers import s_reg, v_reg


class TestBasicBlock:
    def test_requires_label(self):
        with pytest.raises(ConfigurationError):
            BasicBlock(label="")

    def test_counts(self):
        block = BasicBlock("body")
        builder = InstructionBuilder(block)
        builder.set_vector_length(64)
        builder.vector_load(v_reg(0), "x")
        builder.vector_op(Opcode.V_ADD, v_reg(1), [v_reg(0), v_reg(0)])
        builder.vector_store(v_reg(1), "y")
        builder.scalar_op(Opcode.S_ADD, s_reg(0), [s_reg(0)])
        assert len(block) == 5
        assert block.vector_instruction_count == 3
        assert block.scalar_instruction_count == 2
        assert block.memory_instruction_count == 2

    def test_iteration_and_str(self):
        block = BasicBlock("header")
        block.append(make_instruction(Opcode.S_LI, destinations=[s_reg(0)], immediate=5))
        assert [i.opcode for i in block] == [Opcode.S_LI]
        assert "header:" in str(block)


class TestProgram:
    def test_requires_name(self):
        with pytest.raises(ConfigurationError):
            Program(name="")

    def test_add_and_lookup_blocks(self):
        program = Program("demo")
        block = program.new_block("entry")
        assert program.block("entry") is block
        assert program.has_block("entry")
        assert not program.has_block("missing")
        assert program.block_labels == ["entry"]

    def test_duplicate_label_rejected(self):
        program = Program("demo")
        program.new_block("entry")
        with pytest.raises(ConfigurationError):
            program.new_block("entry")

    def test_missing_block_lookup_raises(self):
        program = Program("demo")
        with pytest.raises(ConfigurationError):
            program.block("nope")

    def test_static_instruction_count(self):
        program = Program("demo")
        block = program.new_block("entry")
        block.append(make_instruction(Opcode.S_ADD, destinations=[s_reg(0)]))
        block.append(make_instruction(Opcode.S_ADD, destinations=[s_reg(1)]))
        assert program.static_instruction_count == 2
        assert len(program) == 1

    def test_blocks_supplied_at_construction_are_indexed(self):
        block = BasicBlock("start")
        program = Program("demo", blocks=[block])
        assert program.block("start") is block


class TestInstructionBuilder:
    def test_vector_load_and_store_operands(self):
        block = BasicBlock("b")
        builder = InstructionBuilder(block)
        load = builder.vector_load(v_reg(0), "x", stride=3, is_spill=True)
        store = builder.vector_store(v_reg(0), "y", indexed=True)
        assert load.opcode is Opcode.V_LOAD
        assert load.memory.stride == 3
        assert load.memory.is_spill
        assert store.opcode is Opcode.V_SCATTER
        assert store.memory.indexed

    def test_indexed_load_is_gather(self):
        block = BasicBlock("b")
        builder = InstructionBuilder(block)
        gather = builder.vector_load(v_reg(0), "x", indexed=True)
        assert gather.opcode is Opcode.V_GATHER

    def test_set_vl_records_immediate(self):
        block = BasicBlock("b")
        builder = InstructionBuilder(block)
        instruction = builder.set_vector_length(77)
        assert instruction.immediate == 77

    def test_label_prefix_composition(self):
        block = BasicBlock("b")
        builder = InstructionBuilder(block, label_prefix="loop1")
        tagged = builder.set_vector_length(10)
        assert tagged.label == "loop1"
        named = builder.vector_load(v_reg(0), "x", label="load_a")
        assert named.label == "loop1.load_a"

    def test_reduce_and_splat(self):
        block = BasicBlock("b")
        builder = InstructionBuilder(block)
        reduce_insn = builder.vector_reduce(Opcode.V_SUM, s_reg(0), v_reg(1))
        splat = builder.splat(v_reg(2), s_reg(0))
        assert reduce_insn.is_reduction
        assert s_reg(0) in reduce_insn.destinations
        assert splat.opcode is Opcode.V_SPLAT
        assert s_reg(0) in splat.sources

    def test_scalar_memory_and_branch(self):
        block = BasicBlock("b")
        builder = InstructionBuilder(block)
        load = builder.scalar_load(s_reg(1), "stack", is_spill=True)
        store = builder.scalar_store(s_reg(1), "stack")
        branch = builder.branch(s_reg(2))
        jump = builder.jump()
        assert load.is_scalar_memory and load.is_load and load.is_spill_access
        assert store.is_store
        assert branch.is_conditional_branch
        assert jump.is_branch and not jump.is_conditional_branch
