"""Tests for opcode classification."""


from repro.isa import opcodes as op
from repro.isa.opcodes import ExecutionUnit, Opcode, OpcodeClass


class TestClassificationCoverage:
    def test_every_opcode_is_classified(self):
        for opcode in Opcode:
            assert op.opcode_class(opcode) in OpcodeClass
            assert op.execution_unit(opcode) in ExecutionUnit

    def test_vector_and_scalar_are_disjoint(self):
        for opcode in Opcode:
            if op.opcode_class(opcode) in (
                OpcodeClass.SCALAR_COMPUTE,
                OpcodeClass.SCALAR_MEMORY,
                OpcodeClass.CONTROL,
                OpcodeClass.VECTOR_CONTROL,
                OpcodeClass.QUEUE_MOVE,
            ):
                assert not op.is_vector(opcode)

    def test_loads_and_stores_are_memory(self):
        for opcode in Opcode:
            if op.is_load(opcode) or op.is_store(opcode):
                assert op.is_memory(opcode)
            if op.is_memory(opcode):
                assert op.is_load(opcode) != op.is_store(opcode)


class TestSpecificOpcodes:
    def test_fu2_only_operations(self):
        for opcode in (Opcode.V_MUL, Opcode.V_DIV, Opcode.V_SQRT, Opcode.V_DOT):
            assert op.requires_fu2(opcode)
            assert op.execution_unit(opcode) is ExecutionUnit.FU2_ONLY

    def test_fu_any_operations(self):
        for opcode in (Opcode.V_ADD, Opcode.V_SUB, Opcode.V_AND, Opcode.V_SUM):
            assert not op.requires_fu2(opcode)
            assert op.execution_unit(opcode) is ExecutionUnit.FU_ANY

    def test_vector_memory(self):
        assert op.execution_unit(Opcode.V_LOAD) is ExecutionUnit.MEMORY
        assert op.is_load(Opcode.V_LOAD)
        assert op.is_store(Opcode.V_STORE)
        assert op.is_load(Opcode.V_GATHER)
        assert op.is_store(Opcode.V_SCATTER)
        assert op.is_indexed_memory(Opcode.V_GATHER)
        assert op.is_indexed_memory(Opcode.V_SCATTER)
        assert not op.is_indexed_memory(Opcode.V_LOAD)

    def test_scalar_memory_uses_memory_port(self):
        assert op.execution_unit(Opcode.S_LOAD) is ExecutionUnit.MEMORY
        assert op.execution_unit(Opcode.S_STORE) is ExecutionUnit.MEMORY

    def test_branches(self):
        assert op.is_branch(Opcode.BRANCH)
        assert op.is_branch(Opcode.JUMP)
        assert op.is_conditional_branch(Opcode.BRANCH)
        assert not op.is_conditional_branch(Opcode.JUMP)

    def test_reductions(self):
        assert op.is_reduction(Opcode.V_SUM)
        assert op.is_reduction(Opcode.V_DOT)
        assert op.is_reduction(Opcode.V_EXTRACT)
        assert not op.is_reduction(Opcode.V_ADD)

    def test_queue_moves_are_internal(self):
        for opcode in (
            Opcode.QMOV_V_LOAD,
            Opcode.QMOV_V_STORE,
            Opcode.QMOV_S_LOAD,
            Opcode.QMOV_S_STORE,
        ):
            assert op.is_queue_move(opcode)
            assert op.opcode_class(opcode) is OpcodeClass.QUEUE_MOVE
            assert op.execution_unit(opcode) is ExecutionUnit.QMOV

    def test_vector_control_executes_on_scalar_unit(self):
        assert op.execution_unit(Opcode.SET_VL) is ExecutionUnit.SCALAR
        assert op.execution_unit(Opcode.SET_VS) is ExecutionUnit.SCALAR
        assert not op.is_vector(Opcode.SET_VL)
