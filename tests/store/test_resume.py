"""Integration tests: incremental, resumable sweeps through the Runner.

These cover the acceptance contract of the store: a warm identical sweep
simulates zero cells, a sweep killed mid-run resumes with only its
unfinished cells, and cached results are indistinguishable (beyond
provenance) from freshly simulated ones.
"""

import pytest

from repro.core import RunConfig, Runner, SweepSpec, run_sweep
from repro.core.registry import SpecArchitecture
from repro.store import ResultStore

SPEC = SweepSpec(
    programs=("dyfesm", "trfd"),
    latencies=(1, 50),
    architectures=("ref", "dva"),
    scale=0.2,
)


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


@pytest.fixture()
def simulated(monkeypatch):
    """Count (and optionally sabotage) real simulations, bypassing the store."""
    calls = []
    original = SpecArchitecture.simulate

    def counting(self, trace, config):
        if len(calls) in counting.explode_at:
            raise RuntimeError("simulated crash")
        calls.append((trace.name, config.latency, self.name))
        return original(self, trace, config)

    counting.explode_at = frozenset()
    monkeypatch.setattr(SpecArchitecture, "simulate", counting)
    return calls, counting


class TestWarmSweeps:
    def test_identical_warm_rerun_simulates_nothing(self, store, simulated):
        calls, _ = simulated
        cold = run_sweep(SPEC, store=store)
        assert cold.cached_count == 0 and cold.simulated_count == 8
        assert len(calls) == 8

        warm = run_sweep(SPEC, store=store)
        assert warm.cached_count == 8 and warm.simulated_count == 0
        assert len(calls) == 8  # not a single additional simulation
        assert warm.results == cold.results
        assert all(result.cached and result.store_key for result in warm)

    def test_warm_rerun_builds_no_traces(self, store):
        run_sweep(SPEC, store=store)
        runner = Runner(store=store)
        runner.run(SPEC)
        assert len(runner.trace_cache) == 0

    def test_results_keep_grid_order_with_mixed_hits(self, store):
        subset = SweepSpec(
            programs=("trfd",), latencies=(50,), architectures=("dva",), scale=0.2
        )
        run_sweep(subset, store=store)
        sweep = run_sweep(SPEC, store=store)
        assert sweep.cached_count == 1
        assert [r.cell_key for r in sweep] == [
            (c.program, c.latency, c.architecture) for c in SPEC.cells()
        ]
        assert sweep.get("trfd", 50, "dva").cached is True
        assert sweep.get("trfd", 1, "dva").cached is False

    def test_parallel_and_serial_share_the_store(self, store):
        with Runner(jobs=2, adaptive=False, store=store) as parallel:
            cold = parallel.run(SPEC)
        warm = Runner(jobs=1, store=store).run(SPEC)
        assert cold.cached_count == 0
        assert warm.cached_count == 8
        assert warm.results == cold.results


class TestResumeAfterKill:
    def test_killed_sweep_resumes_with_only_unfinished_cells(self, store, simulated):
        calls, counting = simulated
        counting.explode_at = frozenset({5})  # die mid-sweep, 5 cells done
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_sweep(SPEC, store=store)
        assert len(calls) == 5

        counting.explode_at = frozenset()
        resumed = run_sweep(SPEC, store=store)
        # Every completed cell was persisted the moment it finished, so the
        # restart re-simulates exactly the three that never ran.
        assert len(calls) == 8
        assert resumed.cached_count == 5 and resumed.simulated_count == 3
        assert resumed.results == run_sweep(SPEC).results

    def test_resumed_sweep_equals_an_uncached_one(self, store):
        subset = SweepSpec(
            programs=("dyfesm", "trfd"),
            latencies=(1,),
            architectures=("ref", "dva"),
            scale=0.2,
        )
        run_sweep(subset, store=store)
        resumed = run_sweep(SPEC, store=store)
        fresh = run_sweep(SPEC)
        assert resumed.results == fresh.results
        assert resumed.summaries() == fresh.summaries()


class TestStoreScoping:
    def test_no_store_means_no_files_and_no_provenance(self, tmp_path, simulated):
        calls, _ = simulated
        sweep = run_sweep(SPEC)
        assert sweep.cached_count == 0
        assert all(not r.cached and r.store_key is None for r in sweep)
        assert len(calls) == 8

    def test_fresh_results_through_a_store_carry_their_key(self, store):
        sweep = run_sweep(SPEC, store=store)
        assert all(r.store_key is not None for r in sweep)
        assert all(not r.cached for r in sweep)

    def test_different_scale_is_a_cold_sweep(self, store, simulated):
        calls, _ = simulated
        run_sweep(SPEC, store=store)
        rescaled = SweepSpec(
            programs=SPEC.programs,
            latencies=SPEC.latencies,
            architectures=SPEC.architectures,
            scale=0.4,
        )
        sweep = run_sweep(rescaled, store=store)
        assert sweep.cached_count == 0
        assert len(calls) == 16

    def test_different_run_config_is_a_cold_sweep(self, store, simulated):
        calls, _ = simulated
        run_sweep(SPEC, store=store)
        from repro.refarch.config import ReferenceConfig

        tweaked = RunConfig(reference=ReferenceConfig(functional_unit_startup=7))
        sweep = run_sweep(SPEC, config=tweaked, store=store)
        # Both families' keys fold in their resolved config block, but only
        # the ref block changed — dva cells still hit.
        assert sweep.cached_count == 4
        assert all(r.cached == (r.architecture != "ref") for r in sweep)
        assert len(calls) == 12

    def test_non_spec_backed_cells_bypass_the_store(self, store, simulated):
        calls, _ = simulated
        from repro.core import register_architecture, unregister_architecture
        from repro.core.registry import architecture

        class Opaque:
            """Delegates to ref but exposes no MachineSpec."""

            name = "opaque"
            description = "hand-written simulator"

            def simulate(self, trace, config):
                return architecture("ref").simulate(trace, config)

        register_architecture(Opaque())
        try:
            spec = SweepSpec(
                programs=("trfd",), latencies=(1,),
                architectures=("opaque",), scale=0.2,
            )
            first = run_sweep(spec, store=store)
            second = run_sweep(spec, store=store)
            assert first.cached_count == 0 and second.cached_count == 0
            assert len(store) == 0
            assert len(calls) == 2  # the delegated ref simulations
        finally:
            unregister_architecture("opaque")

    def test_runner_accepts_a_path_in_place_of_a_store(self, tmp_path):
        root = tmp_path / "by-path"
        cold = run_sweep(SPEC, store=root)
        warm = run_sweep(SPEC, store=str(root))
        assert warm.cached_count == len(SPEC)
        assert warm.results == cold.results

    def test_store_writes_refresh_the_index(self, store):
        run_sweep(SPEC, store=store)
        assert store.index_path.exists()
        import json

        index = json.loads(store.index_path.read_text())
        assert index["entry_count"] == 8
