"""Unit tests for the content-addressed cache-key derivation."""

from dataclasses import replace

from repro.core import RunConfig, architecture
from repro.refarch.config import ReferenceConfig
from repro.store import cell_key
from repro.store.keys import KEY_SCHEME_VERSION

CONFIG = RunConfig()


def _key(program="trfd", scale=1.0, latency=50, arch="dva", config=CONFIG):
    return cell_key(program, scale, latency, architecture(arch), config)


class TestKeyStability:
    def test_key_is_a_sha256_hex_digest(self):
        key = _key()
        assert isinstance(key, str) and len(key) == 64
        assert all(c in "0123456789abcdef" for c in key)

    def test_key_is_deterministic_across_calls(self):
        assert _key() == _key()

    def test_program_case_is_normalized(self):
        assert _key(program="TRFD") == _key(program="trfd")

    def test_generator_and_timing_versions_are_folded_in(self, monkeypatch):
        import repro.store.keys as keys_module

        base = _key()
        monkeypatch.setattr(keys_module, "TIMING_MODEL_VERSION", 999)
        bumped_timing = _key()
        assert bumped_timing != base
        monkeypatch.setattr(keys_module, "TRACE_GENERATOR_VERSION", 999)
        assert _key() not in (base, bumped_timing)

    def test_scheme_version_is_current(self):
        # A bump of KEY_SCHEME_VERSION is an intentional, reviewed act of
        # cache invalidation; this pin makes accidental bumps visible.
        assert KEY_SCHEME_VERSION == 1


class TestKeySensitivity:
    def test_every_cell_coordinate_changes_the_key(self):
        base = _key()
        assert _key(program="dyfesm") != base
        assert _key(scale=0.5) != base
        assert _key(latency=100) != base
        assert _key(arch="ref") != base

    def test_machine_pins_change_the_key(self):
        assert _key(arch="dva@lanes=2") != _key(arch="dva")
        assert _key(arch="dva@bypass=off") != _key(arch="dva")

    def test_distinct_labels_for_the_same_machine_get_distinct_keys(self):
        # "dva-nobypass" and "dva@bypass=off" resolve to the same machine but
        # carry different labels; the label lands on the result as provenance,
        # so a hit must restore it — the keys must differ.
        assert _key(arch="dva-nobypass") != _key(arch="dva@bypass=off")

    def test_inherited_run_config_fields_change_the_key(self):
        # The canonical spec string alone under-identifies a machine whose
        # spec inherits fields from the RunConfig; the key must capture the
        # fully-resolved configuration.
        tweaked = replace(
            CONFIG, reference=ReferenceConfig(functional_unit_startup=7)
        )
        assert _key(arch="ref", config=tweaked) != _key(arch="ref")
        # ... and a block the family ignores must NOT change the key.
        assert _key(arch="dva", config=tweaked) == _key(arch="dva")

    def test_latency_in_config_does_not_leak_into_the_key(self):
        # The cell's latency is an explicit argument; the config's own
        # latency field is overridden per cell and must not split keys.
        assert _key(config=RunConfig(latency=99)) == _key(config=RunConfig(latency=1))


class TestUncacheable:
    def test_non_spec_backed_simulator_has_no_key(self):
        class Opaque:
            name = "opaque"
            description = "hand-written simulator"

            def simulate(self, trace, config):  # pragma: no cover - unused
                raise NotImplementedError

        assert cell_key("trfd", 1.0, 1, Opaque(), CONFIG) is None
