"""Unit tests for the on-disk ResultStore: round trips, index, gc, clear."""

import json
import os

import pytest

from repro.common.errors import ConfigurationError
from repro.core import RunConfig, architecture
from repro.store import ResultStore, cell_key, default_store_root
from repro.store.store import STORE_FORMAT_VERSION
from repro.workloads.perfect_club import build_trace


@pytest.fixture(scope="module")
def ref_result():
    trace = build_trace("TRFD", scale=0.2)
    return architecture("ref").simulate(trace, RunConfig(latency=50))


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


KEY = "ab" * 32


class TestRoundTrip:
    def test_put_then_get_restores_an_equal_result(self, store, ref_result):
        store.put(KEY, ref_result, scale=0.2)
        loaded = store.get(KEY)
        assert loaded == ref_result  # provenance fields are excluded from ==
        assert loaded.cached is True
        assert loaded.store_key == KEY
        assert ref_result.cached is False
        assert store.hits == 1 and store.writes == 1

    def test_get_missing_key_is_a_miss(self, store):
        assert store.get(KEY) is None
        assert store.misses == 1

    def test_contains_and_len(self, store, ref_result):
        assert KEY not in store and len(store) == 0
        store.put(KEY, ref_result)
        assert KEY in store and len(store) == 1

    def test_objects_are_sharded_by_key_prefix(self, store):
        path = store.object_path(KEY)
        assert path.parent.name == KEY[:2]
        assert path.name == f"{KEY}.json"
        assert store.version_dir.name == f"v{STORE_FORMAT_VERSION}"

    def test_malformed_keys_are_rejected(self, store):
        with pytest.raises(ConfigurationError, match="malformed store key"):
            store.object_path("../../../etc/passwd")

    def test_constructing_a_store_touches_no_files(self, tmp_path):
        ResultStore(tmp_path / "never")
        assert not (tmp_path / "never").exists()


class TestRobustness:
    def test_corrupt_entry_is_a_miss_and_put_repairs_it(self, store, ref_result):
        store.put(KEY, ref_result)
        store.object_path(KEY).write_text("{ torn json")
        assert store.get(KEY) is None
        store.put(KEY, ref_result)
        assert store.get(KEY) == ref_result

    def test_foreign_format_version_is_a_miss(self, store, ref_result):
        store.put(KEY, ref_result)
        payload = json.loads(store.object_path(KEY).read_text())
        payload["format"] = STORE_FORMAT_VERSION + 1
        store.object_path(KEY).write_text(json.dumps(payload))
        assert store.get(KEY) is None

    def test_mislabelled_entry_is_a_miss(self, store, ref_result):
        other = "cd" * 32
        store.put(KEY, ref_result)
        store.object_path(other).parent.mkdir(parents=True, exist_ok=True)
        os.rename(store.object_path(KEY), store.object_path(other))
        assert store.get(other) is None


class TestIndexAndStats:
    def test_write_index_summarizes_the_object_tree(self, store, ref_result):
        store.put(KEY, ref_result, scale=0.2)
        path = store.write_index()
        index = json.loads(path.read_text())
        assert index["format"] == STORE_FORMAT_VERSION
        assert index["entry_count"] == 1
        entry = index["entries"][KEY]
        assert entry["program"] == "TRFD"
        assert entry["architecture"] == "ref"
        assert entry["latency"] == 50
        assert index["total_bytes"] == store.object_path(KEY).stat().st_size

    def test_update_index_merges_without_a_full_rebuild(self, store, ref_result):
        other = "cd" * 32
        store.put(KEY, ref_result, scale=0.2)
        store.write_index()
        store.put(other, ref_result, scale=0.2)
        store.update_index([(other, ref_result)], scale=0.2)
        index = json.loads(store.index_path.read_text())
        assert set(index["entries"]) == {KEY, other}
        assert index["entry_count"] == 2
        assert index["entries"][other]["program"] == "TRFD"

    def test_update_index_survives_a_corrupt_index(self, store, ref_result):
        store.put(KEY, ref_result)
        store.version_dir.mkdir(parents=True, exist_ok=True)
        store.index_path.write_text("{ torn")
        store.update_index([(KEY, ref_result)])
        index = json.loads(store.index_path.read_text())
        assert set(index["entries"]) == {KEY}

    def test_stats_aggregates_by_architecture(self, store, ref_result):
        store.put(KEY, ref_result)
        store.put("cd" * 32, ref_result)
        stats = store.stats()
        assert stats["entry_count"] == 2
        assert stats["by_architecture"] == {"ref": 2}
        assert stats["total_bytes"] > 0

    def test_stats_can_refresh_a_stale_index(self, store, ref_result):
        store.put(KEY, ref_result)
        store.write_index()
        store.object_path(KEY).unlink()  # evicted behind the index's back
        stats = store.stats(refresh_index=True)
        assert stats["entry_count"] == 0
        index = json.loads(store.index_path.read_text())
        assert index["entry_count"] == 0 and index["entries"] == {}

    def test_stats_refresh_leaves_a_nonexistent_store_untouched(self, tmp_path):
        store = ResultStore(tmp_path / "never")
        assert store.stats(refresh_index=True)["entry_count"] == 0
        assert not (tmp_path / "never").exists()

    def test_entries_report_scale_and_are_oldest_first(self, store, ref_result):
        store.put(KEY, ref_result, scale=0.2)
        old = store.object_path(KEY)
        os.utime(old, (old.stat().st_atime, old.stat().st_mtime - 100))
        store.put("cd" * 32, ref_result, scale=0.4)
        entries = store.entries()
        assert [entry.key for entry in entries] == [KEY, "cd" * 32]
        assert entries[0].scale == 0.2 and entries[1].scale == 0.4


class TestEviction:
    def _age(self, store, key, days):
        path = store.object_path(key)
        stamp = path.stat().st_mtime - days * 86400
        os.utime(path, (stamp, stamp))

    def test_gc_by_age(self, store, ref_result):
        store.put(KEY, ref_result)
        store.put("cd" * 32, ref_result)
        self._age(store, KEY, days=10)
        report = store.gc(max_age_days=5)
        assert report["evicted"] == 1 and report["kept"] == 1
        assert store.get(KEY) is None
        assert store.get("cd" * 32) is not None

    def test_gc_by_size_evicts_oldest_first(self, store, ref_result):
        keys = ["aa" * 32, "bb" * 32, "cc" * 32]
        for index, key in enumerate(keys):
            store.put(key, ref_result)
            self._age(store, key, days=len(keys) - index)
        # Budget exactly the two newest entries.  Entry files differ by a
        # few bytes (the created_unix float's repr length varies), so a
        # budget of 2x the oldest entry's size can undershoot the two the
        # test means to keep and evict a second entry.
        budget = sum(store.object_path(key).stat().st_size for key in keys[1:])
        report = store.gc(max_bytes=budget)
        assert report["evicted"] == 1
        assert store.get(keys[0]) is None  # the oldest went
        assert all(store.get(key) is not None for key in keys[1:])

    def test_gc_dry_run_deletes_nothing(self, store, ref_result):
        store.put(KEY, ref_result)
        report = store.gc(max_age_days=0, dry_run=True)
        assert report["evicted"] == 1 and report["dry_run"] is True
        assert store.get(KEY) is not None

    def test_gc_removes_stale_version_dirs(self, store, ref_result):
        store.put(KEY, ref_result)
        stale = store.root / "v0"
        stale.mkdir(parents=True)
        (stale / "junk.json").write_text("{}")
        report = store.gc()
        assert report["stale_version_dirs_removed"] == ["v0"]
        assert not stale.exists()
        assert store.get(KEY) is not None

    def test_gc_reclaims_orphaned_tmp_files(self, store, ref_result):
        store.put(KEY, ref_result)
        orphan = store.object_path(KEY).parent / "tmpdead.tmp"
        orphan.write_text("half-written")
        stamp = orphan.stat().st_mtime - 7200
        os.utime(orphan, (stamp, stamp))
        fresh = store.object_path(KEY).parent / "tmplive.tmp"
        fresh.write_text("in flight")
        index_orphan = store.version_dir / "tmpindex.tmp"
        index_orphan.write_text("half-written index")
        os.utime(index_orphan, (stamp, stamp))
        report = store.gc()
        assert report["orphaned_tmp_files"] == 2
        assert not orphan.exists() and not index_orphan.exists()
        assert fresh.exists()  # a recent tmp may belong to a live writer
        assert store.get(KEY) is not None

    def test_gc_rejects_negative_limits(self, store):
        with pytest.raises(ConfigurationError):
            store.gc(max_age_days=-1)
        with pytest.raises(ConfigurationError):
            store.gc(max_bytes=-1)

    def test_clear_removes_everything(self, store, ref_result):
        store.put(KEY, ref_result)
        store.write_index()
        assert store.clear() == 1
        assert len(store) == 0
        assert not store.version_dir.exists()

    def test_clear_counts_stale_version_trees_too(self, store, ref_result):
        store.put(KEY, ref_result)
        stale = store.root / "v0" / "objects"
        stale.mkdir(parents=True)
        (stale / "old-entry.json").write_text("{}")
        (store.root / "v0" / "index.json").write_text("{}")  # not an entry
        assert store.clear() == 2
        assert not (store.root / "v0").exists()


class TestDefaults:
    def test_env_var_overrides_the_default_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_store_root() == tmp_path / "elsewhere"
        assert ResultStore().root == tmp_path / "elsewhere"

    def test_default_root_falls_back_to_the_cache_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        assert default_store_root().name == "repro"

    def test_cell_key_feeds_object_path(self, store):
        key = cell_key("trfd", 1.0, 1, architecture("dva"), RunConfig())
        assert store.object_path(key).suffix == ".json"
