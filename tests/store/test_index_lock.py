"""The cooperative index lock: atomic merges under concurrency.

Regression suite for the advisory-index merge race: before the lock,
concurrent ``update_index`` callers could each read the same index
snapshot, merge their own keys, and overwrite each other's entries.
"""

import json
import os
import threading
import time

import pytest

from repro.core.result import RunResult
from repro.store import ResultStore

KEYS = [format(n, "02x") * 32 for n in range(16)]


def make_result(key_number: int) -> RunResult:
    return RunResult(
        architecture="dva",
        program=f"PROG{key_number}",
        latency=1,
        total_cycles=100 + key_number,
        instructions=10,
    )


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


def indexed_keys(store):
    return set(json.loads(store.index_path.read_text())["entries"])


class TestConcurrentMerges:
    def test_parallel_mergers_lose_no_entries(self, store):
        # Each thread writes its own object then merges just that key.
        # Without read-modify-write atomicity, late writers clobber early
        # ones and keys vanish from the index.
        for number, key in enumerate(KEYS):
            store.put(key, make_result(number))

        barrier = threading.Barrier(len(KEYS))
        outcomes = []
        lock = threading.Lock()

        def merge(number, key):
            barrier.wait()
            ok = store.update_index([(key, make_result(number))])
            with lock:
                outcomes.append(ok)

        threads = [
            threading.Thread(target=merge, args=(number, key))
            for number, key in enumerate(KEYS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert all(outcomes)
        assert indexed_keys(store) == set(KEYS)
        assert store.index_merges == len(KEYS)
        assert store.index_merges_skipped == 0

    def test_two_stores_on_one_directory_serialize(self, tmp_path):
        # The lock is a file, so it also serializes separate ResultStore
        # instances (separate services, separate processes in spirit).
        first = ResultStore(tmp_path / "cache")
        second = ResultStore(tmp_path / "cache")
        for number, key in enumerate(KEYS[:8]):
            (first if number % 2 else second).put(key, make_result(number))

        def merge(store, pairs):
            for number, key in pairs:
                store.update_index([(key, make_result(number))])

        pairs = list(enumerate(KEYS[:8]))
        threads = [
            threading.Thread(target=merge, args=(first, pairs[1::2])),
            threading.Thread(target=merge, args=(second, pairs[0::2])),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert indexed_keys(first) == set(KEYS[:8])


class TestLockEdgeCases:
    def test_empty_written_is_a_no_op_success(self, store):
        assert store.update_index([]) is True
        assert not store.index_path.exists()

    def test_held_lock_times_out_into_a_skipped_merge(self, store):
        store.put(KEYS[0], make_result(0))
        store.index_lock_timeout = 0.05
        store.version_dir.mkdir(parents=True, exist_ok=True)
        store.index_lock_path.write_text("held elsewhere")
        try:
            assert store.update_index([(KEYS[0], make_result(0))]) is False
        finally:
            store.index_lock_path.unlink()
        assert store.index_merges_skipped == 1
        assert not store.index_path.exists()  # skipped, never half-written
        assert store.stats()["process_counters"]["index_merges_skipped"] == 1

    def test_stale_lock_is_broken_and_the_merge_proceeds(self, store):
        store.put(KEYS[0], make_result(0))
        store.version_dir.mkdir(parents=True, exist_ok=True)
        store.index_lock_path.write_text("crashed holder")
        ancient = time.time() - 2 * store.index_lock_stale_after
        os.utime(store.index_lock_path, (ancient, ancient))
        assert store.update_index([(KEYS[0], make_result(0))]) is True
        assert indexed_keys(store) == {KEYS[0]}
        assert not store.index_lock_path.exists()  # released after the merge

    def test_lock_is_released_even_when_the_merge_raises(self, store, monkeypatch):
        store.put(KEYS[0], make_result(0))
        monkeypatch.setattr(
            store, "_write_index_payload", lambda entries: (_ for _ in ()).throw(OSError("disk"))
        )
        with pytest.raises(OSError):
            store.update_index([(KEYS[0], make_result(0))])
        assert not store.index_lock_path.exists()

    def test_full_rebuild_proceeds_despite_a_held_lock(self, store):
        # write_index is authoritative maintenance: a stuck lock slows it
        # down (one timeout) but never blocks the rebuild.
        store.put(KEYS[0], make_result(0))
        store.index_lock_timeout = 0.05
        store.version_dir.mkdir(parents=True, exist_ok=True)
        store.index_lock_path.write_text("held elsewhere")
        try:
            store.write_index()
        finally:
            store.index_lock_path.unlink(missing_ok=True)
        assert indexed_keys(store) == {KEYS[0]}
