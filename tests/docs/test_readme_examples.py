"""Execute every Python example in the README.

The quickstart snippets are the package's front door, so they are treated
like tests: each fenced ``python`` block is extracted from ``README.md``
and executed in a fresh namespace.  (They are imperative scripts rather
than ``>>>`` transcripts, so plain execution is the doctest equivalent —
a snippet that raises fails the build, which is the property that matters:
documented examples cannot rot.)

Each block runs hermetically: stdout is swallowed, and any architecture a
block registers is unregistered afterwards so the process-wide registry
stays clean for the rest of the suite.  The store examples inherit the
per-session ``REPRO_CACHE_DIR`` from ``tests/conftest.py``.
"""

import contextlib
import io
import re
from pathlib import Path

import pytest

from repro.core.registry import architecture_names, unregister_architecture

README = Path(__file__).resolve().parents[2] / "README.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks():
    blocks = _BLOCK.findall(README.read_text())
    assert blocks, "README.md has no ```python blocks — did the fences change?"
    return blocks


@pytest.mark.parametrize(
    "block",
    _python_blocks(),
    ids=lambda block: "readme-" + block.strip().splitlines()[0][:40],
)
def test_readme_python_block_executes(block):
    registered_before = set(architecture_names())
    try:
        with contextlib.redirect_stdout(io.StringIO()):
            exec(compile(block, str(README), "exec"), {"__name__": "__readme__"})
    finally:
        for name in set(architecture_names()) - registered_before:
            unregister_architecture(name)


def test_readme_mentions_every_cli_subcommand():
    """The README's CLI tour and the real parser must agree on the verbs."""
    from repro.core.cli import build_parser

    text = README.read_text()
    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if hasattr(action, "choices") and action.choices
    )
    missing = [name for name in subparsers.choices if name not in text]
    assert not missing, f"README never mentions subcommands: {missing}"
