"""Crash recovery: SIGKILL a worker holding claims; peers steal and finish.

The distributed sweep's headline guarantee is that killing any worker loses
no work: the dead worker's claim files stop being heartbeat-refreshed, their
leases expire, and a surviving worker steals the cells and simulates them.
This test makes that concrete — a real ``repro worker`` subprocess is
SIGKILLed the moment it is observed holding a claim on an unfinished cell,
then a second (in-process) worker drains what is left and the assembled
sweep is golden-identical to a serial run.
"""

import signal
import time

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterWorker,
    claims_dir,
    spawn_worker,
)
from repro.core.experiment import Runner, SweepSpec
from repro.store import ResultStore

# Big enough that a worker cannot race through it before the kill lands
# (latency-100 cells of two programs), small enough to drain in seconds.
SPEC = SweepSpec(
    programs=("dyfesm", "trfd"),
    latencies=(1, 100),
    architectures=("ref", "dva"),
    scale=0.2,
)

LEASE = 1.0


def test_sigkilled_workers_cells_are_stolen_and_the_sweep_completes(tmp_path):
    store = ResultStore(tmp_path / "cache")
    coordinator = ClusterCoordinator(store)
    prepared = coordinator.prepare(SPEC)
    directory = claims_dir(store, prepared.sweep_id)

    victim = spawn_worker(
        store.root, prepared.sweep_id, lease_seconds=LEASE, worker_id="victim"
    )
    try:
        # Kill the victim the moment it holds a claim on a cell whose result
        # is not in the store yet — mid-simulation, work genuinely in flight.
        deadline = time.monotonic() + 60.0
        claimed_key = None
        while time.monotonic() < deadline:
            for path in directory.glob("*.claim"):
                key = path.name[: -len(".claim")]
                if key not in store:
                    claimed_key = key
                    break
            if claimed_key is not None:
                break
            if victim.poll() is not None:
                pytest.fail("worker exited before it could be killed")
            time.sleep(0.002)
        assert claimed_key is not None, "worker never claimed a cell"
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=10.0)
    finally:
        if victim.poll() is None:  # pragma: no cover - defensive
            victim.kill()
            victim.wait()

    # The kill left the claim file behind, unreleased.
    assert claimed_key not in store
    orphan = directory / f"{claimed_key}.claim"
    assert orphan.exists()

    # A surviving worker steals the orphaned claim once its lease expires
    # and drains the rest of the manifest.
    rescuer = ClusterWorker(
        store, worker_id="rescuer", lease_seconds=LEASE, poll_seconds=0.05
    )
    counters = rescuer.run_sweep(prepared.sweep_id)
    assert counters["stolen"] >= 1
    assert counters["failed"] == 0
    assert claimed_key in store

    # Nothing was lost and nothing was corrupted: the assembled result is
    # golden-identical to a serial in-process run of the same spec.
    distributed = coordinator.assemble(prepared)
    serial = Runner(jobs=1, store=ResultStore(tmp_path / "other")).run(SPEC)
    assert distributed == serial


def test_killing_the_coordinator_loses_nothing(tmp_path):
    """A dead coordinator leaves a complete manifest; workers still finish,
    and a *new* coordinator can assemble from the store alone."""
    store = ResultStore(tmp_path / "cache")
    prepared = ClusterCoordinator(store).prepare(SPEC)
    # The original coordinator "dies" here: nothing of it survives but the
    # manifest it published.  A worker drains the sweep regardless.
    worker = ClusterWorker(store, worker_id="w1", lease_seconds=5.0)
    worker.run_sweep(prepared.sweep_id)

    # A fresh coordinator (fresh process in real life) re-prepares the same
    # spec: everything is warm, so it publishes nothing and assembles
    # straight from the store.
    revived = ClusterCoordinator(store)
    again = revived.prepare(SPEC)
    assert again.manifest is None
    result = revived.assemble(again)
    serial = Runner(jobs=1, store=ResultStore(tmp_path / "other")).run(SPEC)
    # Hits are cached=True for the revived coordinator; compare the physics.
    assert [r.total_cycles for r in result] == [r.total_cycles for r in serial]
    assert [r.cell_key for r in result] == [r.cell_key for r in serial]
