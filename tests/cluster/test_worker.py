"""Unit tests for the cluster worker: draining, refusal, status reporting."""

import json
import time

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterWorker,
    ClaimSet,
    claims_dir,
    default_worker_id,
    load_manifest,
    remaining_cells,
    workers_dir,
)
from repro.cluster.manifest import Manifest, ManifestCell
from repro.cluster.worker import manifest_scale
from repro.core.experiment import SweepSpec
from repro.store import ResultStore


SPEC = SweepSpec(
    programs=("dyfesm",), latencies=(1, 50), architectures=("ref", "dva"),
    scale=0.2,
)


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


@pytest.fixture()
def prepared(store):
    return ClusterCoordinator(store).prepare(SPEC)


class TestDraining:
    def test_one_worker_drains_the_manifest(self, store, prepared):
        worker = ClusterWorker(store, worker_id="w1", lease_seconds=5.0)
        counters = worker.run_sweep(prepared.sweep_id)
        assert counters["completed"] == prepared.unfinished
        assert counters["claimed"] == prepared.unfinished
        assert counters["failed"] == 0
        manifest = load_manifest(store, prepared.sweep_id)
        assert remaining_cells(manifest, store) == []
        # Completed claims were released.
        assert list(claims_dir(store, prepared.sweep_id).glob("*.claim")) == []

    def test_worker_walks_cells_costliest_first(self, store, prepared):
        executed = []
        worker = ClusterWorker(store, worker_id="w1", lease_seconds=5.0)
        original = worker._execute

        def spy(cell):
            executed.append(cell.cost)
            return original(cell)

        worker._execute = spy
        worker.run_sweep(prepared.sweep_id)
        assert executed == sorted(executed, reverse=True)

    def test_worker_observes_cells_a_peer_finished(self, store, prepared):
        first = ClusterWorker(store, worker_id="w1", lease_seconds=5.0)
        first.run_sweep(prepared.sweep_id)
        second = ClusterWorker(store, worker_id="w2", lease_seconds=5.0)
        counters = second.run_sweep(prepared.sweep_id)
        assert counters["completed"] == 0
        assert counters["observed_done"] == prepared.unfinished

    def test_run_discovers_manifests_and_exits_with_once(self, store, prepared):
        worker = ClusterWorker(store, worker_id="w1", lease_seconds=5.0)
        counters = worker.run(once=True)
        assert counters["completed"] == prepared.unfinished

    def test_results_match_what_the_runner_would_produce(
        self, store, prepared, tmp_path
    ):
        from repro.core.experiment import Runner

        ClusterWorker(store, worker_id="w1", lease_seconds=5.0).run_sweep(
            prepared.sweep_id
        )
        distributed = ClusterCoordinator(store).assemble(prepared)
        serial = Runner(jobs=1, store=ResultStore(tmp_path / "other")).run(SPEC)
        assert distributed == serial

    def test_worker_merges_written_cells_into_the_index(self, store, prepared):
        ClusterWorker(store, worker_id="w1", lease_seconds=5.0).run_sweep(
            prepared.sweep_id
        )
        index = json.loads(store.index_path.read_text())
        index_keys = set(index.get("entries", index))
        assert {cell.key for cell in prepared.manifest.cells} <= index_keys


class TestStealing:
    def test_worker_steals_a_dead_peers_expired_claim(self, store, prepared):
        # A "crashed" holder: claims the costliest cell with a tiny lease and
        # never heartbeats — deterministic stand-in for a SIGKILLed worker.
        dead = ClaimSet(
            claims_dir(store, prepared.sweep_id), "dead-peer", lease_seconds=0.1
        )
        target = prepared.manifest.cells[0]
        assert dead.try_claim(target.key)
        time.sleep(0.15)
        worker = ClusterWorker(
            store, worker_id="w1", lease_seconds=5.0, poll_seconds=0.02
        )
        counters = worker.run_sweep(prepared.sweep_id)
        assert counters["stolen"] == 1
        assert counters["completed"] == prepared.unfinished
        assert target.key in store

    def test_worker_waits_out_a_live_claim_until_released(self, store, prepared):
        # A peer validly holds one cell; the worker must not steal it, and
        # with wait=False must return leaving exactly that cell unfinished.
        holder = ClaimSet(
            claims_dir(store, prepared.sweep_id), "live-peer", lease_seconds=60.0
        )
        target = prepared.manifest.cells[0]
        assert holder.try_claim(target.key)
        worker = ClusterWorker(store, worker_id="w1", lease_seconds=60.0)
        counters = worker.run_sweep(prepared.sweep_id, wait=False)
        assert counters["stolen"] == 0
        assert counters["completed"] == prepared.unfinished - 1
        assert target.key not in store


class TestRefusal:
    def test_key_mismatch_is_refused_and_reported(self, store, prepared):
        manifest = load_manifest(store, prepared.sweep_id)
        forged = Manifest(
            sweep_id=manifest.sweep_id,
            spec=manifest.spec,
            created_unix=manifest.created_unix,
            cells=tuple(
                ManifestCell(
                    key="0" * 64,  # not what any worker derives
                    program=cell.program,
                    latency=cell.latency,
                    architecture=cell.architecture,
                    scale=cell.scale,
                    cost=cell.cost,
                )
                for cell in manifest.cells[:1]
            ),
        )
        forged.write(store)
        worker = ClusterWorker(store, worker_id="w1", lease_seconds=5.0)
        counters = worker.run_sweep(prepared.sweep_id, wait=False)
        assert counters["failed"] == 1
        assert counters["completed"] == 0
        # The claim is abandoned, not released: it stays on disk to expire.
        assert len(list(claims_dir(store, prepared.sweep_id).glob("*.claim"))) == 1
        status = json.loads(
            (workers_dir(store, prepared.sweep_id) / "w1.json").read_text()
        )
        assert "mismatch" in status["errors"][0]["error"]

    def test_unknown_architecture_is_refused(self, store, prepared):
        manifest = load_manifest(store, prepared.sweep_id)
        forged = Manifest(
            sweep_id=manifest.sweep_id,
            spec=manifest.spec,
            created_unix=manifest.created_unix,
            cells=(
                ManifestCell(
                    key="1" * 64,
                    program="DYFESM",
                    latency=1,
                    architecture="no-such-arch",
                    scale=0.2,
                    cost=1,
                ),
            ),
        )
        forged.write(store)
        worker = ClusterWorker(store, worker_id="w1", lease_seconds=5.0)
        counters = worker.run_sweep(prepared.sweep_id, wait=False)
        assert counters["failed"] == 1


class TestStatus:
    def test_status_file_is_written_and_carries_counters(self, store, prepared):
        worker = ClusterWorker(store, worker_id="w1", lease_seconds=5.0)
        worker.run_sweep(prepared.sweep_id)
        path = workers_dir(store, prepared.sweep_id) / "w1.json"
        status = json.loads(path.read_text())
        assert status["worker"] == "w1"
        assert status["sweep"] == prepared.sweep_id
        assert status["counters"]["completed"] == prepared.unfinished
        assert status["lease_seconds"] == 5.0

    def test_default_worker_id_is_filesystem_safe(self):
        worker_id = default_worker_id()
        assert "/" not in worker_id
        assert worker_id.rsplit("-", 1)[-1].isdigit()

    def test_slash_in_worker_id_is_rejected(self, store):
        from repro.cluster import ClusterError

        with pytest.raises(ClusterError):
            ClusterWorker(store, worker_id="a/b")


class TestManifestScale:
    def test_scale_comes_from_the_cells(self):
        manifest = Manifest(
            sweep_id="sw-1", spec={}, created_unix=0.0,
            cells=(ManifestCell("k", "X", 1, "ref", 0.5, 1),),
        )
        assert manifest_scale(manifest) == 0.5

    def test_scale_falls_back_to_the_spec_then_one(self):
        drained = Manifest(
            sweep_id="sw-1", spec={"scale": 2.0}, created_unix=0.0, cells=()
        )
        assert manifest_scale(drained) == 2.0
        bare = Manifest(sweep_id="sw-1", spec={}, created_unix=0.0, cells=())
        assert manifest_scale(bare) == 1.0
