"""Coordinator tests: prepare/wait/assemble, status, reaping, golden identity."""

import json
import os
import time

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterError,
    ClusterWorker,
    ClaimSet,
    claims_dir,
    cluster_status,
    list_sweep_ids,
    load_manifest,
    reap_cluster,
    sweep_dir,
)
from repro.core.experiment import Runner, SweepSpec
from repro.store import ResultStore


SPEC = SweepSpec(
    programs=("dyfesm", "trfd"), latencies=(1, 50), architectures=("ref", "dva"),
    scale=0.2,
)


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


@pytest.fixture()
def coordinator(store):
    return ClusterCoordinator(store, poll_seconds=0.01)


class TestPrepare:
    def test_cold_prepare_publishes_every_cell(self, store, coordinator):
        prepared = coordinator.prepare(SPEC)
        assert prepared.total == len(SPEC)
        assert prepared.unfinished == len(SPEC)
        assert prepared.hits == {}
        manifest = load_manifest(store, prepared.sweep_id)
        assert len(manifest) == len(SPEC)

    def test_manifest_cells_are_cost_ranked(self, store, coordinator):
        prepared = coordinator.prepare(SPEC)
        costs = [cell.cost for cell in prepared.manifest.cells]
        assert costs == sorted(costs, reverse=True)

    def test_warm_prepare_publishes_nothing(self, store, coordinator, tmp_path):
        Runner(jobs=1, store=store).run(SPEC)
        prepared = coordinator.prepare(SPEC)
        assert prepared.manifest is None
        assert len(prepared.hits) == len(SPEC)
        assert list_sweep_ids(store) == []

    def test_partially_warm_prepare_publishes_only_misses(
        self, store, coordinator
    ):
        warm = SweepSpec(
            programs=("dyfesm",), latencies=(1,), architectures=("ref", "dva"),
            scale=0.2,
        )
        Runner(jobs=1, store=store).run(warm)
        prepared = coordinator.prepare(SPEC)
        assert len(prepared.hits) == 2
        assert prepared.unfinished == len(SPEC) - 2

    def test_uncacheable_cells_are_rejected(self, store, coordinator):
        from repro.core.registry import (
            register_architecture,
            unregister_architecture,
        )

        class Opaque:
            name = "opaque-test-arch"
            description = "no spec, no cell key"

            def simulate(self, trace, config):  # pragma: no cover
                raise NotImplementedError

        try:
            register_architecture(Opaque())
            with pytest.raises(ClusterError, match="not cacheable"):
                coordinator.prepare(
                    SweepSpec(
                        programs=("dyfesm",), latencies=(1,),
                        architectures=("opaque-test-arch",), scale=0.2,
                    )
                )
        finally:
            unregister_architecture("opaque-test-arch")

    def test_unknown_program_fails_fast(self, coordinator):
        from repro.common.errors import ReproError

        with pytest.raises(ReproError):
            coordinator.prepare(SweepSpec(programs=("nope",), latencies=(1,)))


class TestWaitAndAssemble:
    def test_wait_returns_once_a_worker_drains_the_manifest(
        self, store, coordinator
    ):
        prepared = coordinator.prepare(SPEC)
        ClusterWorker(store, worker_id="w1", lease_seconds=5.0).run_sweep(
            prepared.sweep_id
        )
        events = []
        coordinator.wait(prepared, timeout=5.0, progress=events.append)
        assert len(events) == prepared.total
        assert events[-1].done == prepared.total

    def test_wait_times_out_with_no_workers(self, coordinator):
        prepared = coordinator.prepare(SPEC)
        with pytest.raises(ClusterError, match="timed out"):
            coordinator.wait(prepared, timeout=0.05)

    def test_wait_raises_when_every_remaining_cell_failed(
        self, store, coordinator
    ):
        prepared = coordinator.prepare(SPEC)
        from repro.cluster import workers_dir

        directory = workers_dir(store, prepared.sweep_id)
        directory.mkdir(parents=True)
        (directory / "w1.json").write_text(json.dumps({
            "worker": "w1",
            "errors": [
                {"key": cell.key, "error": "SimulationError: boom"}
                for cell in prepared.manifest.cells
            ],
        }))
        with pytest.raises(ClusterError, match="failed on every worker"):
            coordinator.wait(prepared, timeout=5.0)

    def test_assemble_is_golden_identical_to_a_serial_run(
        self, store, coordinator, tmp_path
    ):
        prepared = coordinator.prepare(SPEC)
        ClusterWorker(store, worker_id="w1", lease_seconds=5.0).run_sweep(
            prepared.sweep_id
        )
        distributed = coordinator.assemble(prepared)
        serial = Runner(jobs=1, store=ResultStore(tmp_path / "other")).run(SPEC)
        assert distributed == serial
        assert distributed.simulated_count == len(SPEC)
        assert distributed.cached_count == 0

    def test_assemble_raises_on_a_vanished_cell(self, store, coordinator):
        prepared = coordinator.prepare(SPEC)
        with pytest.raises(ClusterError, match="vanished"):
            coordinator.assemble(prepared)


class TestRunDistributed:
    def test_two_workers_finish_the_sweep(self, store, coordinator, tmp_path):
        events = []
        result = coordinator.run_distributed(
            SPEC, workers=2, lease_seconds=10.0, timeout=120.0,
            progress=events.append,
        )
        serial = Runner(jobs=1, store=ResultStore(tmp_path / "other")).run(SPEC)
        assert result == serial
        assert len(events) == len(SPEC)
        status = cluster_status(store)
        statuses = status["sweeps"][0]["workers"]
        assert len(statuses) == 2
        assert sum(w["completed"] for w in statuses) == len(SPEC)

    def test_warm_run_spawns_nothing_and_simulates_zero(
        self, store, coordinator, monkeypatch
    ):
        Runner(jobs=1, store=store).run(SPEC)

        def no_spawn(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("warm sweep spawned a worker")

        monkeypatch.setattr(
            "repro.cluster.coordinator.spawn_worker", no_spawn
        )
        result = coordinator.run_distributed(SPEC, workers=2)
        assert result.cached_count == len(SPEC)
        assert result.simulated_count == 0

    def test_negative_workers_is_rejected(self, coordinator):
        with pytest.raises(ClusterError, match="negative"):
            coordinator.run_distributed(SPEC, workers=-1)

    def test_zero_workers_publishes_and_times_out_without_a_fleet(
        self, store, coordinator, monkeypatch
    ):
        # workers=0 is the standing-fleet mode: publish + wait only.  With
        # no fleet serving the store, the wait must hit the timeout (and
        # the manifest must be left behind for workers to discover).
        def no_spawn(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("workers=0 spawned a worker")

        monkeypatch.setattr("repro.cluster.coordinator.spawn_worker", no_spawn)
        with pytest.raises(ClusterError, match="timed out"):
            coordinator.run_distributed(SPEC, workers=0, timeout=0.2)
        assert list_sweep_ids(store)


class TestStatus:
    def test_status_reports_progress_claims_and_workers(self, store, coordinator):
        prepared = coordinator.prepare(SPEC)
        worker = ClusterWorker(store, worker_id="w1", lease_seconds=5.0)
        worker.run_sweep(prepared.sweep_id)
        status = cluster_status(store)
        assert status["running_sweeps"] == 0
        sweep = status["sweeps"][0]
        assert sweep["sweep"] == prepared.sweep_id
        assert sweep["state"] == "done"
        assert (sweep["done"], sweep["remaining"]) == (len(SPEC), 0)
        assert sweep["workers"][0]["worker"] == "w1"
        assert sweep["workers"][0]["completed"] == len(SPEC)
        assert sweep["workers"][0]["live"] is True

    def test_status_counts_active_and_expired_claims(self, store, coordinator):
        prepared = coordinator.prepare(SPEC)
        claims = ClaimSet(
            claims_dir(store, prepared.sweep_id), "w1", lease_seconds=0.05
        )
        claims.try_claim(prepared.manifest.cells[0].key)
        fresh = ClaimSet(
            claims_dir(store, prepared.sweep_id), "w2", lease_seconds=60.0
        )
        fresh.try_claim(prepared.manifest.cells[1].key)
        time.sleep(0.1)
        sweep = cluster_status(store)["sweeps"][0]
        assert sweep["state"] == "running"
        assert sweep["claims_active"] == 1
        assert sweep["claims_expired"] == 1

    def test_empty_store_has_no_sweeps(self, store):
        status = cluster_status(store)
        assert status["sweeps"] == []
        assert status["running_sweeps"] == 0


class TestReaping:
    def _age(self, path, seconds):
        old = time.time() - seconds
        for child in [path, *path.rglob("*")]:
            os.utime(child, (old, old))

    def test_drained_old_sweep_dirs_are_reaped(self, store, coordinator):
        prepared = coordinator.prepare(SPEC)
        ClusterWorker(store, worker_id="w1", lease_seconds=5.0).run_sweep(
            prepared.sweep_id
        )
        self._age(sweep_dir(store, prepared.sweep_id), 7200)
        report = reap_cluster(store, dry_run=True)
        assert report["sweeps_reaped"] == 1
        assert sweep_dir(store, prepared.sweep_id).is_dir()  # dry run
        report = reap_cluster(store)
        assert report["sweeps_reaped"] == 1
        assert not sweep_dir(store, prepared.sweep_id).exists()

    def test_running_sweeps_and_fresh_claims_are_left_alone(
        self, store, coordinator
    ):
        prepared = coordinator.prepare(SPEC)
        claims = ClaimSet(
            claims_dir(store, prepared.sweep_id), "w1", lease_seconds=30.0
        )
        claims.try_claim(prepared.manifest.cells[0].key)
        report = reap_cluster(store)
        assert report == {"claims_reaped": 0, "sweeps_reaped": 0}
        assert sweep_dir(store, prepared.sweep_id).is_dir()

    def test_long_expired_claims_are_reaped(self, store, coordinator):
        prepared = coordinator.prepare(SPEC)
        claims = ClaimSet(
            claims_dir(store, prepared.sweep_id), "w1", lease_seconds=1.0
        )
        claims.try_claim(prepared.manifest.cells[0].key)
        path = claims.path_for(prepared.manifest.cells[0].key)
        old = time.time() - 7200
        os.utime(path, (old, old))
        report = reap_cluster(store)
        assert report["claims_reaped"] == 1
        assert not path.exists()
        # The sweep itself is unfinished and stays.
        assert sweep_dir(store, prepared.sweep_id).is_dir()

    def test_store_gc_reports_cluster_reaping(self, store, coordinator):
        prepared = coordinator.prepare(SPEC)
        ClusterWorker(store, worker_id="w1", lease_seconds=5.0).run_sweep(
            prepared.sweep_id
        )
        self._age(sweep_dir(store, prepared.sweep_id), 7200)
        report = store.gc()
        assert report["cluster_sweeps_reaped"] == 1
        assert report["cluster_claims_reaped"] == 0
        assert not sweep_dir(store, prepared.sweep_id).exists()
