"""Unit tests for atomic claims, lease expiry, stealing and the heartbeat."""

import json
import os
import time

import pytest

from repro.cluster import ClaimSet, Heartbeat, read_claim


@pytest.fixture()
def claims_dir(tmp_path):
    return tmp_path / "claims"


class TestClaiming:
    def test_claim_wins_once(self, claims_dir):
        a = ClaimSet(claims_dir, "alpha")
        b = ClaimSet(claims_dir, "beta")
        assert a.try_claim("cell-1") is True
        assert b.try_claim("cell-1") is False
        assert a.held_keys() == ["cell-1"]
        assert b.held_keys() == []

    def test_claim_file_records_the_holder(self, claims_dir):
        claims = ClaimSet(claims_dir, "alpha", lease_seconds=7.0)
        claims.try_claim("cell-1")
        info = read_claim(claims_dir / "cell-1.claim")
        assert info.worker == "alpha"
        assert info.key == "cell-1"
        assert info.pid == os.getpid()
        assert info.lease_seconds == 7.0
        assert not info.expired()

    def test_release_unlinks_and_allows_reclaim(self, claims_dir):
        a = ClaimSet(claims_dir, "alpha")
        b = ClaimSet(claims_dir, "beta")
        a.try_claim("cell-1")
        a.release("cell-1")
        assert not (claims_dir / "cell-1.claim").exists()
        assert b.try_claim("cell-1") is True

    def test_release_all(self, claims_dir):
        claims = ClaimSet(claims_dir, "alpha")
        for key in ("c1", "c2", "c3"):
            claims.try_claim(key)
        claims.release_all()
        assert claims.held_keys() == []
        assert list(claims_dir.glob("*.claim")) == []

    def test_counters(self, claims_dir):
        claims = ClaimSet(claims_dir, "alpha")
        claims.try_claim("c1")
        claims.try_claim("c2")
        claims.release("c1")
        assert (claims.claimed, claims.released, claims.stolen) == (2, 1, 0)

    def test_nonpositive_lease_is_rejected(self, claims_dir):
        with pytest.raises(ValueError):
            ClaimSet(claims_dir, "alpha", lease_seconds=0.0)


class TestStealing:
    def test_live_claim_is_not_stealable(self, claims_dir):
        holder = ClaimSet(claims_dir, "holder", lease_seconds=60.0)
        thief = ClaimSet(claims_dir, "thief", lease_seconds=60.0)
        holder.try_claim("cell-1")
        assert thief.try_steal("cell-1") is False
        assert thief.stolen == 0

    def test_expired_claim_is_stolen(self, claims_dir):
        holder = ClaimSet(claims_dir, "holder", lease_seconds=0.05)
        thief = ClaimSet(claims_dir, "thief", lease_seconds=60.0)
        holder.try_claim("cell-1")
        time.sleep(0.1)
        assert thief.try_steal("cell-1") is True
        assert thief.stolen == 1
        assert read_claim(claims_dir / "cell-1.claim").worker == "thief"

    def test_steal_of_vanished_claim_degrades_to_plain_claim(self, claims_dir):
        thief = ClaimSet(claims_dir, "thief")
        assert thief.try_steal("cell-1") is True
        assert thief.stolen == 0  # nothing was stolen; it was free
        assert thief.claimed == 1

    def test_refresh_keeps_the_lease_alive(self, claims_dir):
        holder = ClaimSet(claims_dir, "holder", lease_seconds=0.3)
        thief = ClaimSet(claims_dir, "thief", lease_seconds=0.3)
        holder.try_claim("cell-1")
        for _ in range(4):
            time.sleep(0.1)
            assert holder.refresh() == 1
        # 0.4s elapsed, longer than the lease — but refreshed throughout.
        assert thief.try_steal("cell-1") is False

    def test_abandon_stops_refreshing_without_unlinking(self, claims_dir):
        holder = ClaimSet(claims_dir, "holder", lease_seconds=0.1)
        holder.try_claim("cell-1")
        holder.abandon("cell-1")
        assert holder.held_keys() == []
        assert holder.refresh() == 0
        assert (claims_dir / "cell-1.claim").exists()
        time.sleep(0.15)
        thief = ClaimSet(claims_dir, "thief")
        assert thief.try_steal("cell-1") is True


class TestGarbageClaims:
    def test_read_claim_of_missing_file_is_none(self, claims_dir):
        assert read_claim(claims_dir / "nope.claim") is None

    def test_garbage_claim_still_expires(self, claims_dir):
        claims_dir.mkdir(parents=True)
        path = claims_dir / "cell-g.claim"
        path.write_text("not json at all")
        info = read_claim(path)
        assert info.key == "cell-g"
        assert info.worker == "?"
        assert not info.expired()  # fresh mtime
        old = time.time() - info.lease_seconds - 10
        os.utime(path, (old, old))
        assert read_claim(path).expired()

    def test_garbage_claim_is_stealable_once_expired(self, claims_dir):
        claims_dir.mkdir(parents=True)
        path = claims_dir / "cell-g.claim"
        path.write_text(json.dumps({"weird": True}))
        old = time.time() - 120
        os.utime(path, (old, old))
        thief = ClaimSet(claims_dir, "thief")
        assert thief.try_steal("cell-g") is True


class TestHeartbeat:
    def test_heartbeat_refreshes_and_beats(self, claims_dir):
        claims = ClaimSet(claims_dir, "holder", lease_seconds=0.3)
        claims.try_claim("cell-1")
        beats = []
        with Heartbeat(claims, interval=0.05, on_beat=lambda: beats.append(1)):
            time.sleep(0.5)
            # The lease would have lapsed twice over without the heartbeat.
            thief = ClaimSet(claims_dir, "thief", lease_seconds=0.3)
            assert thief.try_steal("cell-1") is False
        assert beats  # on_beat ran alongside the refreshes

    def test_on_beat_exceptions_do_not_kill_the_thread(self, claims_dir):
        claims = ClaimSet(claims_dir, "holder", lease_seconds=0.2)
        claims.try_claim("cell-1")

        def explode():
            raise RuntimeError("status write failed")

        with Heartbeat(claims, interval=0.03, on_beat=explode):
            time.sleep(0.3)
            thief = ClaimSet(claims_dir, "thief", lease_seconds=0.2)
            assert thief.try_steal("cell-1") is False

    def test_interval_defaults_to_a_third_of_the_lease(self, claims_dir):
        claims = ClaimSet(claims_dir, "holder", lease_seconds=30.0)
        assert Heartbeat(claims).interval == pytest.approx(10.0)
