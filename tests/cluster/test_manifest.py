"""Unit tests for the cluster manifest: round trips, ranking, validation."""

import json

import pytest

from repro.cluster import (
    MANIFEST_FORMAT_VERSION,
    ClusterError,
    Manifest,
    ManifestCell,
    claims_dir,
    cluster_root,
    list_sweep_ids,
    load_manifest,
    manifest_path,
    new_sweep_id,
    remaining_cells,
    sweep_dir,
    workers_dir,
)
from repro.store import ResultStore


def make_cell(key="k1", cost=10, latency=50):
    return ManifestCell(
        key=key,
        program="DYFESM",
        latency=latency,
        architecture="dva",
        scale=1.0,
        cost=cost,
    )


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


class TestPaths:
    def test_cluster_tree_lives_inside_the_version_dir(self, store):
        assert cluster_root(store) == store.version_dir / "cluster"
        assert sweep_dir(store, "sw-1").parent == cluster_root(store)
        assert manifest_path(store, "sw-1").name == "manifest.json"
        assert claims_dir(store, "sw-1").name == "claims"
        assert workers_dir(store, "sw-1").name == "workers"

    @pytest.mark.parametrize("bad", ["", "a/b", "../up", ".hidden"])
    def test_malformed_sweep_ids_are_rejected(self, store, bad):
        with pytest.raises(ClusterError):
            sweep_dir(store, bad)

    def test_new_sweep_ids_are_unique_and_filesystem_safe(self, store):
        ids = {new_sweep_id() for _ in range(32)}
        assert len(ids) == 32
        for sweep_id in ids:
            sweep_dir(store, sweep_id)  # must not raise


class TestManifest:
    def test_cells_are_ranked_costliest_first_with_key_tiebreak(self):
        manifest = Manifest(
            sweep_id="sw-1",
            spec={},
            created_unix=0.0,
            cells=(
                make_cell("cheap", cost=1),
                make_cell("big-b", cost=99),
                make_cell("big-a", cost=99),
                make_cell("mid", cost=10),
            ),
        )
        assert [cell.key for cell in manifest.cells] == [
            "big-a", "big-b", "mid", "cheap",
        ]

    def test_write_then_load_round_trips(self, store):
        manifest = Manifest(
            sweep_id="sw-rt",
            spec={"programs": ["DYFESM"], "scale": 1.0},
            created_unix=123.456,
            cells=(make_cell("k1", cost=5), make_cell("k2", cost=50)),
        )
        path = manifest.write(store)
        assert path.is_file()
        loaded = load_manifest(store, "sw-rt")
        assert loaded == manifest
        assert len(loaded) == 2

    def test_load_missing_manifest_raises(self, store):
        with pytest.raises(ClusterError, match="no manifest"):
            load_manifest(store, "sw-nope")

    def test_load_corrupt_manifest_raises(self, store):
        path = manifest_path(store, "sw-bad")
        path.parent.mkdir(parents=True)
        path.write_text("{ not json")
        with pytest.raises(ClusterError, match="corrupt"):
            load_manifest(store, "sw-bad")

    def test_wrong_format_version_is_refused(self, store):
        path = manifest_path(store, "sw-v9")
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({
            "format": MANIFEST_FORMAT_VERSION + 1,
            "sweep_id": "sw-v9",
            "cells": [],
        }))
        with pytest.raises(ClusterError, match="format"):
            load_manifest(store, "sw-v9")

    def test_mislabelled_manifest_is_refused(self, store):
        manifest = Manifest(
            sweep_id="sw-other", spec={}, created_unix=0.0, cells=()
        )
        data = manifest.to_json()
        path = manifest_path(store, "sw-here")
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(data))
        with pytest.raises(ClusterError, match="labels itself"):
            load_manifest(store, "sw-here")

    def test_malformed_cell_raises(self):
        with pytest.raises(ClusterError, match="malformed"):
            ManifestCell.from_json({"key": "k", "program": "X"})


class TestDiscovery:
    def test_list_sweep_ids_orders_by_manifest_age(self, store):
        import os

        for index, sweep_id in enumerate(["sw-b", "sw-a", "sw-c"]):
            Manifest(
                sweep_id=sweep_id, spec={}, created_unix=0.0, cells=()
            ).write(store)
            os.utime(manifest_path(store, sweep_id), (index, index))
        assert list_sweep_ids(store) == ["sw-b", "sw-a", "sw-c"]

    def test_list_sweep_ids_empty_without_cluster_dir(self, store):
        assert list_sweep_ids(store) == []

    def test_remaining_cells_drops_cells_the_store_answers(self, store, monkeypatch):
        manifest = Manifest(
            sweep_id="sw-r",
            spec={},
            created_unix=0.0,
            cells=(make_cell("aa" * 32, cost=1), make_cell("bb" * 32, cost=2)),
        )
        done = {"bb" * 32}
        monkeypatch.setattr(
            type(store), "__contains__", lambda self, key: key in done
        )
        assert [cell.key for cell in remaining_cells(manifest, store)] == ["aa" * 32]
