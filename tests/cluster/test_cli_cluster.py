"""CLI surface of the cluster layer: sweep --distributed, worker, status."""

import json

import pytest

from repro.core.cli import main


class TestSweepDistributed:
    def test_distributed_requires_the_store(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "sweep", "--programs", "dyfesm", "--latencies", "1",
                "--distributed", "--no-store",
            ])
        assert "--no-store" in capsys.readouterr().err

    def test_distributed_sweep_runs_and_warm_rerun_simulates_zero(
        self, capsys, tmp_path
    ):
        argv = [
            "sweep", "--programs", "dyfesm", "--latencies", "1,50",
            "--arch", "ref,dva", "--scale", "0.2",
            "--distributed", "--workers", "2", "--lease", "10",
            "--store-dir", str(tmp_path / "store"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "sweep: 4 cells" in out
        assert "0 cached, 4 simulated" in out
        # Warm re-run: the coordinator answers everything from the store and
        # spawns no workers at all.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "4 cached, 0 simulated" in out


class TestWorkerAndStatus:
    def test_worker_once_drains_published_manifests(self, capsys, tmp_path):
        from repro.cluster import ClusterCoordinator
        from repro.core.experiment import SweepSpec
        from repro.store import ResultStore

        store_dir = tmp_path / "store"
        spec = SweepSpec(
            programs=("dyfesm",), latencies=(1,), architectures=("ref", "dva"),
            scale=0.2,
        )
        prepared = ClusterCoordinator(ResultStore(store_dir)).prepare(spec)
        code = main([
            "worker", "--once", "--worker-id", "w-test",
            "--store-dir", str(store_dir),
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "w-test" in err
        assert "completed=2" in err

        assert main(["cluster", "status", "--store-dir", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert prepared.sweep_id in out
        assert "[done]" in out
        assert "worker w-test" in out

    def test_cluster_status_json_payload(self, capsys, tmp_path):
        store_dir = tmp_path / "store"
        assert main([
            "cluster", "status", "--json", "--store-dir", str(store_dir),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sweeps"] == []
        assert payload["running_sweeps"] == 0

    def test_cluster_status_without_manifests_says_so(self, capsys, tmp_path):
        assert main([
            "cluster", "status", "--store-dir", str(tmp_path / "store"),
        ]) == 0
        assert "no sweeps" in capsys.readouterr().out
