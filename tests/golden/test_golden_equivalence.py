"""Golden-equivalence tests for the engine-based simulators.

``golden_cycles.json`` pins ``total_cycles`` and the key stall counters that
the *seed* (pre-``repro.engine``) simulators produced for every cell of the
paper's grid — six Perfect Club programs x memory latencies {1, 50, 100} x
{ref, dva, dva-nobypass}.  These tests assert that the simulators, however
they are implemented internally, still reproduce those numbers exactly.

A failure here means the timing model changed.  That is a bug unless the
change was deliberate and reviewed, in which case the snapshot is regenerated
with ``python scripts/make_golden.py``.

The whole suite runs once per timing core (tick and event) against the same
untouched snapshot: the event-driven skip-ahead core must reproduce the seed
numbers bit-for-bit, with no regeneration allowed.
"""

import json
from pathlib import Path

import pytest

from repro import RunConfig, Runner, SweepSpec

GOLDEN_PATH = Path(__file__).parent / "golden_cycles.json"


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.fixture(scope="module", params=["tick", "event"])
def sweep(golden, request):
    spec = SweepSpec(
        programs=tuple(golden["spec"]["programs"]),
        latencies=tuple(golden["spec"]["latencies"]),
        architectures=tuple(golden["spec"]["architectures"]),
    )
    return Runner(jobs=1).run(spec, config=RunConfig(core=request.param))


def test_snapshot_covers_the_full_grid(golden):
    spec = golden["spec"]
    expected = len(spec["programs"]) * len(spec["latencies"]) * len(spec["architectures"])
    assert len(golden["cells"]) == expected == 54


def test_every_cell_matches_the_seed_exactly(golden, sweep):
    mismatches = []
    for result in sweep:
        key = f"{result.program}/{result.latency}/{result.architecture}"
        expected = golden["cells"][key]
        actual = {name: result.detail[name] for name in expected}
        if actual != expected:
            mismatches.append((key, expected, actual))
    assert not mismatches, (
        "engine-based simulators diverged from the seed timing:\n"
        + "\n".join(
            f"  {key}: expected {expected}, got {actual}"
            for key, expected, actual in mismatches
        )
    )


def test_total_cycles_match_per_architecture(golden, sweep):
    """Redundant with the cell check, but failure output localizes the machine."""
    for architecture in golden["spec"]["architectures"]:
        expected = {
            key: cell["total_cycles"]
            for key, cell in golden["cells"].items()
            if key.endswith("/" + architecture)
        }
        actual = {
            f"{r.program}/{r.latency}/{r.architecture}": r.total_cycles
            for r in sweep.by_architecture(architecture)
        }
        assert actual == expected
