"""Golden equivalence between named presets and their inline machine specs.

The MachineSpec redesign made every registry preset a resolved spec.  These
tests pin the other half of that contract: writing the machine *inline*
(``"dva@ports=2"``) is cycle-identical to naming the preset (``"dva-2port"``),
so the declarative path cannot drift from the named path without failing
loudly.  Full-metric equality (the whole ``detail`` payload, not just
``total_cycles``) over two programs and two latencies keeps the check cheap
but sharp.
"""

import pytest

from repro import MachineSpec, Runner, SweepSpec

# Every named preset and the inline spec that must be the same machine.
PRESET_EQUIVALENTS = {
    "ref": "ref@lanes=1,ports=1",
    "dva": "dva@lanes=1,ports=1,bypass=on",
    "dva-nobypass": "dva@bypass=off",
    "ref-2lane": "ref@lanes=2",
    "dva-2port": "dva@ports=2",
}

PROGRAMS = ("DYFESM", "TRFD")
LATENCIES = (1, 50)


@pytest.fixture(scope="module")
def sweeps():
    runner = Runner(jobs=1)
    named = runner.run(
        SweepSpec(
            programs=PROGRAMS,
            latencies=LATENCIES,
            architectures=tuple(PRESET_EQUIVALENTS),
            scale=0.2,
        )
    )
    inline = runner.run(
        SweepSpec(
            programs=PROGRAMS,
            latencies=LATENCIES,
            architectures=tuple(PRESET_EQUIVALENTS.values()),
            scale=0.2,
        )
    )
    return named, inline


@pytest.mark.parametrize("preset", sorted(PRESET_EQUIVALENTS))
def test_preset_is_cycle_identical_to_inline_spec(preset, sweeps):
    named, inline = sweeps
    # Sweep cells are labelled by the spec's *canonical* string, which elides
    # default-valued pins ("ref@lanes=1,ports=1" is just "ref").
    inline_label = MachineSpec.from_string(PRESET_EQUIVALENTS[preset]).to_string()
    for program in PROGRAMS:
        for latency in LATENCIES:
            a = named.get(program, latency, preset)
            b = inline.get(program, latency, inline_label)
            assert a.total_cycles == b.total_cycles, (preset, program, latency)
            assert a.detail == b.detail, (preset, program, latency)


def test_inline_and_named_specs_resolve_equal(sweeps):
    """The provenance specs match too, not just the timing."""
    named, inline = sweeps
    for preset, inline_text in PRESET_EQUIVALENTS.items():
        a = named.get(PROGRAMS[0], 1, preset)
        b = inline.get(
            PROGRAMS[0], 1, MachineSpec.from_string(inline_text).to_string()
        )
        assert a.spec == b.spec, preset
