"""Unit and property tests for busy-interval bookkeeping."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SimulationError
from repro.common.intervals import (
    Interval,
    IntervalRecorder,
    merge_intervals,
    state_breakdown,
    total_busy_time,
)


class TestInterval:
    def test_length(self):
        assert Interval(3, 10).length == 7

    def test_zero_length_is_falsy(self):
        assert not Interval(5, 5)
        assert Interval(5, 6)

    def test_invalid_interval_rejected(self):
        with pytest.raises(SimulationError):
            Interval(10, 3)

    def test_overlap_detection(self):
        assert Interval(0, 5).overlaps(Interval(4, 8))
        assert not Interval(0, 5).overlaps(Interval(5, 8))
        assert not Interval(6, 9).overlaps(Interval(0, 6))

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 3).intersection(Interval(3, 9)) is None


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_are_sorted(self):
        merged = merge_intervals([Interval(10, 12), Interval(0, 2)])
        assert merged == [Interval(0, 2), Interval(10, 12)]

    def test_overlapping_are_joined(self):
        merged = merge_intervals([Interval(0, 5), Interval(3, 8), Interval(8, 9)])
        assert merged == [Interval(0, 9)]

    def test_contained_intervals_collapse(self):
        merged = merge_intervals([Interval(0, 10), Interval(2, 3)])
        assert merged == [Interval(0, 10)]

    def test_total_busy_time_ignores_double_counting(self):
        assert total_busy_time([Interval(0, 5), Interval(3, 8)]) == 8

    @given(
        st.lists(
            st.tuples(st.integers(0, 500), st.integers(0, 100)).map(
                lambda t: Interval(t[0], t[0] + t[1])
            ),
            max_size=40,
        )
    )
    def test_merge_preserves_coverage(self, intervals):
        merged = merge_intervals(intervals)
        # Merged intervals are disjoint and sorted.
        for first, second in zip(merged, merged[1:]):
            assert first.end < second.start or first.end <= second.start
        # Every original cycle is covered by some merged interval.
        covered = set()
        for interval in merged:
            covered.update(range(interval.start, interval.end))
        original = set()
        for interval in intervals:
            original.update(range(interval.start, interval.end))
        assert covered == original
        assert total_busy_time(intervals) == len(original)


class TestIntervalRecorder:
    def test_busy_time_merges_overlaps(self):
        recorder = IntervalRecorder("fu1")
        recorder.record(0, 10)
        recorder.record(5, 15)
        assert recorder.busy_time() == 15

    def test_zero_length_record_is_ignored(self):
        recorder = IntervalRecorder("fu1")
        recorder.record(4, 4)
        assert len(recorder) == 0

    def test_invalid_record_raises(self):
        recorder = IntervalRecorder("fu1")
        with pytest.raises(SimulationError):
            recorder.record(10, 2)

    def test_busy_at(self):
        recorder = IntervalRecorder("ld")
        recorder.record(5, 8)
        assert recorder.busy_at(5)
        assert recorder.busy_at(7)
        assert not recorder.busy_at(8)
        assert not recorder.busy_at(0)

    def test_last_end(self):
        recorder = IntervalRecorder("ld")
        assert recorder.last_end() == 0
        recorder.record(5, 8)
        recorder.record(1, 3)
        assert recorder.last_end() == 8


class TestStateBreakdown:
    def test_all_idle_when_no_intervals(self):
        fu2 = IntervalRecorder("FU2")
        fu1 = IntervalRecorder("FU1")
        ld = IntervalRecorder("LD")
        breakdown = state_breakdown([fu2, fu1, ld], total_cycles=100)
        assert breakdown.cycles_all_idle() == 100
        assert breakdown.cycles_in(True, True, True) == 0

    def test_three_unit_partition(self):
        fu2 = IntervalRecorder("FU2")
        fu1 = IntervalRecorder("FU1")
        ld = IntervalRecorder("LD")
        fu2.record(0, 10)
        fu1.record(5, 15)
        ld.record(0, 20)
        breakdown = state_breakdown([fu2, fu1, ld], total_cycles=25)
        assert breakdown.cycles_in(True, False, True) == 5    # [0, 5)
        assert breakdown.cycles_in(True, True, True) == 5     # [5, 10)
        assert breakdown.cycles_in(False, True, True) == 5    # [10, 15)
        assert breakdown.cycles_in(False, False, True) == 5   # [15, 20)
        assert breakdown.cycles_all_idle() == 5               # [20, 25)
        assert sum(breakdown.cycles.values()) == 25

    def test_resource_idle_cycles(self):
        fu2 = IntervalRecorder("FU2")
        ld = IntervalRecorder("LD")
        ld.record(0, 4)
        breakdown = state_breakdown([fu2, ld], total_cycles=10)
        assert breakdown.cycles_resource_idle("LD") == 6
        assert breakdown.cycles_resource_idle("FU2") == 10

    def test_fraction(self):
        fu2 = IntervalRecorder("FU2")
        fu2.record(0, 25)
        breakdown = state_breakdown([fu2], total_cycles=100)
        assert breakdown.fraction(True) == pytest.approx(0.25)

    def test_zero_total_cycles(self):
        breakdown = state_breakdown([IntervalRecorder("FU2")], total_cycles=0)
        assert breakdown.cycles == {}
        assert breakdown.fraction(True) == 0.0

    @given(
        st.lists(
            st.tuples(st.integers(0, 200), st.integers(1, 50)),
            min_size=0,
            max_size=20,
        ),
        st.lists(
            st.tuples(st.integers(0, 200), st.integers(1, 50)),
            min_size=0,
            max_size=20,
        ),
        st.integers(1, 300),
    )
    def test_breakdown_partitions_total_cycles(self, first, second, total_cycles):
        recorder_a = IntervalRecorder("A")
        recorder_b = IntervalRecorder("B")
        for start, length in first:
            recorder_a.record(start, start + length)
        for start, length in second:
            recorder_b.record(start, start + length)
        breakdown = state_breakdown([recorder_a, recorder_b], total_cycles)
        assert sum(breakdown.cycles.values()) == total_cycles
