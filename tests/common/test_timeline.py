"""Tests for queue-occupancy timelines."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SimulationError
from repro.common.timeline import OccupancyTimeline, Residency, occupancy_histogram


class TestResidency:
    def test_rejects_negative_duration(self):
        with pytest.raises(SimulationError):
            Residency(enter=10, leave=5)

    def test_zero_duration_allowed(self):
        residency = Residency(enter=4, leave=4)
        assert residency.enter == residency.leave


class TestOccupancyHistogram:
    def test_empty_counts_all_cycles_at_zero(self):
        histogram = occupancy_histogram([], total_cycles=50)
        assert histogram.count(0) == 50
        assert histogram.total() == 50

    def test_single_element(self):
        histogram = occupancy_histogram([Residency(10, 20)], total_cycles=30)
        assert histogram.count(0) == 20
        assert histogram.count(1) == 10
        assert histogram.total() == 30

    def test_overlapping_elements(self):
        residencies = [Residency(0, 10), Residency(5, 15), Residency(5, 8)]
        histogram = occupancy_histogram(residencies, total_cycles=20)
        assert histogram.count(3) == 3   # [5, 8)
        assert histogram.count(2) == 2   # [8, 10)
        assert histogram.count(1) == 10  # [0, 5) and [10, 15)
        assert histogram.count(0) == 5   # [15, 20)
        assert histogram.total() == 20

    def test_truncation_at_horizon(self):
        histogram = occupancy_histogram([Residency(0, 100)], total_cycles=10)
        assert histogram.count(1) == 10
        assert histogram.total() == 10

    def test_zero_cycles(self):
        histogram = occupancy_histogram([Residency(0, 5)], total_cycles=0)
        assert histogram.total() == 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(0, 40)),
            max_size=30,
        ),
        st.integers(1, 200),
    )
    def test_histogram_always_sums_to_total_cycles(self, raw, total_cycles):
        residencies = [Residency(start, start + length) for start, length in raw]
        histogram = occupancy_histogram(residencies, total_cycles)
        assert histogram.total() == total_cycles

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(1, 40)),
            min_size=1,
            max_size=30,
        )
    )
    def test_mean_occupancy_matches_total_residency_time(self, raw):
        residencies = [Residency(start, start + length) for start, length in raw]
        horizon = max(r.leave for r in residencies)
        histogram = occupancy_histogram(residencies, horizon)
        weighted = sum(level * cycles for level, cycles in histogram.items())
        assert weighted == sum(r.leave - r.enter for r in residencies)


class TestOccupancyTimeline:
    def test_record_and_histogram(self):
        timeline = OccupancyTimeline("AVDQ", capacity=4)
        timeline.record(0, 10)
        timeline.record(5, 12)
        histogram = timeline.occupancy_histogram(total_cycles=20)
        assert histogram.count(2) == 5
        assert histogram.count(1) == 7
        assert histogram.count(0) == 8

    def test_zero_length_residency_ignored(self):
        timeline = OccupancyTimeline("AVDQ")
        timeline.record(3, 3)
        assert len(timeline) == 0

    def test_max_occupancy(self):
        timeline = OccupancyTimeline("AVDQ")
        assert timeline.max_occupancy() == 0
        timeline.record(0, 10)
        timeline.record(2, 4)
        timeline.record(3, 4)
        assert timeline.max_occupancy() == 3

    def test_mean_occupancy(self):
        timeline = OccupancyTimeline("AVDQ")
        timeline.record(0, 10)
        assert timeline.mean_occupancy(total_cycles=20) == pytest.approx(0.5)
        assert timeline.mean_occupancy(total_cycles=0) == 0.0
