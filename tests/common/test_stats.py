"""Tests for the statistics helpers."""


import pytest
from hypothesis import given, strategies as st

from repro.common.stats import Histogram, RunningStats, geometric_mean, weighted_mean


class TestHistogram:
    def test_add_and_count(self):
        histogram = Histogram()
        histogram.add(3)
        histogram.add(3, 4)
        histogram.add(7)
        assert histogram.count(3) == 5
        assert histogram.count(7) == 1
        assert histogram.count(99) == 0
        assert histogram.total() == 6

    def test_zero_weight_is_noop(self):
        histogram = Histogram()
        histogram.add(1, 0)
        assert histogram.total() == 0
        assert len(histogram) == 0

    def test_keys_sorted(self):
        histogram = Histogram()
        for key in (9, 1, 5):
            histogram.add(key)
        assert histogram.keys() == [1, 5, 9]
        assert histogram.max_key() == 9

    def test_mean(self):
        histogram = Histogram()
        histogram.add(2, 3)
        histogram.add(10, 1)
        assert histogram.mean() == pytest.approx(4.0)
        assert Histogram().mean() == 0.0

    def test_fraction_at_or_below(self):
        histogram = Histogram()
        histogram.add(1, 2)
        histogram.add(5, 2)
        assert histogram.fraction_at_or_below(1) == pytest.approx(0.5)
        assert histogram.fraction_at_or_below(5) == pytest.approx(1.0)
        assert Histogram().fraction_at_or_below(10) == 0.0

    def test_equality_and_as_dict(self):
        first = Histogram()
        second = Histogram()
        first.add(2, 2)
        second.add(2)
        second.add(2)
        assert first == second
        assert first.as_dict() == {2: 2}

    @given(st.lists(st.integers(0, 20), max_size=100))
    def test_total_matches_number_of_observations(self, values):
        histogram = Histogram()
        for value in values:
            histogram.add(value)
        assert histogram.total() == len(values)


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_mean_and_extremes(self):
        stats = RunningStats()
        stats.extend([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
    def test_matches_batch_computation(self, values):
        stats = RunningStats()
        stats.extend(values)
        expected_mean = sum(values) / len(values)
        expected_var = sum((v - expected_mean) ** 2 for v in values) / len(values)
        assert stats.mean == pytest.approx(expected_mean, rel=1e-6, abs=1e-6)
        assert stats.variance == pytest.approx(expected_var, rel=1e-6, abs=1e-3)


class TestMeans:
    def test_weighted_mean(self):
        assert weighted_mean([(10.0, 1.0), (20.0, 3.0)]) == pytest.approx(17.5)
        assert weighted_mean([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=20))
    def test_geometric_mean_bounded_by_extremes(self, values):
        result = geometric_mean(values)
        assert min(values) <= result * (1 + 1e-9)
        assert result <= max(values) * (1 + 1e-9)
