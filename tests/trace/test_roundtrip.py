"""Round-trip tests for trace serialization."""

import pytest

from repro.common.errors import TraceError
from repro.isa.builder import InstructionBuilder
from repro.isa.opcodes import Opcode
from repro.isa.program import BasicBlock
from repro.isa.registers import s_reg, v_reg
from repro.trace.generator import TraceBuilder
from repro.trace.reader import read_trace
from repro.trace.writer import write_trace


def _make_trace():
    block = BasicBlock("loop")
    builder = InstructionBuilder(block)
    builder.set_vector_length(48)
    builder.set_vector_stride(2)
    builder.vector_load(v_reg(0), "x", stride=2)
    builder.vector_op(Opcode.V_MUL, v_reg(1), [v_reg(0), v_reg(0)])
    builder.vector_store(v_reg(1), "spill_a", is_spill=True)
    builder.vector_load(v_reg(2), "idx", indexed=True)
    builder.scalar_load(s_reg(0), "globals")
    builder.branch(s_reg(0))

    trace_builder = TraceBuilder("roundtrip")
    for iteration in range(3):
        trace_builder.append_block(block, region_offsets={"x": iteration * 48})
    return trace_builder.build()


class TestTraceRoundtrip:
    def test_plain_roundtrip(self, tmp_path):
        original = _make_trace()
        path = write_trace(original, tmp_path / "trace.jsonl")
        restored = read_trace(path)
        self._assert_equivalent(original, restored)

    def test_gzip_roundtrip(self, tmp_path):
        original = _make_trace()
        path = write_trace(original, tmp_path / "trace.jsonl.gz")
        restored = read_trace(path)
        self._assert_equivalent(original, restored)

    def _assert_equivalent(self, original, restored):
        assert restored.name == original.name
        assert restored.blocks_executed == original.blocks_executed
        assert len(restored) == len(original)
        for first, second in zip(original, restored):
            assert first.sequence == second.sequence
            assert first.opcode == second.opcode
            assert first.vector_length == second.vector_length
            assert first.stride_elements == second.stride_elements
            assert first.base_address == second.base_address
            assert first.block_label == second.block_label
            assert first.instruction.destinations == second.instruction.destinations
            assert first.instruction.sources == second.instruction.sources
            if first.instruction.memory is not None:
                assert first.instruction.memory == second.instruction.memory

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            read_trace(tmp_path / "missing.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format_version": 99, "name": "x", "records": 0}\n')
        with pytest.raises(TraceError):
            read_trace(path)

    def test_legacy_roundtrip(self, tmp_path):
        original = _make_trace()
        path = write_trace(original, tmp_path / "trace.jsonl", format="jsonl")
        restored = read_trace(path)
        self._assert_equivalent(original, restored)

    def test_record_count_mismatch_rejected(self, tmp_path):
        original = _make_trace()
        path = write_trace(original, tmp_path / "trace.jsonl", format="jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_malformed_record_rejected(self, tmp_path):
        original = _make_trace()
        path = write_trace(original, tmp_path / "trace.jsonl", format="jsonl")
        lines = path.read_text().splitlines()
        lines[1] = '{"seq": 0}'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError):
            read_trace(path)
