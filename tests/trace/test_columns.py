"""Columnar-trace coverage: record equivalence, binary format, error paths."""

import gzip
import struct

import pytest

from repro.common.errors import TraceError
from repro.isa.builder import InstructionBuilder
from repro.isa.instruction import MemoryOperand, make_instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import BasicBlock
from repro.isa.registers import s_reg, v_reg
from repro.trace.columns import NO_ADDRESS, ColumnarTrace
from repro.trace.generator import TraceBuilder
from repro.trace.reader import iter_trace_records, read_trace
from repro.trace.record import Trace
from repro.trace.statistics import compute_statistics
from repro.trace.writer import TRACE_MAGIC, write_trace
from repro.workloads.perfect_club import load_program, program_names

#: Small but non-trivial scale so all six programs stay fast to build.
_SCALE = 0.05


def _program_trace(name):
    return load_program(name).build_trace(scale=_SCALE)


def _records_equal(first, second):
    assert first.sequence == second.sequence
    assert first.opcode == second.opcode
    assert first.block_label == second.block_label
    assert first.vector_length == second.vector_length
    assert first.stride_elements == second.stride_elements
    assert first.base_address == second.base_address
    assert first.instruction.destinations == second.instruction.destinations
    assert first.instruction.sources == second.instruction.sources
    assert first.instruction.memory == second.instruction.memory
    assert first.instruction.immediate == second.instruction.immediate


class TestColumnarRecordEquivalence:
    """Columns and record views describe the same stream for every program."""

    @pytest.mark.parametrize("program", program_names())
    def test_record_roundtrip(self, program):
        """Re-encoding the record views reproduces the columns exactly."""
        trace = _program_trace(program)
        rebuilt = Trace(
            name=trace.name,
            records=iter(trace),
            blocks_executed=trace.blocks_executed,
            metadata=dict(trace.metadata),
        )
        assert len(rebuilt) == len(trace)
        for name in ("insn", "seq", "vl", "stride", "addr", "block"):
            assert getattr(rebuilt.columns, name) == getattr(trace.columns, name), name
        assert rebuilt.columns.kind == trace.columns.kind
        assert rebuilt.columns.block_labels == trace.columns.block_labels
        for first, second in zip(trace, rebuilt):
            _records_equal(first, second)

    @pytest.mark.parametrize("program", program_names())
    def test_binary_roundtrip(self, program, tmp_path):
        """Write → read of the chunked column format is lossless."""
        trace = _program_trace(program)
        path = write_trace(trace, tmp_path / f"{program}.trc")
        restored = read_trace(path)
        assert restored.name == trace.name
        assert restored.blocks_executed == trace.blocks_executed
        assert len(restored) == len(trace)
        for first, second in zip(trace, restored):
            _records_equal(first, second)
        original_stats = compute_statistics(trace).as_table_row()
        assert compute_statistics(restored).as_table_row() == original_stats

    def test_statistics_match_record_walk(self):
        """The one-pass columnar statistics agree with a record-by-record walk."""
        trace = _program_trace("DYFESM")
        stats = compute_statistics(trace)
        assert stats.vector_instructions == sum(1 for r in trace if r.is_vector)
        assert stats.scalar_instructions == sum(1 for r in trace if not r.is_vector)
        assert stats.vector_operations == sum(
            r.operations for r in trace if r.is_vector
        )
        assert stats.memory_bytes == sum(r.bytes_accessed for r in trace)
        assert stats.spill_memory_instructions == sum(
            1 for r in trace if r.is_memory and r.is_spill_access
        )

    def test_gzip_binary_roundtrip(self, tmp_path):
        trace = _program_trace("TRFD")
        path = write_trace(trace, tmp_path / "trace.trc.gz")
        restored = read_trace(path)
        assert len(restored) == len(trace)
        for first, second in zip(trace, restored):
            _records_equal(first, second)

    def test_streaming_iterator_matches_loaded_trace(self, tmp_path):
        trace = _program_trace("BDNA")
        binary = write_trace(trace, tmp_path / "trace.trc")
        legacy = write_trace(trace, tmp_path / "trace.jsonl", format="jsonl")
        for path in (binary, legacy):
            streamed = list(iter_trace_records(path))
            assert len(streamed) == len(trace)
            for first, second in zip(trace, streamed):
                _records_equal(first, second)


class TestColumnarTraceInvariants:
    def test_negative_vector_length_rejected(self):
        columns = ColumnarTrace()
        add = make_instruction(Opcode.V_ADD, destinations=[v_reg(0)])
        with pytest.raises(TraceError):
            columns.append(add, sequence=0, vector_length=-1)

    def test_memory_without_address_rejected(self):
        columns = ColumnarTrace()
        load = make_instruction(
            Opcode.V_LOAD, destinations=[v_reg(0)], memory=MemoryOperand(region="x")
        )
        with pytest.raises(TraceError):
            columns.append(load, sequence=0, vector_length=8)

    def test_no_address_sentinel_maps_to_none(self):
        columns = ColumnarTrace()
        add = make_instruction(Opcode.V_ADD, destinations=[v_reg(0)])
        columns.append(add, sequence=0, vector_length=8)
        assert columns.addr[0] == NO_ADDRESS
        assert columns.record(0).base_address is None

    def test_legacy_read_interns_equal_instructions_by_value(self, tmp_path):
        """A JSONL trace (fresh Instruction object per line) still collapses
        to one static-table entry per unique instruction."""
        trace = _program_trace("FLO52")
        path = write_trace(trace, tmp_path / "trace.jsonl", format="jsonl")
        restored = read_trace(path)
        assert len(restored.columns.instructions) == len(trace.columns.instructions)

    def test_instruction_infos_cached_and_aligned(self):
        trace = _program_trace("ARC2D")
        infos = trace.columns.instruction_infos()
        assert infos is trace.columns.instruction_infos()
        assert len(infos) == len(trace.columns.instructions)
        for info, instruction in zip(infos, trace.columns.instructions):
            assert info.instruction is instruction
            assert info.is_vector == instruction.is_vector
            assert info.opcode_class == instruction.opcode_class


def _small_trace():
    block = BasicBlock("loop")
    builder = InstructionBuilder(block)
    builder.set_vector_length(16)
    builder.vector_load(v_reg(0), "x")
    builder.vector_op(Opcode.V_ADD, v_reg(1), [v_reg(0), v_reg(0)])
    builder.vector_store(v_reg(1), "y")
    builder.scalar_load(s_reg(0), "globals")
    trace_builder = TraceBuilder("errors")
    trace_builder.append_block(block)
    return trace_builder.build()


class TestReaderErrorPaths:
    def test_truncated_file_raises_explicit_error(self, tmp_path):
        path = write_trace(_small_trace(), tmp_path / "trace.trc")
        data = path.read_bytes()
        path.write_bytes(data[:-20])
        with pytest.raises(TraceError, match="truncated"):
            read_trace(path)

    def test_truncated_header_raises_explicit_error(self, tmp_path):
        path = write_trace(_small_trace(), tmp_path / "trace.trc")
        path.write_bytes(path.read_bytes()[: len(TRACE_MAGIC) + 2])
        with pytest.raises(TraceError, match="truncated"):
            read_trace(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "trace.trc"
        path.write_bytes(b"NOTATRCE" + b"\x00" * 64)
        with pytest.raises(TraceError, match="bad magic"):
            read_trace(path)

    def test_bad_magic_rejected_when_streaming(self, tmp_path):
        path = tmp_path / "trace.trc"
        path.write_bytes(b"NOTATRCE" + b"\x00" * 64)
        with pytest.raises(TraceError, match="bad magic"):
            list(iter_trace_records(path))

    def test_binary_version_mismatch_rejected(self, tmp_path):
        path = write_trace(_small_trace(), tmp_path / "trace.trc")
        data = path.read_bytes()
        offset = len(TRACE_MAGIC)
        (header_length,) = struct.unpack_from("<I", data, offset)
        header = data[offset + 4 : offset + 4 + header_length]
        patched = header.replace(b'"format_version": 2', b'"format_version": 99')
        rewritten = (
            data[:offset]
            + struct.pack("<I", len(patched))
            + patched
            + data[offset + 4 + header_length :]
        )
        path.write_bytes(rewritten)
        with pytest.raises(TraceError, match="version"):
            read_trace(path)

    def test_legacy_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"format_version": 7, "name": "x", "records": 0}\n')
        with pytest.raises(TraceError, match="version"):
            read_trace(path)

    def test_empty_gzip_rejected(self, tmp_path):
        path = tmp_path / "trace.trc.gz"
        with gzip.open(path, "wb"):
            pass
        with pytest.raises(TraceError, match="empty"):
            read_trace(path)

    def test_trailing_data_rejected(self, tmp_path):
        """Extra bytes past the declared record count mean corruption."""
        path = write_trace(_small_trace(), tmp_path / "trace.trc")
        path.write_bytes(path.read_bytes() + b"\x01")
        with pytest.raises(TraceError, match="more data"):
            read_trace(path)
        with pytest.raises(TraceError, match="more data"):
            list(iter_trace_records(path))

    def test_negative_table_reference_rejected_when_streaming(self, tmp_path):
        """A negative instruction index must not wrap around the table."""
        path = write_trace(_small_trace(), tmp_path / "trace.trc")
        data = bytearray(path.read_bytes())
        offset = len(TRACE_MAGIC)
        (header_length,) = struct.unpack_from("<I", data, offset)
        first_insn = offset + 4 + header_length + 4
        struct.pack_into("<q", data, first_insn, -2)
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError):
            read_trace(path)
        with pytest.raises(TraceError):
            list(iter_trace_records(path))

    def test_corrupt_chunk_count_rejected(self, tmp_path):
        """A chunk claiming more records than the header declares is corrupt."""
        path = write_trace(_small_trace(), tmp_path / "trace.trc")
        data = bytearray(path.read_bytes())
        offset = len(TRACE_MAGIC)
        (header_length,) = struct.unpack_from("<I", data, offset)
        chunk_offset = offset + 4 + header_length
        struct.pack_into("<I", data, chunk_offset, 10_000)
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError, match="corrupt"):
            read_trace(path)
