"""Tests for dynamic trace records."""

import pytest

from repro.common.errors import TraceError
from repro.isa.builder import InstructionBuilder
from repro.isa.instruction import MemoryOperand, make_instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import BasicBlock
from repro.isa.registers import s_reg, v_reg
from repro.trace.record import DynamicInstruction, Trace


def _vector_load(region="x", stride=1, spill=False):
    return make_instruction(
        Opcode.V_LOAD,
        destinations=[v_reg(0)],
        memory=MemoryOperand(region=region, stride=stride, is_spill=spill),
    )


def _vector_add():
    return make_instruction(
        Opcode.V_ADD, destinations=[v_reg(2)], sources=[v_reg(0), v_reg(1)]
    )


class TestDynamicInstruction:
    def test_memory_record_requires_address(self):
        with pytest.raises(TraceError):
            DynamicInstruction(instruction=_vector_load(), sequence=0)

    def test_negative_vector_length_rejected(self):
        with pytest.raises(TraceError):
            DynamicInstruction(
                instruction=_vector_add(), sequence=0, vector_length=-1
            )

    def test_operations_counts_elements_for_vectors(self):
        record = DynamicInstruction(
            instruction=_vector_add(), sequence=0, vector_length=100
        )
        assert record.operations == 100
        scalar = DynamicInstruction(
            instruction=make_instruction(Opcode.S_ADD, destinations=[s_reg(0)]),
            sequence=1,
            vector_length=100,
        )
        assert scalar.operations == 1

    def test_bytes_accessed(self):
        record = DynamicInstruction(
            instruction=_vector_load(),
            sequence=0,
            vector_length=32,
            base_address=0x1000,
        )
        assert record.bytes_accessed == 32 * 8
        compute = DynamicInstruction(
            instruction=_vector_add(), sequence=1, vector_length=32
        )
        assert compute.bytes_accessed == 0

    def test_stride_bytes(self):
        record = DynamicInstruction(
            instruction=_vector_load(stride=4),
            sequence=0,
            vector_length=8,
            stride_elements=4,
            base_address=0,
        )
        assert record.stride_bytes == 32

    def test_classification_delegation(self):
        record = DynamicInstruction(
            instruction=_vector_load(spill=True),
            sequence=0,
            vector_length=16,
            base_address=0x2000,
        )
        assert record.is_vector
        assert record.is_memory
        assert record.is_load
        assert record.is_vector_memory
        assert record.is_spill_access
        assert not record.is_indexed_memory
        assert not record.is_branch

    def test_string_rendering(self):
        record = DynamicInstruction(
            instruction=_vector_load(),
            sequence=7,
            vector_length=64,
            base_address=0x1234,
        )
        rendered = str(record)
        assert "[7]" in rendered
        assert "vl=64" in rendered
        assert "0x1234" in rendered


class TestTrace:
    def test_counts(self):
        block = BasicBlock("b")
        builder = InstructionBuilder(block)
        builder.set_vector_length(50)
        builder.vector_load(v_reg(0), "x")
        builder.vector_op(Opcode.V_ADD, v_reg(1), [v_reg(0), v_reg(0)])

        trace = Trace(name="demo")
        trace.append(
            DynamicInstruction(instruction=block.instructions[0], sequence=0)
        )
        trace.append(
            DynamicInstruction(
                instruction=block.instructions[1],
                sequence=1,
                vector_length=50,
                base_address=0x100,
            )
        )
        trace.append(
            DynamicInstruction(
                instruction=block.instructions[2], sequence=2, vector_length=50
            )
        )
        assert len(trace) == 3
        assert trace.vector_instruction_count == 2
        assert trace.scalar_instruction_count == 1
        assert trace.vector_operation_count == 100
        assert trace.memory_instruction_count == 1
        assert trace[0].sequence == 0

    def test_validate_detects_sequence_gaps(self):
        trace = Trace(name="demo")
        trace.append(
            DynamicInstruction(
                instruction=make_instruction(Opcode.S_ADD, destinations=[s_reg(0)]),
                sequence=3,
            )
        )
        with pytest.raises(TraceError):
            trace.validate()
