"""Tests for trace generation and the region allocator."""

import pytest

from repro.common.errors import TraceError
from repro.isa.builder import InstructionBuilder
from repro.isa.instruction import make_instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import BasicBlock
from repro.isa.registers import ELEMENT_SIZE_BYTES, VECTOR_REGISTER_LENGTH, s_reg, v_reg
from repro.trace.generator import RegionAllocator, TraceBuilder


def _simple_block(vl=64, region="x"):
    block = BasicBlock("body")
    builder = InstructionBuilder(block)
    builder.set_vector_length(vl)
    builder.vector_load(v_reg(0), region)
    builder.vector_op(Opcode.V_ADD, v_reg(1), [v_reg(0), v_reg(0)])
    builder.vector_store(v_reg(1), "y")
    return block


class TestRegionAllocator:
    def test_regions_are_stable(self):
        allocator = RegionAllocator()
        first = allocator.base_of("a")
        second = allocator.base_of("a")
        assert first == second

    def test_distinct_regions_do_not_overlap(self):
        allocator = RegionAllocator()
        base_a = allocator.base_of("a", size_bytes=0x2000)
        base_b = allocator.base_of("b", size_bytes=0x2000)
        assert abs(base_a - base_b) >= 0x2000

    def test_spill_regions_live_in_stack_segment(self):
        allocator = RegionAllocator()
        data = allocator.base_of("matrix")
        spill = allocator.base_of("spill_loop0")
        assert spill > data

    def test_address_of_offsets_by_elements(self):
        allocator = RegionAllocator()
        base = allocator.base_of("a")
        assert allocator.address_of("a", 10) == base + 10 * ELEMENT_SIZE_BYTES

    def test_regions_map_copy(self):
        allocator = RegionAllocator()
        allocator.base_of("a")
        regions = allocator.regions
        regions["a"] = 0
        assert allocator.base_of("a") != 0


class TestTraceBuilder:
    def test_default_vector_length_is_architectural_maximum(self):
        builder = TraceBuilder("demo")
        assert builder.vector_length == VECTOR_REGISTER_LENGTH

    def test_set_vl_updates_subsequent_records(self):
        builder = TraceBuilder("demo")
        builder.append_block(_simple_block(vl=33))
        trace = builder.build()
        vector_records = [r for r in trace if r.is_vector]
        assert all(r.vector_length == 33 for r in vector_records)

    def test_set_vl_requires_immediate(self):
        builder = TraceBuilder("demo")
        bad = make_instruction(Opcode.SET_VL)
        with pytest.raises(TraceError):
            builder.append_instruction(bad)

    def test_set_vl_range_checked(self):
        builder = TraceBuilder("demo")
        bad = make_instruction(Opcode.SET_VL, immediate=VECTOR_REGISTER_LENGTH + 1)
        with pytest.raises(TraceError):
            builder.append_instruction(bad)

    def test_set_vs_updates_stride_state(self):
        builder = TraceBuilder("demo")
        builder.append_instruction(make_instruction(Opcode.SET_VS, immediate=4))
        assert builder.vector_stride == 4

    def test_region_offsets_advance_addresses(self):
        builder = TraceBuilder("demo")
        block = _simple_block()
        builder.append_block(block, region_offsets={"x": 0})
        builder.append_block(block, region_offsets={"x": 64})
        trace = builder.build()
        loads = [r for r in trace if r.is_load]
        assert loads[1].base_address - loads[0].base_address == 64 * ELEMENT_SIZE_BYTES

    def test_block_counting(self):
        builder = TraceBuilder("demo")
        block = _simple_block()
        for _ in range(5):
            builder.append_block(block)
        trace = builder.build()
        assert trace.blocks_executed == 5
        assert len(trace) == 5 * len(block)

    def test_sequence_numbers_are_dense(self):
        builder = TraceBuilder("demo")
        builder.append_block(_simple_block())
        trace = builder.build()
        assert [r.sequence for r in trace] == list(range(len(trace)))

    def test_memory_stride_comes_from_operand(self):
        block = BasicBlock("strided")
        ib = InstructionBuilder(block)
        ib.set_vector_length(16)
        ib.vector_load(v_reg(0), "m", stride=5)
        builder = TraceBuilder("demo")
        builder.append_block(block)
        trace = builder.build()
        load = [r for r in trace if r.is_load][0]
        assert load.stride_elements == 5

    def test_scalar_memory_gets_addresses_too(self):
        block = BasicBlock("scalar")
        ib = InstructionBuilder(block)
        ib.scalar_load(s_reg(0), "globals")
        ib.scalar_store(s_reg(0), "globals")
        builder = TraceBuilder("demo")
        builder.append_block(block)
        trace = builder.build()
        assert all(r.base_address is not None for r in trace if r.is_memory)

    def test_metadata_contains_regions(self):
        builder = TraceBuilder("demo")
        builder.append_block(_simple_block())
        trace = builder.build()
        assert "x" in trace.metadata["regions"]
        assert "y" in trace.metadata["regions"]
