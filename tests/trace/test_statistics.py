"""Tests for Table-1 style trace statistics."""

import pytest

from repro.isa.builder import InstructionBuilder
from repro.isa.opcodes import Opcode
from repro.isa.program import BasicBlock
from repro.isa.registers import s_reg, v_reg
from repro.trace.generator import TraceBuilder
from repro.trace.statistics import compute_statistics


def _make_trace(vl=50, iterations=4, spill=False):
    block = BasicBlock("loop")
    builder = InstructionBuilder(block)
    builder.set_vector_length(vl)
    builder.vector_load(v_reg(0), "x")
    builder.vector_load(v_reg(1), "y")
    builder.vector_op(Opcode.V_MUL, v_reg(2), [v_reg(0), v_reg(1)])
    if spill:
        builder.vector_store(v_reg(2), "spill_slot", is_spill=True)
        builder.vector_load(v_reg(3), "spill_slot", is_spill=True)
    builder.vector_store(v_reg(2), "z")
    builder.scalar_op(Opcode.S_ADD, s_reg(0), [s_reg(0)])
    builder.branch(s_reg(0))

    trace_builder = TraceBuilder("synthetic")
    for _ in range(iterations):
        trace_builder.append_block(block)
    return trace_builder.build()


class TestComputeStatistics:
    def test_instruction_counts(self):
        stats = compute_statistics(_make_trace(vl=50, iterations=4))
        # Per iteration: 1 set_vl + 1 scalar add + 1 branch = 3 scalar,
        # 2 vloads + 1 vmul + 1 vstore = 4 vector.
        assert stats.scalar_instructions == 12
        assert stats.vector_instructions == 16
        assert stats.vector_operations == 16 * 50
        assert stats.basic_blocks == 4
        assert stats.total_instructions == 28

    def test_vectorization_percent(self):
        stats = compute_statistics(_make_trace(vl=50, iterations=4))
        expected = 100.0 * (16 * 50) / (16 * 50 + 12)
        assert stats.vectorization_percent == pytest.approx(expected)

    def test_average_vector_length(self):
        stats = compute_statistics(_make_trace(vl=50))
        assert stats.average_vector_length == pytest.approx(50.0)

    def test_memory_accounting(self):
        stats = compute_statistics(_make_trace(vl=10, iterations=2))
        assert stats.vector_memory_instructions == 6
        assert stats.scalar_memory_instructions == 0
        assert stats.memory_bytes == 6 * 10 * 8
        assert stats.spill_fraction == 0.0

    def test_spill_fraction(self):
        stats = compute_statistics(_make_trace(vl=10, iterations=2, spill=True))
        # Per iteration: 3 normal vector memory + 2 spill accesses.
        assert stats.spill_memory_instructions == 4
        assert stats.spill_fraction == pytest.approx(4 / 10)

    def test_empty_trace(self):
        trace_builder = TraceBuilder("empty")
        stats = compute_statistics(trace_builder.build())
        assert stats.vectorization_percent == 0.0
        assert stats.average_vector_length == 0.0
        assert stats.spill_fraction == 0.0
        assert stats.total_operations == 0

    def test_table_row_shape(self):
        row = compute_statistics(_make_trace()).as_table_row()
        assert set(row) == {
            "program",
            "basic_blocks",
            "scalar_instructions",
            "vector_instructions",
            "vector_operations",
            "vectorization_percent",
            "average_vector_length",
        }

    def test_vector_length_histogram(self):
        stats = compute_statistics(_make_trace(vl=32, iterations=3))
        assert stats.vector_length_histogram.count(32) == 12
