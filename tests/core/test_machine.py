"""Unit tests for the declarative MachineSpec API."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.core import MachineSpec, Runner, SweepSpec, architecture, machine_spec
from repro.core.machine import (
    PRESETS,
    canonical_axis_name,
    field_infos,
    lookup_field,
    parse_axis_values,
)
from repro.dva.config import DecoupledConfig
from repro.refarch.config import ReferenceConfig


class TestStringRoundTrip:
    def test_issue_example_parses(self):
        spec = MachineSpec.from_string("dva@lanes=2,ports=2,bypass=off")
        assert spec.family == "dva"
        assert spec.lanes == 2
        assert spec.memory_ports == 2
        assert spec.bypass is False

    def test_to_string_is_canonical(self):
        spec = MachineSpec.from_string("dva@bypass=off,ports=2,lanes=2")
        assert spec.to_string() == "dva@lanes=2,ports=2,bypass=off"

    @pytest.mark.parametrize(
        "text",
        [
            "ref",
            "dva",
            "dva@bypass=off",
            "ref@lanes=2",
            "dva@ports=2",
            "dva@lanes=4,ports=2,avdq=4,vadq=4",
            "ref@chaining=on,cache_line=64,cache_lines=256",
        ],
    )
    def test_from_string_to_string_identity(self, text):
        spec = MachineSpec.from_string(text)
        assert MachineSpec.from_string(spec.to_string()) == spec

    def test_preset_base_with_overrides(self):
        assert (
            MachineSpec.from_string("dva-2port@lanes=2")
            == MachineSpec.from_string("dva@lanes=2,ports=2")
        )

    def test_family_names_are_presets(self):
        assert MachineSpec.from_string("ref") == PRESETS["ref"].spec
        assert MachineSpec.from_string("dva-nobypass") == PRESETS["dva-nobypass"].spec

    def test_aliases_accepted(self):
        spec = MachineSpec.from_string("dva@memory_ports=2,vector_load_data=8")
        assert spec.memory_ports == 2
        assert spec.vector_load_data == 8

    def test_bool_words(self):
        for word, expected in [("on", True), ("true", True), ("yes", True),
                               ("1", True), ("off", False), ("false", False),
                               ("no", False), ("0", False)]:
            assert MachineSpec.from_string(f"dva@bypass={word}").bypass is expected


class TestStringErrors:
    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError, match="unknown machine preset"):
            MachineSpec.from_string("vliw@lanes=2")

    def test_unknown_field(self):
        with pytest.raises(ConfigurationError, match="unknown machine field"):
            MachineSpec.from_string("dva@warp=9")

    def test_malformed_assignment(self):
        with pytest.raises(ConfigurationError, match="malformed assignment"):
            MachineSpec.from_string("dva@lanes")

    def test_empty_assignments(self):
        with pytest.raises(ConfigurationError, match="no assignments"):
            MachineSpec.from_string("dva@")

    def test_duplicate_assignment(self):
        with pytest.raises(ConfigurationError, match="assigned twice"):
            MachineSpec.from_string("dva@lanes=2,lanes=4")

    def test_non_integer_value(self):
        with pytest.raises(ConfigurationError, match="takes an integer"):
            MachineSpec.from_string("dva@lanes=wide")

    def test_non_bool_value(self):
        with pytest.raises(ConfigurationError, match="takes on/off"):
            MachineSpec.from_string("dva@bypass=maybe")

    def test_out_of_range_value(self):
        with pytest.raises(ConfigurationError, match="must be in 1..64"):
            MachineSpec.from_string("dva@lanes=0")

    def test_power_of_two_enforced(self):
        with pytest.raises(ConfigurationError, match="power of two"):
            MachineSpec.from_string("ref@cache_line=48")

    def test_field_wrong_family(self):
        with pytest.raises(ConfigurationError, match="not valid for family"):
            MachineSpec.from_string("ref@bypass=off")
        with pytest.raises(ConfigurationError, match="not valid for family"):
            MachineSpec.from_string("dva@chaining=on")

    def test_unknown_family_constructor(self):
        with pytest.raises(ConfigurationError, match="unknown machine family"):
            MachineSpec(family="vliw")


class TestJsonTomlRoundTrip:
    @pytest.mark.parametrize(
        "text", ["ref", "dva@lanes=2,ports=2,bypass=off", "dva@avdq=4,vadq=4"]
    )
    def test_json_round_trip(self, text):
        spec = MachineSpec.from_string(text)
        rebuilt = MachineSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert rebuilt == spec

    @pytest.mark.parametrize(
        "text", ["ref", "dva@lanes=2,ports=2,bypass=off", "ref@chaining=on"]
    )
    def test_toml_round_trip(self, text):
        spec = MachineSpec.from_string(text)
        assert MachineSpec.from_toml(spec.to_toml()) == spec

    def test_json_missing_family_rejected(self):
        with pytest.raises(ConfigurationError, match="family"):
            MachineSpec.from_json({"lanes": 2})

    def test_json_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown machine field"):
            MachineSpec.from_json({"family": "dva", "warp": 9})

    def test_json_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineSpec.from_json({"family": "dva", "lanes": 1000})


class TestApply:
    def test_apply_reference_pins_only_pinned_fields(self):
        base = ReferenceConfig(functional_unit_startup=7, allow_load_chaining=True)
        applied = MachineSpec.from_string("ref@lanes=2").apply_reference(base)
        assert applied.lanes == 2
        assert applied.functional_unit_startup == 7  # inherited
        assert applied.allow_load_chaining is True  # inherited (not pinned)

    def test_apply_decoupled_queues_and_cache(self):
        spec = MachineSpec.from_string("dva@avdq=4,vadq=8,cache_lines=64")
        applied = spec.apply_decoupled(DecoupledConfig())
        assert applied.queues.vector_load_data == 4
        assert applied.queues.vector_store_data == 8
        assert applied.queues.instruction_queue == 16  # inherited
        assert applied.scalar_cache.lines == 64
        assert applied.enable_bypass is True  # dva preset pins the bypass

    def test_apply_wrong_family_rejected(self):
        with pytest.raises(ConfigurationError, match="family"):
            MachineSpec.from_string("ref").apply_decoupled(DecoupledConfig())
        with pytest.raises(ConfigurationError, match="family"):
            MachineSpec.from_string("dva").apply_reference(ReferenceConfig())


class TestFieldSchema:
    def test_every_field_has_range_text(self):
        for info in field_infos():
            assert info.range_text
            assert info.description

    def test_lookup_by_key_attribute_and_alias(self):
        assert lookup_field("ports") is lookup_field("memory_ports")
        assert lookup_field("avdq") is lookup_field("vector_load_data")
        assert lookup_field("LANES").attribute == "lanes"

    def test_axis_name_canonicalization(self):
        assert canonical_axis_name("latency") == "latency"
        assert canonical_axis_name("memory_ports") == "ports"
        with pytest.raises(ConfigurationError, match="unknown machine field"):
            canonical_axis_name("family")

    def test_axis_values_parse_and_validate(self):
        assert parse_axis_values("lanes", ("1", "2")) == (1, 2)
        assert parse_axis_values("bypass", ("on", "off")) == (True, False)
        with pytest.raises(ConfigurationError, match="repeats a value"):
            parse_axis_values("lanes", (1, 1))
        with pytest.raises(ConfigurationError, match="at least one value"):
            parse_axis_values("lanes", ())
        with pytest.raises(ConfigurationError, match="negative"):
            parse_axis_values("latency", (-1,))


class TestRegistryResolution:
    def test_presets_are_spec_backed(self):
        for name in PRESETS:
            assert machine_spec(name) == PRESETS[name].spec

    def test_inline_spec_resolves_without_registration(self):
        simulator = architecture("dva@lanes=2")
        assert simulator.name == "dva@lanes=2"
        assert simulator.spec.lanes == 2

    def test_inline_spec_errors_propagate(self):
        with pytest.raises(ConfigurationError, match="unknown machine field"):
            architecture("dva@warp=9")

    def test_inline_spec_over_runtime_registered_base(self):
        """An @-clause composes with any registered spec-backed name."""
        from repro.core import register_architecture, unregister_architecture

        register_architecture(
            MachineSpec.from_string("dva@avdq=4"), name="dva-tiny"
        )
        try:
            extended = architecture("dva-tiny@lanes=2")
            assert extended.spec.vector_load_data == 4
            assert extended.spec.lanes == 2
            assert extended.name == "dva@lanes=2,avdq=4"
        finally:
            unregister_architecture("dva-tiny")

    def test_inline_spec_over_non_spec_base_rejected(self):
        from dataclasses import dataclass

        from repro.core import RunResult, register_architecture, unregister_architecture

        @dataclass(frozen=True)
        class Opaque:
            name: str = "opaque"
            description: str = "no spec behind this"

            def simulate(self, trace, config):
                return RunResult(
                    architecture=self.name, program=trace.name,
                    latency=config.latency, total_cycles=1, instructions=0,
                )

        register_architecture(Opaque())
        try:
            with pytest.raises(ConfigurationError, match="not spec-backed"):
                architecture("opaque@lanes=2")
        finally:
            unregister_architecture("opaque")

    def test_unknown_name_still_lists_known(self):
        with pytest.raises(ConfigurationError, match="unknown architecture"):
            architecture("vliw")


class TestWorkerPickling:
    def test_inline_specs_run_in_pool_workers(self):
        """Inline machine specs must pickle into multiprocessing workers."""
        spec = SweepSpec(
            programs=("trfd",),
            latencies=(1, 50),
            architectures=("ref", "dva@lanes=2,ports=2,bypass=off"),
            scale=0.2,
        )
        serial = Runner(jobs=1).run(spec)
        with Runner(jobs=2, adaptive=False) as runner:
            parallel = runner.run(spec)
        assert serial.results == parallel.results
        labels = {r.architecture for r in parallel}
        assert "dva@lanes=2,ports=2,bypass=off" in labels

    def test_spec_provenance_travels_with_results(self):
        spec = SweepSpec(
            programs=("trfd",),
            latencies=(1,),
            architectures=("dva@lanes=2",),
            scale=0.2,
        )
        result = Runner(jobs=1).run(spec).results[0]
        assert result.spec == {
            "family": "dva",
            "lanes": 2,
            "memory_ports": 1,
            "bypass": True,
        }
