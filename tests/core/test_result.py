"""Unit tests for the unified RunResult and the aligned result summaries."""

import json

import pytest

from repro.common.errors import SimulationError
from repro.core import RunResult, simulate
from repro.dva.simulator import simulate_decoupled
from repro.refarch.simulator import simulate_reference
from repro.workloads.perfect_club import build_trace

#: The key set both architectures' summaries must share.
CORE_KEYS = {
    "program",
    "latency",
    "total_cycles",
    "instructions",
    "memory_traffic_bytes",
    "scalar_cache_hits",
    "scalar_cache_misses",
}


@pytest.fixture(scope="module")
def trace():
    return build_trace("TRFD", scale=0.2)


class TestSummaryAlignment:
    def test_core_keys_present_in_both_summaries(self, trace):
        ref = simulate_reference(trace, latency=10).summary()
        dva = simulate_decoupled(trace, latency=10).summary()
        assert CORE_KEYS <= set(ref)
        assert CORE_KEYS <= set(dva)

    def test_core_keys_agree_between_wrappers_and_results(self, trace):
        direct = simulate_reference(trace, latency=10)
        unified = simulate(trace, "ref", latency=10)
        for key in CORE_KEYS:
            assert unified.detail[key] == direct.summary()[key]

    def test_result_to_json_round_trips_through_json(self, trace):
        for payload in (
            simulate_reference(trace, latency=10).to_json(),
            simulate_decoupled(trace, latency=10).to_json(),
        ):
            assert json.loads(json.dumps(payload)) == payload


class TestRunResult:
    def test_json_round_trip(self, trace):
        for arch in ("ref", "dva"):
            result = simulate(trace, arch, latency=50)
            rebuilt = RunResult.from_json(json.loads(json.dumps(result.to_json())))
            assert rebuilt == result

    def test_summary_carries_architecture(self, trace):
        summary = simulate(trace, "dva", latency=1).summary()
        assert summary["architecture"] == "dva"
        assert summary["program"] == "TRFD"

    def test_speedup_over(self, trace):
        ref = simulate(trace, "ref", latency=100)
        dva = simulate(trace, "dva", latency=100)
        assert dva.speedup_over(ref) == pytest.approx(
            ref.total_cycles / dva.total_cycles
        )

    def test_speedup_rejects_mismatched_cells(self, trace):
        fast = simulate(trace, "ref", latency=1)
        slow = simulate(trace, "dva", latency=100)
        with pytest.raises(SimulationError, match="same cell"):
            slow.speedup_over(fast)
