"""Unit tests for the Simulator protocol and the architecture registry."""

from dataclasses import dataclass

import pytest

from repro.common.errors import ConfigurationError
from repro.core import (
    RunConfig,
    RunResult,
    Simulator,
    architecture,
    architecture_names,
    register_architecture,
    simulate,
    unregister_architecture,
)
from repro.dva.simulator import simulate_decoupled
from repro.refarch.simulator import simulate_reference
from repro.workloads.perfect_club import build_trace


@pytest.fixture(scope="module")
def trace():
    return build_trace("DYFESM", scale=0.2)


class TestLookup:
    def test_builtins_are_registered(self):
        assert architecture_names()[:3] == ["ref", "dva", "dva-nobypass"]

    def test_lookup_is_case_insensitive(self):
        assert architecture("REF") is architecture("ref")

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown architecture"):
            architecture("vliw")

    def test_error_lists_known_names(self):
        with pytest.raises(ConfigurationError, match="dva-nobypass"):
            architecture("vliw")

    def test_builtins_satisfy_protocol(self):
        for name in architecture_names():
            assert isinstance(architecture(name), Simulator)


@dataclass(frozen=True)
class _ConstantArchitecture:
    """A trivial Simulator used to exercise registration."""

    name: str = "const"
    description: str = "always takes 42 cycles"

    def simulate(self, trace, config):
        return RunResult(
            architecture=self.name,
            program=trace.name,
            latency=config.latency,
            total_cycles=42,
            instructions=len(trace.records),
        )


class TestRegistration:
    def test_register_and_use_extension(self, trace):
        register_architecture(_ConstantArchitecture())
        try:
            result = simulate(trace, "const", latency=7)
            assert result.total_cycles == 42
            assert result.latency == 7
            assert "const" in architecture_names()
        finally:
            unregister_architecture("const")
        with pytest.raises(ConfigurationError):
            architecture("const")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_architecture(_ConstantArchitecture(name="ref"))

    def test_replace_allows_override(self):
        register_architecture(_ConstantArchitecture())
        try:
            replacement = _ConstantArchitecture(description="other")
            register_architecture(replacement, replace=True)
            assert architecture("const") is replacement
        finally:
            unregister_architecture("const")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            register_architecture(_ConstantArchitecture(name=""))

    def test_register_machine_spec_directly(self, trace):
        """register_architecture is a thin wrapper over spec resolution."""
        from repro.core import MachineSpec

        register_architecture(
            MachineSpec.from_string("dva@ports=2,bypass=off"),
            name="dva-wide",
            description="two ports, no bypass",
        )
        try:
            registered = architecture("dva-wide")
            assert registered.spec.memory_ports == 2
            assert registered.spec.bypass is False
            inline = simulate(trace, "dva@ports=2,bypass=off", latency=50)
            named = simulate(trace, "dva-wide", latency=50)
            assert named.total_cycles == inline.total_cycles
        finally:
            unregister_architecture("dva-wide")


class TestAdapters:
    """The adapters must reproduce the hand-wired simulator calls exactly."""

    def test_ref_matches_hand_wired_reference(self, trace):
        unified = simulate(trace, "ref", latency=50)
        direct = simulate_reference(trace, latency=50)
        assert unified.total_cycles == direct.total_cycles
        assert unified.detail == direct.to_json()

    def test_dva_matches_hand_wired_decoupled_with_bypass(self, trace):
        unified = simulate(trace, "dva", latency=50)
        direct = simulate_decoupled(
            trace, latency=50, config=RunConfig().decoupled.with_bypass(True)
        )
        assert unified.total_cycles == direct.total_cycles
        assert unified.detail == direct.to_json()

    def test_dva_nobypass_disables_bypass(self, trace):
        with_bypass = simulate(trace, "dva", latency=50)
        without = simulate(trace, "dva-nobypass", latency=50)
        assert with_bypass.detail["bypass"] is True
        assert without.detail["bypass"] is False
        assert without.detail["bypassed_loads"] == 0

    def test_config_latency_override(self, trace):
        config = RunConfig(latency=1)
        overridden = simulate(trace, "ref", latency=100, config=config)
        assert overridden.latency == 100

    def test_architecture_tag_on_results(self, trace):
        for name in ("ref", "dva", "dva-nobypass"):
            assert simulate(trace, name, latency=1).architecture == name
