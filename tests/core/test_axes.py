"""Tests for multi-axis sweeps: any MachineSpec field as a sweep dimension."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.core import Runner, SweepSpec, figures, run_sweep
from repro.core.experiment import SweepResult


@pytest.fixture(scope="module")
def multi_axis_sweep():
    """lanes × ports × latency over the dva base, run once for the module."""
    spec = SweepSpec(
        programs=("dyfesm",),
        architectures=("dva",),
        scale=0.2,
        axes={"lanes": (1, 2), "ports": (1, 2), "latency": (1, 50)},
    )
    return run_sweep(spec)


class TestSpecAxes:
    def test_latency_axis_folds_into_latencies(self):
        spec = SweepSpec(
            programs=("trfd",), architectures=("ref",),
            axes={"latency": (1, 50, 100)},
        )
        assert spec.latencies == (1, 50, 100)
        assert spec.axes == ()

    def test_latency_given_twice_rejected(self):
        with pytest.raises(ConfigurationError, match="latencies given twice"):
            SweepSpec(
                programs=("trfd",), latencies=(1,), architectures=("ref",),
                axes={"latency": (1, 50)},
            )

    def test_axis_declared_twice_rejected(self):
        with pytest.raises(ConfigurationError, match="declared twice"):
            SweepSpec(
                programs=("trfd",), latencies=(1,), architectures=("ref",),
                axes=(("lanes", (1, 2)), ("lanes", (2, 4))),
            )

    def test_axis_names_canonicalized(self):
        spec = SweepSpec(
            programs=("trfd",), latencies=(1,), architectures=("dva",),
            axes={"memory_ports": (1, 2)},
        )
        assert spec.axes == (("ports", (1, 2)),)

    def test_len_counts_axis_product(self):
        spec = SweepSpec(
            programs=("trfd", "dyfesm"), latencies=(1, 50),
            architectures=("dva",),
            axes={"lanes": (1, 2, 4), "ports": (1, 2)},
        )
        assert len(spec) == 2 * 2 * 1 * 3 * 2

    def test_cells_carry_overrides(self):
        spec = SweepSpec(
            programs=("trfd",), latencies=(1,), architectures=("dva",),
            axes={"lanes": (1, 2)},
        )
        cells = list(spec.cells())
        assert len(cells) == 2
        assert cells[0].overrides == (("lanes", 1),)
        assert cells[1].overrides == (("lanes", 2),)

    def test_from_strings_axes(self):
        spec = SweepSpec.from_strings(
            "trfd", "1,50", "dva", axes=("lanes=1,2,4", "ports=1,2")
        )
        assert spec.axes == (("lanes", (1, 2, 4)), ("ports", (1, 2)))

    def test_from_strings_malformed_axis(self):
        with pytest.raises(ConfigurationError, match="malformed sweep axis"):
            SweepSpec.from_strings("trfd", "1", "dva", axes=("lanes",))

    def test_from_strings_inline_spec_architectures(self):
        spec = SweepSpec.from_strings(
            "trfd", "1", "ref,dva@lanes=2,ports=2,dva-nobypass"
        )
        assert spec.architectures == (
            "ref", "dva@lanes=2,ports=2", "dva-nobypass"
        )

    def test_from_strings_two_adjacent_inline_specs(self):
        spec = SweepSpec.from_strings("trfd", "1", "dva@bypass=off,ref@lanes=2")
        assert spec.architectures == ("dva@bypass=off", "ref@lanes=2")

    def test_axis_overriding_inline_base_pin_rebuilds_label(self):
        """An axis crossing a field the inline base pins must replace the
        assignment in the label, never emit the key twice."""
        spec = SweepSpec(
            programs=("trfd",), latencies=(1,),
            architectures=("dva@lanes=2,bypass=off",),
            axes={"lanes": (1, 2)},
            scale=0.2,
        )
        sweep = run_sweep(spec)
        labels = sweep.architecture_labels()
        assert labels == ["dva@bypass=off,lanes=1", "dva@lanes=2,bypass=off"]
        # Every label re-resolves through architecture() to the same machine.
        from repro.core import architecture

        for label in labels:
            assert architecture(label).spec.to_json() == sweep.get("trfd", 1, label).spec


class TestMultiAxisExecution:
    def test_grid_shape_and_labels(self, multi_axis_sweep):
        assert len(multi_axis_sweep) == 2 * 2 * 2
        assert multi_axis_sweep.architecture_labels() == [
            "dva", "dva@ports=2", "dva@lanes=2", "dva@lanes=2,ports=2"
        ]

    def test_axis_values_change_timing(self, multi_axis_sweep):
        base = multi_axis_sweep.get("DYFESM", 1, "dva")
        wide = multi_axis_sweep.get("DYFESM", 1, "dva@lanes=2,ports=2")
        assert wide.total_cycles < base.total_cycles

    def test_every_cell_has_spec_provenance(self, multi_axis_sweep):
        for result in multi_axis_sweep:
            assert result.spec is not None
            assert result.spec["family"] == "dva"

    def test_json_round_trip_preserves_axes(self, multi_axis_sweep):
        payload = json.loads(json.dumps(multi_axis_sweep.to_json()))
        rebuilt = SweepResult.from_json(payload)
        assert rebuilt.spec == multi_axis_sweep.spec
        assert rebuilt.results == multi_axis_sweep.results

    def test_figures_accept_axis_labels(self, multi_axis_sweep):
        rows = figures.speedup_table(
            multi_axis_sweep, baseline="dva", target="dva@lanes=2,ports=2"
        )
        assert rows and all(row["speedup"] >= 1.0 for row in rows)
        occupancy = figures.queue_occupancy_rows(
            multi_axis_sweep, architecture="dva@lanes=2"
        )
        assert occupancy

    def test_serial_and_parallel_identical(self):
        spec = SweepSpec(
            programs=("trfd",), architectures=("ref", "dva"), scale=0.2,
            axes={"lanes": (1, 2), "latency": (1, 50)},
        )
        serial = Runner(jobs=1).run(spec)
        with Runner(jobs=2, adaptive=False) as runner:
            parallel = runner.run(spec)
        assert serial.results == parallel.results

    def test_axis_invalid_for_family_fails_before_running(self):
        spec = SweepSpec(
            programs=("trfd",), latencies=(1,), architectures=("ref",),
            axes={"bypass": (True, False)},
        )
        with pytest.raises(ConfigurationError, match="not valid for family"):
            Runner(jobs=1).run(spec)

    def test_duplicate_architecture_entries_fail_before_running(self):
        spec = SweepSpec(
            programs=("trfd",), latencies=(1,), architectures=("dva", "dva"),
        )
        with pytest.raises(ConfigurationError, match="resolve to machine"):
            Runner(jobs=1).run(spec)

    def test_overlapping_bases_stay_distinguishable(self):
        """Labels are base-anchored, so dva@ports=2 and dva-2port@ports=2 —
        the same machine reached from different bases — both run, each under
        its own label, instead of falsely colliding."""
        spec = SweepSpec(
            programs=("trfd",), latencies=(50,),
            architectures=("dva", "dva-2port"),
            axes={"ports": (1, 2)},
            scale=0.2,
        )
        sweep = Runner(jobs=1).run(spec)
        # Overrides matching a base's own pins are elided from its label.
        assert sweep.architecture_labels() == [
            "dva", "dva-2port@ports=1", "dva@ports=2", "dva-2port"
        ]
        # Same machine, same timing, different provenance labels.
        assert (
            sweep.get("trfd", 50, "dva@ports=2").total_cycles
            == sweep.get("trfd", 50, "dva-2port").total_cycles
        )

    def test_partially_pinned_base_keeps_its_identity(self):
        """A spec that *inherits* bypass from the RunConfig is not the 'dva'
        preset (which pins it); base-anchored labels keep them apart."""
        from repro.core import MachineSpec, register_architecture, unregister_architecture

        register_architecture(MachineSpec(family="dva"), name="dva-inherit")
        try:
            spec = SweepSpec(
                programs=("trfd",), latencies=(1,),
                architectures=("dva", "dva-inherit"),
                axes={"lanes": (1, 2)},
                scale=0.2,
            )
            sweep = Runner(jobs=1).run(spec)
            # "dva" pins lanes=1 so that override is elided; "dva-inherit"
            # pins nothing, so every override is visible in its label.
            assert sweep.architecture_labels() == [
                "dva", "dva-inherit@lanes=1",
                "dva@lanes=2", "dva-inherit@lanes=2",
            ]
        finally:
            unregister_architecture("dva-inherit")

    def test_non_spec_backed_architecture_rejects_axes(self):
        from dataclasses import dataclass

        from repro.core import RunResult, register_architecture, unregister_architecture

        @dataclass(frozen=True)
        class Opaque:
            name: str = "opaque"
            description: str = "no spec behind this"

            def simulate(self, trace, config):
                return RunResult(
                    architecture=self.name, program=trace.name,
                    latency=config.latency, total_cycles=1, instructions=0,
                )

        register_architecture(Opaque())
        try:
            spec = SweepSpec(
                programs=("trfd",), latencies=(1,), architectures=("opaque",),
                axes={"lanes": (1, 2)},
            )
            with pytest.raises(ConfigurationError, match="not spec-backed"):
                Runner(jobs=1).run(spec)
        finally:
            unregister_architecture("opaque")


class TestSweepResultIndex:
    def test_get_uses_the_index(self):
        sweep = run_sweep(
            SweepSpec(programs=("trfd",), latencies=(1,), architectures=("ref",),
                      scale=0.2)
        )
        assert sweep.get("trfd", 1, "REF") is sweep._index[("TRFD", 1, "ref")]

    def test_duplicate_cells_rejected_at_construction(self):
        sweep = run_sweep(
            SweepSpec(programs=("trfd",), latencies=(1,), architectures=("ref",),
                      scale=0.2)
        )
        with pytest.raises(ConfigurationError, match="duplicate cell"):
            SweepResult(spec=sweep.spec, results=sweep.results * 2)

    def test_missing_cell_still_raises(self):
        sweep = run_sweep(
            SweepSpec(programs=("trfd",), latencies=(1,), architectures=("ref",),
                      scale=0.2)
        )
        with pytest.raises(ConfigurationError, match="no cell"):
            sweep.get("trfd", 999, "ref")
