"""Smoke tests for the ``python -m repro`` command line."""

import json
import os
import subprocess
import sys

import pytest

from repro.core.cli import main

_SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


class TestInProcess:
    def test_list_programs(self, capsys):
        assert main(["list-programs"]) == 0
        out = capsys.readouterr().out
        for name in ("ARC2D", "FLO52", "BDNA", "TRFD", "DYFESM", "SPEC77"):
            assert name in out

    def test_run_prints_json_summary(self, capsys):
        code = main(
            ["run", "--program", "trfd", "--arch", "dva",
             "--latency", "50", "--scale", "0.2"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["architecture"] == "dva"
        assert summary["program"] == "TRFD"
        assert summary["latency"] == 50
        assert summary["total_cycles"] > 0

    def test_sweep_emits_summaries_and_speedup_table(self, capsys):
        code = main(
            ["sweep", "--programs", "dyfesm,trfd", "--latencies", "1,50",
             "--arch", "ref,dva", "--scale", "0.2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "8 cells" in out
        assert "total_cycles" in out
        assert "Figure 5" in out and "speedup" in out

    def test_sweep_output_json(self, capsys, tmp_path):
        output = tmp_path / "sweep.json"
        code = main(
            ["sweep", "--programs", "trfd", "--latencies", "1",
             "--arch", "ref", "--scale", "0.2", "--output", str(output)]
        )
        assert code == 0
        data = json.loads(output.read_text())
        assert data["spec"]["programs"] == ["TRFD"]
        assert len(data["results"]) == 1

    def test_figures_writes_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "figs"
        code = main(
            ["figures", "--programs", "trfd", "--latencies", "1,100",
             "--scale", "0.2", "--out-dir", str(out_dir)]
        )
        assert code == 0
        for artifact in (
            "figure5_speedup.csv",
            "figure5_speedup_nobypass.csv",
            "figure6_avdq_occupancy.csv",
            "section7_bypass.csv",
            "sweep.json",
        ):
            assert (out_dir / artifact).exists(), artifact

    def test_unknown_architecture_exits_with_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--program", "trfd", "--arch", "vliw"])
        assert excinfo.value.code == 2
        assert "unknown architecture" in capsys.readouterr().err

    def test_run_accepts_inline_machine_spec(self, capsys):
        code = main(
            ["run", "--program", "trfd", "--arch", "dva@lanes=2,ports=2",
             "--latency", "50", "--scale", "0.2"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["architecture"] == "dva@lanes=2,ports=2"

    def test_invalid_inline_spec_exits_with_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--program", "trfd", "--arch", "dva@lanes=0"])
        assert excinfo.value.code == 2
        assert "lanes" in capsys.readouterr().err

    def test_list_archs_default_listing(self, capsys):
        assert main(["list-archs"]) == 0
        out = capsys.readouterr().out
        assert "dva-2port" in out
        assert "dva@ports=2" in out  # canonical spec string per preset

    def test_list_archs_schema(self, capsys):
        assert main(["list-archs", "--schema"]) == 0
        out = capsys.readouterr().out
        assert "machine fields" in out
        assert "1..64" in out  # lanes range
        assert "on|off" in out  # bypass range
        assert "presets" in out
        assert "family=dva" in out
        assert "memory_ports=2*" in out  # dva-2port pins its ports

    def test_multi_axis_sweep_end_to_end(self, capsys, tmp_path):
        """CLI → Runner(jobs=2) → JSON → figures, over lanes × ports × latency."""
        output = tmp_path / "axes.json"
        code = main(
            ["sweep", "--programs", "trfd", "--latencies", "1,50",
             "--arch", "dva", "--axis", "lanes=1,2", "--axis", "ports=1,2",
             "--scale", "0.2", "--jobs", "2", "--output", str(output)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "8 cells" in out
        assert "2 lanes x 2 ports" in out
        assert "dva@lanes=2,ports=2" in out

        from repro.core import figures
        from repro.core.experiment import SweepResult

        rebuilt = SweepResult.from_json(json.loads(output.read_text()))
        assert rebuilt.spec.axes == (("lanes", (1, 2)), ("ports", (1, 2)))
        rows = figures.speedup_table(
            rebuilt, baseline="dva", target="dva@lanes=2,ports=2"
        )
        assert rows and all(row["speedup"] >= 1.0 for row in rows)

    def test_sweep_latency_axis_without_latencies_flag(self, capsys):
        code = main(
            ["sweep", "--programs", "trfd", "--arch", "ref,dva",
             "--axis", "latency=1,50", "--scale", "0.2"]
        )
        assert code == 0
        assert "4 cells" in capsys.readouterr().out

    def test_sweep_without_any_latency_errors_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--programs", "trfd", "--arch", "ref"])
        assert excinfo.value.code == 2
        assert "memory latency" in capsys.readouterr().err


class TestSubprocess:
    def test_python_dash_m_repro(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "sweep",
             "--programs", "trfd", "--latencies", "1,50",
             "--arch", "ref,dva", "--scale", "0.2", "--jobs", "2"],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "Figure 5" in completed.stdout
