"""Smoke tests for the ``python -m repro`` command line."""

import json
import os
import subprocess
import sys

import pytest

from repro.core.cli import main

_SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


class TestInProcess:
    def test_list_programs(self, capsys):
        assert main(["list-programs"]) == 0
        out = capsys.readouterr().out
        for name in ("ARC2D", "FLO52", "BDNA", "TRFD", "DYFESM", "SPEC77"):
            assert name in out

    def test_run_prints_json_summary(self, capsys):
        code = main(
            ["run", "--program", "trfd", "--arch", "dva",
             "--latency", "50", "--scale", "0.2"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["architecture"] == "dva"
        assert summary["program"] == "TRFD"
        assert summary["latency"] == 50
        assert summary["total_cycles"] > 0

    def test_sweep_emits_summaries_and_speedup_table(self, capsys):
        code = main(
            ["sweep", "--programs", "dyfesm,trfd", "--latencies", "1,50",
             "--arch", "ref,dva", "--scale", "0.2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "8 cells" in out
        assert "total_cycles" in out
        assert "Figure 5" in out and "speedup" in out

    def test_sweep_output_json(self, capsys, tmp_path):
        output = tmp_path / "sweep.json"
        code = main(
            ["sweep", "--programs", "trfd", "--latencies", "1",
             "--arch", "ref", "--scale", "0.2", "--output", str(output)]
        )
        assert code == 0
        data = json.loads(output.read_text())
        assert data["spec"]["programs"] == ["TRFD"]
        assert len(data["results"]) == 1

    def test_figures_writes_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "figs"
        code = main(
            ["figures", "--programs", "trfd", "--latencies", "1,100",
             "--scale", "0.2", "--out-dir", str(out_dir)]
        )
        assert code == 0
        for artifact in (
            "figure5_speedup.csv",
            "figure5_speedup_nobypass.csv",
            "figure6_avdq_occupancy.csv",
            "section7_bypass.csv",
            "sweep.json",
        ):
            assert (out_dir / artifact).exists(), artifact

    def test_unknown_architecture_exits_with_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--program", "trfd", "--arch", "vliw"])
        assert excinfo.value.code == 2
        assert "unknown architecture" in capsys.readouterr().err


class TestSubprocess:
    def test_python_dash_m_repro(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "sweep",
             "--programs", "trfd", "--latencies", "1,50",
             "--arch", "ref,dva", "--scale", "0.2", "--jobs", "2"],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "Figure 5" in completed.stdout
