"""Unit tests for the figure/table reproduction layer."""

import csv
import io

import pytest

from repro.common.errors import ConfigurationError
from repro.core import SweepSpec, run_sweep
from repro.core.figures import (
    bypass_traffic_table,
    format_table,
    queue_occupancy_rows,
    speedup_curves,
    speedup_table,
    write_csv,
)


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(
        SweepSpec(
            programs=("dyfesm", "trfd"),
            latencies=(1, 100),
            architectures=("ref", "dva", "dva-nobypass"),
            scale=0.2,
        )
    )


class TestSpeedup:
    def test_table_matches_cell_results(self, sweep):
        rows = speedup_table(sweep)
        assert len(rows) == 4
        for row in rows:
            ref = sweep.get(row["program"], row["latency"], "ref")
            dva = sweep.get(row["program"], row["latency"], "dva")
            assert row["ref_cycles"] == ref.total_cycles
            assert row["dva_cycles"] == dva.total_cycles
            assert row["speedup"] == pytest.approx(
                ref.total_cycles / dva.total_cycles, abs=1e-4
            )

    def test_speedup_grows_with_latency(self, sweep):
        curves = speedup_curves(sweep)
        for program, curve in curves.items():
            assert curve[100] > curve[1], program

    def test_missing_architecture_rejected(self, sweep):
        with pytest.raises(ConfigurationError, match="does not include"):
            speedup_table(sweep, target="vmips")


class TestQueueOccupancy:
    def test_histogram_rows_partition_total_cycles(self, sweep):
        rows = queue_occupancy_rows(sweep)
        for program in sweep.spec.programs:
            for latency in sweep.spec.latencies:
                cell_rows = [
                    r for r in rows if r["program"] == program and r["latency"] == latency
                ]
                total = sweep.get(program, latency, "dva").total_cycles
                assert sum(r["cycles"] for r in cell_rows) == total

    def test_reference_architecture_rejected(self, sweep):
        with pytest.raises(ConfigurationError, match="Figure 6"):
            queue_occupancy_rows(sweep, architecture="ref")


class TestBypassTable:
    def test_rows_report_bypass_savings(self, sweep):
        rows = bypass_traffic_table(sweep)
        assert len(rows) == 4
        for row in rows:
            assert 0.0 <= row["bypass_load_fraction"] <= 1.0
            dva = sweep.get(row["program"], row["latency"], "dva")
            assert row["bypassed_loads"] == dva.detail["bypassed_loads"]
            assert row["dva_traffic_bytes"] == dva.memory_traffic_bytes

    def test_bypass_reduces_traffic_versus_nobypass(self, sweep):
        for program in sweep.spec.programs:
            bypass = sweep.get(program, 1, "dva")
            nobypass = sweep.get(program, 1, "dva-nobypass")
            assert bypass.memory_traffic_bytes < nobypass.memory_traffic_bytes


class TestRendering:
    def test_write_csv(self, sweep):
        buffer = io.StringIO()
        write_csv(speedup_table(sweep), buffer)
        parsed = list(csv.DictReader(io.StringIO(buffer.getvalue())))
        assert len(parsed) == 4
        assert set(parsed[0]) == {
            "program", "latency", "ref_cycles", "dva_cycles", "speedup",
        }

    def test_write_csv_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            write_csv([], io.StringIO())

    def test_format_table(self, sweep):
        text = format_table(speedup_table(sweep))
        lines = text.splitlines()
        assert "speedup" in lines[0]
        assert len(lines) == 2 + 4  # header + rule + one line per row
        assert format_table([]) == "(no rows)"
