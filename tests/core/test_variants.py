"""Tests for the engine-derived architecture variants (ref-2lane, dva-2port)."""

import pytest

from repro.core import RunConfig, architecture, architecture_names, simulate
from repro.core.experiment import SweepSpec, run_sweep
from repro.core import figures
from repro.dva.config import DecoupledConfig
from repro.refarch.config import ReferenceConfig
from repro.workloads.perfect_club import build_trace


@pytest.fixture(scope="module")
def trace():
    return build_trace("DYFESM", scale=0.2)


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(
        SweepSpec(
            programs=("dyfesm",),
            latencies=(1, 50),
            architectures=("ref", "ref-2lane", "dva", "dva-2port"),
            scale=0.2,
        )
    )


class TestRegistration:
    def test_variants_are_registered(self):
        names = architecture_names()
        assert "ref-2lane" in names
        assert "dva-2port" in names

    def test_variant_parameters(self):
        assert architecture("ref-2lane").lanes == 2
        assert architecture("dva-2port").memory_ports == 2

    def test_variants_pin_their_datapath(self, trace):
        """Like bypass on "dva", the registry name wins over the RunConfig."""
        wide_config = RunConfig(
            latency=50,
            reference=ReferenceConfig(lanes=8),
            decoupled=DecoupledConfig(memory_ports=8),
        )
        pinned_ref = architecture("ref").simulate(trace, wide_config)
        plain_ref = simulate(trace, "ref", latency=50)
        assert pinned_ref.total_cycles == plain_ref.total_cycles

        pinned_dva = architecture("dva").simulate(trace, wide_config)
        plain_dva = simulate(trace, "dva", latency=50)
        assert pinned_dva.total_cycles == plain_dva.total_cycles


class TestTiming:
    def test_two_lanes_never_slower(self, sweep):
        for latency in sweep.spec.latencies:
            base = sweep.get("DYFESM", latency, "ref")
            wide = sweep.get("DYFESM", latency, "ref-2lane")
            assert wide.total_cycles <= base.total_cycles

    def test_two_lanes_speed_up_compute_bound_run(self, sweep):
        """DYFESM at latency 1 is compute bound; halving lane time must show."""
        base = sweep.get("DYFESM", 1, "ref")
        wide = sweep.get("DYFESM", 1, "ref-2lane")
        assert wide.total_cycles < base.total_cycles

    def test_two_ports_never_slower(self, sweep):
        for latency in sweep.spec.latencies:
            base = sweep.get("DYFESM", latency, "dva")
            wide = sweep.get("DYFESM", latency, "dva-2port")
            assert wide.total_cycles <= base.total_cycles

    def test_total_cycles_cover_all_port_activity(self, trace):
        """A machine may not report finishing while a port is still driving.

        On a multi-port machine the wind-down must wait for the slowest port
        unit, not the first free one — regression test for the dva-2port
        finish accounting.
        """
        from repro.dva.config import DecoupledConfig
        from repro.dva.simulator import simulate_decoupled
        from repro.refarch.simulator import simulate_reference

        for ports in (1, 2):
            dva = simulate_decoupled(
                trace, latency=50, config=DecoupledConfig(memory_ports=ports)
            )
            assert dva.port_busy.last_end() <= dva.total_cycles
            ref = simulate_reference(
                trace, latency=50, config=ReferenceConfig(memory_ports=ports)
            )
            assert ref.port_busy.last_end() <= ref.total_cycles

    def test_single_lane_single_port_variant_matches_baseline(self, trace):
        """A variant pinned to the paper's widths is the paper's machine.

        The adapter classes are deprecated shims over MachineSpec now, so
        constructing them must warn — and still time identically.
        """
        from repro.core.registry import (
            DecoupledArchitecture,
            ReferenceArchitecture,
        )

        with pytest.warns(DeprecationWarning, match="MachineSpec"):
            narrow_ref = ReferenceArchitecture(name="x", lanes=1, memory_ports=1)
        config = RunConfig(latency=50)
        assert (
            narrow_ref.simulate(trace, config).total_cycles
            == simulate(trace, "ref", latency=50).total_cycles
        )
        with pytest.warns(DeprecationWarning, match="MachineSpec"):
            narrow_dva = DecoupledArchitecture(name="x", lanes=1, memory_ports=1)
        assert (
            narrow_dva.simulate(trace, config).total_cycles
            == simulate(trace, "dva", latency=50).total_cycles
        )


class TestFiguresIntegration:
    """The figures layer must accept the variants without special-casing."""

    def test_speedup_table_against_variant_target(self, sweep):
        rows = figures.speedup_table(sweep, target="ref-2lane")
        assert rows and all(row["speedup"] >= 1.0 for row in rows)

    def test_speedup_table_variant_baseline(self, sweep):
        rows = figures.speedup_table(sweep, baseline="dva", target="dva-2port")
        assert rows and all(row["speedup"] >= 1.0 for row in rows)

    def test_queue_occupancy_rows_for_two_port_dva(self, sweep):
        rows = figures.queue_occupancy_rows(sweep, architecture="dva-2port")
        assert rows
        assert {row["program"] for row in rows} == {"DYFESM"}

    def test_variant_results_summarize(self, sweep):
        for result in sweep:
            summary = result.summary()
            assert summary["architecture"] == result.architecture
            assert summary["total_cycles"] == result.total_cycles
