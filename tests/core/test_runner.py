"""Unit tests for SweepSpec, the Runner and sweep determinism."""

import json

import pytest

from repro.common.errors import ConfigurationError, WorkloadError
from repro.core import Experiment, RunConfig, Runner, SweepSpec, run_sweep
from repro.core.experiment import SweepCell, SweepResult
from repro.refarch.config import ReferenceConfig

SPEC = SweepSpec(
    programs=("dyfesm", "trfd"),
    latencies=(1, 50),
    architectures=("ref", "dva"),
    scale=0.2,
)


class TestSweepSpec:
    def test_normalization(self):
        assert SPEC.programs == ("DYFESM", "TRFD")
        assert SPEC.architectures == ("ref", "dva")

    def test_cells_in_program_major_order(self):
        cells = list(SPEC.cells())
        assert len(cells) == len(SPEC) == 8
        assert cells[0] == SweepCell("DYFESM", 1, "ref")
        assert cells[-1] == SweepCell("TRFD", 50, "dva")

    def test_from_strings(self):
        parsed = SweepSpec.from_strings("dyfesm, trfd", "1, 50", "ref,dva", scale=0.2)
        assert parsed == SPEC

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"programs": ()},
            {"latencies": ()},
            {"architectures": ()},
            {"latencies": (-1,)},
            {"scale": 0.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        base = {
            "programs": ("trfd",),
            "latencies": (1,),
            "architectures": ("ref",),
            "scale": 1.0,
        }
        with pytest.raises(ConfigurationError):
            SweepSpec(**{**base, **kwargs})


class TestRunner:
    def test_unknown_architecture_fails_before_running(self):
        spec = SweepSpec(programs=("trfd",), latencies=(1,), architectures=("vliw",))
        with pytest.raises(ConfigurationError, match="unknown architecture"):
            Runner().run(spec)

    def test_unknown_program_fails_before_running(self):
        spec = SweepSpec(programs=("nosuch",), latencies=(1,))
        with pytest.raises(WorkloadError, match="unknown benchmark"):
            Runner().run(spec)

    def test_results_follow_cell_order(self):
        sweep = run_sweep(SPEC)
        assert [r.cell_key for r in sweep] == [
            (c.program, c.latency, c.architecture) for c in SPEC.cells()
        ]

    def test_trace_cache_builds_each_program_once(self):
        runner = Runner()
        runner.run(SPEC)
        assert len(runner.trace_cache) == 2
        runner.run(SPEC)  # second run reuses the cached traces
        assert len(runner.trace_cache) == 2

    def test_sweep_determinism(self):
        first = run_sweep(SPEC)
        second = run_sweep(SPEC)
        assert first.results == second.results
        assert first.summaries() == second.summaries()

    def test_serial_and_multiprocess_runs_are_identical(self):
        serial = Runner(jobs=1).run(SPEC)
        # adaptive=False forces the pool even on single-CPU machines, so the
        # multiprocessing path is exercised regardless of where the tests run.
        with Runner(jobs=2, adaptive=False) as parallel_runner:
            parallel = parallel_runner.run(SPEC)
        assert serial.results == parallel.results

    def test_pool_persists_across_runs(self):
        with Runner(jobs=2, adaptive=False) as runner:
            first = runner.run(SPEC)
            pool = runner._pool
            second = runner.run(SPEC)
            assert runner._pool is pool
            assert first.results == second.results
        assert runner._pool is None

    def test_single_program_grid_parallelizes_by_cell_chunks(self):
        spec = SweepSpec(
            programs=("dyfesm",),
            latencies=(1, 50),
            architectures=("ref", "dva"),
            scale=0.2,
        )
        serial = Runner(jobs=1).run(spec)
        with Runner(jobs=2, adaptive=False) as runner:
            parallel = runner.run(spec)
        assert serial.results == parallel.results

    def test_adaptive_runner_caps_workers_to_available_cpus(self):
        from repro.core.experiment import _available_parallelism

        runner = Runner(jobs=4096)
        assert runner.effective_jobs == min(4096, _available_parallelism())
        assert Runner(jobs=4096, adaptive=False).effective_jobs == 4096
        # Whatever the cap resolves to, results stay identical to serial.
        assert runner.run(SPEC).results == Runner(jobs=1).run(SPEC).results
        runner.close()

    def test_invalid_job_count_rejected(self):
        with pytest.raises(ConfigurationError):
            Runner(jobs=0)


class TestSweepResult:
    def test_get_and_missing_cell(self):
        sweep = run_sweep(SPEC)
        cell = sweep.get("dyfesm", 50, "DVA")
        assert cell.cell_key == ("DYFESM", 50, "dva")
        with pytest.raises(ConfigurationError, match="no cell"):
            sweep.get("dyfesm", 999, "dva")

    def test_by_architecture(self):
        sweep = run_sweep(SPEC)
        refs = sweep.by_architecture("ref")
        assert len(refs) == 4
        assert all(r.architecture == "ref" for r in refs)

    def test_json_round_trip(self):
        sweep = run_sweep(SPEC)
        rebuilt = SweepResult.from_json(json.loads(json.dumps(sweep.to_json())))
        assert rebuilt.spec == sweep.spec
        assert rebuilt.results == sweep.results


class TestExperiment:
    def test_base_config_applies_to_every_cell(self):
        spec = SweepSpec(programs=("dyfesm",), latencies=(50,), architectures=("ref",))
        default = Experiment(spec).run()
        chained = Experiment(
            spec, config=RunConfig(reference=ReferenceConfig(allow_load_chaining=True))
        ).run()
        assert (
            chained.get("dyfesm", 50, "ref").total_cycles
            < default.get("dyfesm", 50, "ref").total_cycles
        )

    def test_experiment_accepts_shared_runner(self):
        runner = Runner()
        first = Experiment(SPEC).run(runner=runner)
        second = Experiment(SPEC).run(runner=runner)
        assert first.results == second.results
        assert len(runner.trace_cache) == 2
