"""A Convex C34-style vector instruction set model.

The paper evaluates its decoupled architecture on binaries produced by the
Convex Fortran compiler for the C3400, a single-memory-port register-based
vector machine.  This package models the *architectural* features of that
instruction set that the simulators care about:

* scalar address (``A``) and scalar data (``S``) registers,
* eight vector (``V``) registers of 128 × 64-bit elements,
* a vector length register and a vector stride register,
* vector arithmetic split between a restricted unit (FU1 — everything except
  multiply, divide and square root) and a general unit (FU2),
* vector memory instructions (unit-stride, strided, gather/scatter) that use
  the single memory port.

Numeric values are never computed: like the Dixie traces the paper uses, an
instruction only carries the information that affects *timing* — its opcode
class, register operands, vector length, stride and base address.
"""

from repro.isa.instruction import Instruction, MemoryOperand
from repro.isa.opcodes import ExecutionUnit, Opcode, OpcodeClass
from repro.isa.program import BasicBlock, Program
from repro.isa.registers import (
    Register,
    RegisterClass,
    RegisterFile,
    VECTOR_REGISTER_COUNT,
    VECTOR_REGISTER_LENGTH,
    a_reg,
    s_reg,
    v_reg,
)
from repro.isa.builder import InstructionBuilder

__all__ = [
    "BasicBlock",
    "ExecutionUnit",
    "Instruction",
    "InstructionBuilder",
    "MemoryOperand",
    "Opcode",
    "OpcodeClass",
    "Program",
    "Register",
    "RegisterClass",
    "RegisterFile",
    "VECTOR_REGISTER_COUNT",
    "VECTOR_REGISTER_LENGTH",
    "a_reg",
    "s_reg",
    "v_reg",
]
