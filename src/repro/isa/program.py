"""Static program representation: basic blocks and programs.

Dixie, the tracing tool the paper uses, decomposes executables into basic
blocks and records the dynamic basic-block sequence.  Our static
:class:`Program` plays the role of the decomposed executable: the trace
generator in :mod:`repro.trace` walks its blocks according to an execution
plan to produce the dynamic instruction trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List

from repro.common.errors import ConfigurationError
from repro.isa.instruction import Instruction


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions with a unique label."""

    label: str
    instructions: List[Instruction] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.label:
            raise ConfigurationError("basic block requires a non-empty label")

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def extend(self, instructions: Iterable[Instruction]) -> None:
        self.instructions.extend(instructions)

    @property
    def vector_instruction_count(self) -> int:
        return sum(1 for i in self.instructions if i.is_vector)

    @property
    def scalar_instruction_count(self) -> int:
        return sum(1 for i in self.instructions if not i.is_vector)

    @property
    def memory_instruction_count(self) -> int:
        return sum(1 for i in self.instructions if i.is_memory)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __str__(self) -> str:
        body = "\n".join(f"  {instruction}" for instruction in self.instructions)
        return f"{self.label}:\n{body}"


@dataclass
class Program:
    """A named collection of basic blocks."""

    name: str
    blocks: List[BasicBlock] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("program requires a non-empty name")
        self._index: Dict[str, BasicBlock] = {}
        for block in self.blocks:
            self._register(block)

    def _register(self, block: BasicBlock) -> None:
        if block.label in self._index:
            raise ConfigurationError(
                f"duplicate basic block label {block.label!r} in program {self.name!r}"
            )
        self._index[block.label] = block

    def add_block(self, block: BasicBlock) -> BasicBlock:
        """Add a block to the program and return it."""
        self._register(block)
        self.blocks.append(block)
        return block

    def new_block(self, label: str) -> BasicBlock:
        """Create, register and return an empty block with the given label."""
        return self.add_block(BasicBlock(label))

    def block(self, label: str) -> BasicBlock:
        """Look up a block by label."""
        try:
            return self._index[label]
        except KeyError as exc:
            raise ConfigurationError(
                f"program {self.name!r} has no basic block labelled {label!r}"
            ) from exc

    def has_block(self, label: str) -> bool:
        return label in self._index

    @property
    def block_labels(self) -> list[str]:
        return [block.label for block in self.blocks]

    @property
    def static_instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def __str__(self) -> str:
        return "\n\n".join(str(block) for block in self.blocks)
