"""Register model of the Convex-style vector machine.

The reference architecture has eight vector registers of 128 elements of
64 bits each, grouped pairwise into register banks that share ports
(paper §2.1).  The scalar side has address (``A``) and scalar data (``S``)
registers.  The simulators only track register *names* for dependence
analysis; no values are stored.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique

from repro.common.errors import ConfigurationError

#: Number of architectural vector registers (paper §2.1).
VECTOR_REGISTER_COUNT = 8

#: Maximum number of 64-bit elements held by one vector register.
VECTOR_REGISTER_LENGTH = 128

#: Number of architectural address registers.
ADDRESS_REGISTER_COUNT = 8

#: Number of architectural scalar registers.
SCALAR_REGISTER_COUNT = 8

#: Access granularity of a vector element, in bytes (64-bit elements).
ELEMENT_SIZE_BYTES = 8


@unique
class RegisterClass(Enum):
    """The architectural register files."""

    ADDRESS = "a"
    SCALAR = "s"
    VECTOR = "v"
    VECTOR_LENGTH = "vl"
    VECTOR_STRIDE = "vs"


_FILE_SIZES = {
    RegisterClass.ADDRESS: ADDRESS_REGISTER_COUNT,
    RegisterClass.SCALAR: SCALAR_REGISTER_COUNT,
    RegisterClass.VECTOR: VECTOR_REGISTER_COUNT,
    RegisterClass.VECTOR_LENGTH: 1,
    RegisterClass.VECTOR_STRIDE: 1,
}


@dataclass(frozen=True, order=True)
class Register:
    """An architectural register identified by class and index."""

    register_class: RegisterClass
    index: int

    def __post_init__(self) -> None:
        limit = _FILE_SIZES[self.register_class]
        if not 0 <= self.index < limit:
            raise ConfigurationError(
                f"register index {self.index} out of range for class "
                f"{self.register_class.value!r} (size {limit})"
            )
        # Registers key the simulators' scoreboard dictionaries, which are
        # probed once per operand of every dynamic instruction; caching the
        # (immutable) hash here keeps those probes from re-hashing the enum
        # member and index tuple millions of times per run.
        object.__setattr__(self, "_hash", hash((self.register_class, self.index)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @property
    def is_vector(self) -> bool:
        return self.register_class is RegisterClass.VECTOR

    @property
    def is_scalar(self) -> bool:
        return self.register_class in (RegisterClass.ADDRESS, RegisterClass.SCALAR)

    @property
    def bank(self) -> int:
        """Register bank index: vector registers are grouped pairwise."""
        if not self.is_vector:
            raise ConfigurationError("only vector registers belong to a bank")
        return self.index // 2

    @property
    def name(self) -> str:
        if self.register_class in (RegisterClass.VECTOR_LENGTH, RegisterClass.VECTOR_STRIDE):
            return self.register_class.value.upper()
        return f"{self.register_class.value}{self.index}"

    def __str__(self) -> str:
        return self.name


_REGISTER_CACHE: dict[tuple[RegisterClass, int], Register] = {}


def canonical_register(register_class: RegisterClass, index: int) -> Register:
    """The interned :class:`Register` for ``(register_class, index)``.

    The register files are tiny, so every register that appears in a program
    can be a single shared object.  Interning makes the scoreboard's
    dictionary probes hit on identity instead of falling back to field
    comparison — a measurable win when every traced instruction's operands
    are looked up.
    """
    key = (register_class, index)
    register = _REGISTER_CACHE.get(key)
    if register is None:
        register = Register(register_class, index)
        _REGISTER_CACHE[key] = register
    return register


def a_reg(index: int) -> Register:
    """Shorthand constructor for an address register."""
    return canonical_register(RegisterClass.ADDRESS, index)


def s_reg(index: int) -> Register:
    """Shorthand constructor for a scalar register."""
    return canonical_register(RegisterClass.SCALAR, index)


def v_reg(index: int) -> Register:
    """Shorthand constructor for a vector register."""
    return canonical_register(RegisterClass.VECTOR, index)


#: The (single) vector length register.
VL_REGISTER = canonical_register(RegisterClass.VECTOR_LENGTH, 0)

#: The (single) vector stride register.
VS_REGISTER = canonical_register(RegisterClass.VECTOR_STRIDE, 0)


class RegisterFile:
    """A named register file used by register allocators in the compiler.

    It hands out registers round-robin, which mimics the behaviour the paper
    relies on from the Convex compiler: vector registers are allocated so
    consecutive results land in different register banks, avoiding port
    conflicts on the restricted crossbar.
    """

    def __init__(self, register_class: RegisterClass, size: int | None = None) -> None:
        self.register_class = register_class
        self.size = size if size is not None else _FILE_SIZES[register_class]
        if self.size <= 0:
            raise ConfigurationError("register file size must be positive")
        if self.size > _FILE_SIZES[register_class]:
            raise ConfigurationError(
                f"register file size {self.size} exceeds architectural limit "
                f"{_FILE_SIZES[register_class]}"
            )
        self._next = 0

    def allocate(self) -> Register:
        """Return the next register in round-robin order."""
        register = Register(self.register_class, self._next)
        self._next = (self._next + 1) % self.size
        return register

    def allocate_many(self, count: int) -> list[Register]:
        """Allocate ``count`` registers (wrapping around when necessary)."""
        return [self.allocate() for _ in range(count)]

    def reset(self) -> None:
        """Restart allocation from register 0."""
        self._next = 0
