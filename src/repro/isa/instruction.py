"""Static instruction representation.

An :class:`Instruction` is a *static* entity: it lives inside a basic block of
a :class:`~repro.isa.program.Program` and names its register operands and, for
memory instructions, a symbolic memory operand.  The dynamic information a
Dixie-style trace would carry (actual vector length, stride and base address
of each executed instance) is attached later by the trace generator in
:mod:`repro.trace`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.isa import opcodes as op
from repro.isa.opcodes import ExecutionUnit, Opcode, OpcodeClass
from repro.isa.registers import Register

_instruction_ids = itertools.count()


@dataclass(frozen=True)
class MemoryOperand:
    """Symbolic description of a memory access.

    ``region`` names the logical array or stack area being accessed, which
    lets the trace generator lay regions out in the address space and lets the
    workload models mark spill traffic (stores that are reloaded shortly
    after).  ``stride`` is measured in elements; the element size in bytes is
    fixed by the ISA.
    """

    region: str
    stride: int = 1
    is_spill: bool = False
    indexed: bool = False

    def __post_init__(self) -> None:
        if not self.region:
            raise ConfigurationError("memory operand requires a region name")
        if self.stride == 0:
            raise ConfigurationError("memory stride of zero is not supported")


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Attributes:
        opcode: the operation performed.
        destinations: registers written by the instruction.
        sources: registers read by the instruction.
        memory: symbolic memory operand for loads/stores, ``None`` otherwise.
        immediate: immediate operand (used by ``SET_VL``/``SET_VS``/``S_LI``).
        label: optional human-readable annotation (loop name, spill marker).
    """

    opcode: Opcode
    destinations: tuple[Register, ...] = ()
    sources: tuple[Register, ...] = ()
    memory: Optional[MemoryOperand] = None
    immediate: Optional[int] = None
    label: str = ""
    uid: int = field(default_factory=lambda: next(_instruction_ids), compare=False)

    def __post_init__(self) -> None:
        if self.is_memory and self.memory is None:
            raise ConfigurationError(
                f"memory instruction {self.opcode.value} requires a memory operand"
            )
        if not self.is_memory and self.memory is not None:
            raise ConfigurationError(
                f"non-memory instruction {self.opcode.value} cannot carry a memory operand"
            )

    # -- classification ----------------------------------------------------

    @property
    def opcode_class(self) -> OpcodeClass:
        return op.opcode_class(self.opcode)

    @property
    def execution_unit(self) -> ExecutionUnit:
        return op.execution_unit(self.opcode)

    @property
    def is_vector(self) -> bool:
        return op.is_vector(self.opcode)

    @property
    def is_memory(self) -> bool:
        return op.is_memory(self.opcode)

    @property
    def is_load(self) -> bool:
        return op.is_load(self.opcode)

    @property
    def is_store(self) -> bool:
        return op.is_store(self.opcode)

    @property
    def is_vector_memory(self) -> bool:
        return self.opcode_class is OpcodeClass.VECTOR_MEMORY

    @property
    def is_scalar_memory(self) -> bool:
        return self.opcode_class is OpcodeClass.SCALAR_MEMORY

    @property
    def is_branch(self) -> bool:
        return op.is_branch(self.opcode)

    @property
    def is_conditional_branch(self) -> bool:
        return op.is_conditional_branch(self.opcode)

    @property
    def is_reduction(self) -> bool:
        return op.is_reduction(self.opcode)

    @property
    def is_queue_move(self) -> bool:
        return op.is_queue_move(self.opcode)

    @property
    def requires_fu2(self) -> bool:
        return op.requires_fu2(self.opcode)

    @property
    def is_spill_access(self) -> bool:
        """True when the memory operand is marked as compiler spill traffic."""
        return self.memory is not None and self.memory.is_spill

    # -- operand helpers ----------------------------------------------------

    def reads(self, register: Register) -> bool:
        """True when the instruction reads ``register``."""
        return register in self.sources

    def writes(self, register: Register) -> bool:
        """True when the instruction writes ``register``."""
        return register in self.destinations

    def vector_destinations(self) -> tuple[Register, ...]:
        return tuple(r for r in self.destinations if r.is_vector)

    def vector_sources(self) -> tuple[Register, ...]:
        return tuple(r for r in self.sources if r.is_vector)

    def scalar_destinations(self) -> tuple[Register, ...]:
        return tuple(r for r in self.destinations if r.is_scalar)

    def scalar_sources(self) -> tuple[Register, ...]:
        return tuple(r for r in self.sources if r.is_scalar)

    def with_label(self, label: str) -> "Instruction":
        """Return a copy of the instruction carrying a new label."""
        return Instruction(
            opcode=self.opcode,
            destinations=self.destinations,
            sources=self.sources,
            memory=self.memory,
            immediate=self.immediate,
            label=label,
        )

    # -- presentation --------------------------------------------------------

    def __str__(self) -> str:
        parts = [self.opcode.value]
        operands: list[str] = [str(r) for r in self.destinations]
        operands.extend(str(r) for r in self.sources)
        if self.memory is not None:
            suffix = "!spill" if self.memory.is_spill else ""
            operands.append(f"[{self.memory.region}:{self.memory.stride}{suffix}]")
        if self.immediate is not None:
            operands.append(f"#{self.immediate}")
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)


def make_instruction(
    opcode: Opcode,
    destinations: Sequence[Register] = (),
    sources: Sequence[Register] = (),
    memory: Optional[MemoryOperand] = None,
    immediate: Optional[int] = None,
    label: str = "",
) -> Instruction:
    """Convenience constructor accepting any register sequences."""
    return Instruction(
        opcode=opcode,
        destinations=tuple(destinations),
        sources=tuple(sources),
        memory=memory,
        immediate=immediate,
        label=label,
    )
