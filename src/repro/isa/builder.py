"""A small fluent builder for emitting instruction sequences.

The vectorizing compiler in :mod:`repro.workloads.compiler` uses the builder
to lower loop kernels into basic blocks without repeating operand plumbing at
every emission site.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.isa.instruction import Instruction, MemoryOperand, make_instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import BasicBlock
from repro.isa.registers import Register, VL_REGISTER, VS_REGISTER


class InstructionBuilder:
    """Accumulates instructions and appends them to a basic block."""

    def __init__(self, block: BasicBlock, label_prefix: str = "") -> None:
        self.block = block
        self.label_prefix = label_prefix

    # -- low-level emission --------------------------------------------------

    def emit(
        self,
        opcode: Opcode,
        destinations: Sequence[Register] = (),
        sources: Sequence[Register] = (),
        memory: Optional[MemoryOperand] = None,
        immediate: Optional[int] = None,
        label: str = "",
    ) -> Instruction:
        """Emit one instruction and return it."""
        instruction = make_instruction(
            opcode,
            destinations=destinations,
            sources=sources,
            memory=memory,
            immediate=immediate,
            label=self._compose_label(label),
        )
        self.block.append(instruction)
        return instruction

    def _compose_label(self, label: str) -> str:
        if label and self.label_prefix:
            return f"{self.label_prefix}.{label}"
        return label or self.label_prefix

    # -- vector control -------------------------------------------------------

    def set_vector_length(self, length: int) -> Instruction:
        """Set the vector length register to ``length`` elements."""
        return self.emit(Opcode.SET_VL, destinations=[VL_REGISTER], immediate=length)

    def set_vector_stride(self, stride: int) -> Instruction:
        """Set the vector stride register to ``stride`` elements."""
        return self.emit(Opcode.SET_VS, destinations=[VS_REGISTER], immediate=stride)

    # -- vector memory --------------------------------------------------------

    def vector_load(
        self,
        destination: Register,
        region: str,
        stride: int = 1,
        is_spill: bool = False,
        indexed: bool = False,
        base: Optional[Register] = None,
        label: str = "",
    ) -> Instruction:
        """Emit a vector load (or gather when ``indexed``).

        ``base`` optionally names the address register holding the stream's
        base pointer, creating the address dependence a real loop carries.
        """
        opcode = Opcode.V_GATHER if indexed else Opcode.V_LOAD
        memory = MemoryOperand(region=region, stride=stride, is_spill=is_spill, indexed=indexed)
        sources = [VL_REGISTER, VS_REGISTER]
        if base is not None:
            sources.insert(0, base)
        return self.emit(
            opcode,
            destinations=[destination],
            sources=sources,
            memory=memory,
            label=label,
        )

    def vector_store(
        self,
        source: Register,
        region: str,
        stride: int = 1,
        is_spill: bool = False,
        indexed: bool = False,
        base: Optional[Register] = None,
        label: str = "",
    ) -> Instruction:
        """Emit a vector store (or scatter when ``indexed``)."""
        opcode = Opcode.V_SCATTER if indexed else Opcode.V_STORE
        memory = MemoryOperand(region=region, stride=stride, is_spill=is_spill, indexed=indexed)
        sources = [source, VL_REGISTER, VS_REGISTER]
        if base is not None:
            sources.insert(1, base)
        return self.emit(
            opcode,
            sources=sources,
            memory=memory,
            label=label,
        )

    # -- vector compute -------------------------------------------------------

    def vector_op(
        self,
        opcode: Opcode,
        destination: Register,
        sources: Sequence[Register],
        label: str = "",
    ) -> Instruction:
        """Emit a register-to-register vector operation."""
        return self.emit(
            opcode,
            destinations=[destination],
            sources=list(sources) + [VL_REGISTER],
            label=label,
        )

    def vector_reduce(
        self,
        opcode: Opcode,
        destination: Register,
        source: Register,
        label: str = "",
    ) -> Instruction:
        """Emit a reduction producing a scalar register from a vector register."""
        return self.emit(
            opcode,
            destinations=[destination],
            sources=[source, VL_REGISTER],
            label=label,
        )

    def splat(self, destination: Register, source: Register, label: str = "") -> Instruction:
        """Broadcast a scalar register into a vector register."""
        return self.emit(
            Opcode.V_SPLAT,
            destinations=[destination],
            sources=[source, VL_REGISTER],
            label=label,
        )

    # -- scalar ---------------------------------------------------------------

    def scalar_op(
        self,
        opcode: Opcode,
        destination: Optional[Register],
        sources: Sequence[Register] = (),
        immediate: Optional[int] = None,
        label: str = "",
    ) -> Instruction:
        """Emit a scalar computation instruction."""
        destinations = [destination] if destination is not None else []
        return self.emit(
            opcode,
            destinations=destinations,
            sources=sources,
            immediate=immediate,
            label=label,
        )

    def scalar_load(
        self,
        destination: Register,
        region: str,
        is_spill: bool = False,
        label: str = "",
    ) -> Instruction:
        """Emit a scalar load."""
        return self.emit(
            Opcode.S_LOAD,
            destinations=[destination],
            memory=MemoryOperand(region=region, stride=1, is_spill=is_spill),
            label=label,
        )

    def scalar_store(
        self,
        source: Register,
        region: str,
        is_spill: bool = False,
        label: str = "",
    ) -> Instruction:
        """Emit a scalar store."""
        return self.emit(
            Opcode.S_STORE,
            sources=[source],
            memory=MemoryOperand(region=region, stride=1, is_spill=is_spill),
            label=label,
        )

    # -- control --------------------------------------------------------------

    def branch(self, condition: Register, label: str = "") -> Instruction:
        """Emit a conditional branch reading ``condition``."""
        return self.emit(Opcode.BRANCH, sources=[condition], label=label)

    def jump(self, label: str = "") -> Instruction:
        """Emit an unconditional jump."""
        return self.emit(Opcode.JUMP, label=label)
