"""A small vectorizing compiler for loop kernels.

The compiler lowers a :class:`~repro.workloads.kernel.LoopKernel` to the
Convex-style ISA the way the paper's Fortran compiler lowers a vectorizable
loop: the loop is strip-mined to the 128-element vector registers, every strip
iteration sets the vector length, performs its scalar address arithmetic,
streams its operands in with vector loads, computes, spills and reloads
intermediate values when asked to, stores its results and executes the scalar
loop control.

The output has two halves:

* a static :class:`~repro.isa.program.Program` fragment — one basic block per
  distinct strip length — exactly as Dixie would see basic blocks in the
  executable, and
* an emission routine that replays those blocks into a
  :class:`~repro.trace.generator.TraceBuilder`, advancing the memory streams
  so every executed instance carries a concrete base address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import WorkloadError
from repro.isa.builder import InstructionBuilder
from repro.isa.opcodes import Opcode
from repro.isa.program import BasicBlock, Program
from repro.isa.registers import (
    ADDRESS_REGISTER_COUNT,
    Register,
    SCALAR_REGISTER_COUNT,
    VECTOR_REGISTER_COUNT,
    a_reg,
    s_reg,
    v_reg,
)
from repro.trace.generator import TraceBuilder
from repro.workloads.kernel import LoopKernel

#: Scalar register reserved for reduction accumulators (kept live across strips).
_ACCUMULATOR = s_reg(7)

#: Address register reserved for the loop induction variable.
_INDUCTION = a_reg(7)

#: Address register reserved for the loop-bound comparison result.
_LOOP_CONDITION = a_reg(6)


@dataclass
class CompiledKernel:
    """The result of compiling one loop kernel."""

    kernel: LoopKernel
    blocks: Dict[int, BasicBlock] = field(default_factory=dict)
    stream_bases: Dict[str, Register] = field(default_factory=dict)

    def block_for_length(self, vector_length: int) -> BasicBlock:
        """The basic block that executes one strip of ``vector_length`` elements."""
        try:
            return self.blocks[vector_length]
        except KeyError as exc:
            raise WorkloadError(
                f"kernel {self.kernel.name!r} was not compiled for strip length "
                f"{vector_length}"
            ) from exc

    @property
    def strip_lengths(self) -> List[int]:
        return self.kernel.strip_lengths

    def emit_invocation(self, builder: TraceBuilder) -> None:
        """Replay one full invocation of the kernel into a trace builder."""
        elements_done = 0
        for strip_length in self.strip_lengths:
            offsets = self._stream_offsets(elements_done)
            builder.append_block(self.block_for_length(strip_length), offsets)
            elements_done += strip_length

    def emit_program(self, builder: TraceBuilder, invocations: Optional[int] = None) -> None:
        """Replay ``invocations`` invocations (default: the kernel's own count)."""
        count = invocations if invocations is not None else self.kernel.invocations
        for _ in range(count):
            self.emit_invocation(builder)

    def _stream_offsets(self, elements_done: int) -> Dict[str, int]:
        """Element offsets for every data stream at a given strip position.

        Data streams advance through their arrays as the loop progresses
        (scaled by their stride); spill slots always reuse the same stack
        location, which is what makes them bypassable store/reload pairs.
        """
        offsets: Dict[str, int] = {}
        for stream in tuple(self.kernel.loads) + tuple(self.kernel.stores):
            offsets[self._region(stream.region)] = elements_done * abs(stream.stride)
        return offsets

    def _region(self, stream_region: str) -> str:
        return f"{self.kernel.name}.{stream_region}"


class VectorizingCompiler:
    """Lowers loop kernels into Convex-style vector code."""

    def __init__(self, program_name: str = "kernel") -> None:
        self.program_name = program_name
        self._program = Program(name=program_name)

    @property
    def program(self) -> Program:
        """The static program accumulated by successive :meth:`compile` calls."""
        return self._program

    def compile(self, kernel: LoopKernel) -> CompiledKernel:
        """Compile ``kernel`` and register its blocks with the static program."""
        compiled = CompiledKernel(kernel=kernel)
        compiled.stream_bases = self._assign_stream_bases(kernel)
        for strip_length in sorted(set(kernel.strip_lengths)):
            label = f"{kernel.name}.strip{strip_length}"
            if self._program.has_block(label):
                block = self._program.block(label)
            else:
                block = self._program.new_block(label)
                self._lower_strip(kernel, compiled.stream_bases, block, strip_length)
            compiled.blocks[strip_length] = block
        return compiled

    # -- lowering ------------------------------------------------------------------

    def _assign_stream_bases(self, kernel: LoopKernel) -> Dict[str, Register]:
        """Give every memory stream a base-address register (round robin)."""
        bases: Dict[str, Register] = {}
        # a6/a7 are reserved for loop control, so streams use a0..a5.
        available = [a_reg(i) for i in range(ADDRESS_REGISTER_COUNT - 2)]
        streams = list(kernel.loads) + list(kernel.stores)
        for index, stream in enumerate(streams):
            bases[stream.region] = available[index % len(available)]
        return bases

    def _lower_strip(
        self,
        kernel: LoopKernel,
        stream_bases: Dict[str, Register],
        block: BasicBlock,
        strip_length: int,
    ) -> None:
        emit = InstructionBuilder(block, label_prefix=kernel.name)
        vector_pool = _RoundRobin([v_reg(i) for i in range(VECTOR_REGISTER_COUNT)])
        scalar_pool = _RoundRobin([s_reg(i) for i in range(SCALAR_REGISTER_COUNT - 1)])

        emit.set_vector_length(strip_length)

        # Loads are issued as early as possible (right after the addressing
        # they depend on) so the memory port starts streaming while the scalar
        # overhead of the iteration dispatches underneath it — the schedule a
        # vectorizing compiler produces for a single-port machine.
        self._emit_address_arithmetic(kernel, stream_bases, emit)
        values = self._emit_vector_loads(kernel, stream_bases, emit, vector_pool)
        last_scalar = self._emit_scalar_work(kernel, emit, scalar_pool)
        if kernel.uses_scalar_operand:
            operand = emit.splat(vector_pool.take(), last_scalar, label="splat")
            values.append(operand.destinations[0])

        results = self._emit_vector_compute(kernel, emit, vector_pool, values)
        self._emit_vector_spill(kernel, emit, vector_pool, results)
        if kernel.reduction:
            self._emit_reduction(kernel, emit, results)
        self._emit_vector_stores(kernel, stream_bases, emit, results)
        self._emit_loop_control(emit)

    def _emit_address_arithmetic(
        self,
        kernel: LoopKernel,
        stream_bases: Dict[str, Register],
        emit: InstructionBuilder,
    ) -> None:
        base_registers = list(dict.fromkeys(stream_bases.values()))
        if kernel.reduction_carried:
            # The next strip's addressing consumes the scalar accumulator
            # produced by the scalar processor: this is the distance-1
            # dependence that forces the DYFESM reduction loops into lockstep.
            target = base_registers[0] if base_registers else _INDUCTION
            emit.scalar_op(
                Opcode.S_MOV, target, [_ACCUMULATOR], label="carried_address"
            )
        for index in range(kernel.address_ops):
            if base_registers:
                register = base_registers[index % len(base_registers)]
            else:
                register = _INDUCTION
            emit.scalar_op(Opcode.S_ADD, register, [register], label="addr")

    def _emit_scalar_work(
        self, kernel: LoopKernel, emit: InstructionBuilder, scalar_pool: "_RoundRobin"
    ) -> Register:
        """Emit the scalar-side work of one strip; return the last value written."""
        for _ in range(kernel.scalar_loads):
            emit.scalar_load(scalar_pool.take(), f"{kernel.name}.sdata")
        previous = scalar_pool.peek()
        for index in range(kernel.scalar_ops):
            destination = scalar_pool.take()
            opcode = Opcode.S_FMUL if index % 2 else Opcode.S_FADD
            emit.scalar_op(opcode, destination, [previous], label="scalar")
            previous = destination
        for index in range(kernel.scalar_spill_pairs):
            region = f"spill.{kernel.name}.s{index}"
            emit.scalar_store(previous, region, is_spill=True)
            reloaded = scalar_pool.take()
            emit.scalar_load(reloaded, region, is_spill=True)
            previous = reloaded
        for _ in range(kernel.scalar_stores):
            emit.scalar_store(previous, f"{kernel.name}.sdata")
        return previous

    def _emit_vector_loads(
        self,
        kernel: LoopKernel,
        stream_bases: Dict[str, Register],
        emit: InstructionBuilder,
        vector_pool: "_RoundRobin",
    ) -> List[Register]:
        values: List[Register] = []
        for stream in kernel.loads:
            if abs(stream.stride) != 1:
                emit.set_vector_stride(stream.stride)
            destination = vector_pool.take()
            emit.vector_load(
                destination,
                f"{kernel.name}.{stream.region}",
                stride=stream.stride,
                indexed=stream.indexed,
                base=stream_bases.get(stream.region),
                label=f"load_{stream.region}",
            )
            values.append(destination)
            if abs(stream.stride) != 1:
                emit.set_vector_stride(1)
        return values

    def _emit_vector_compute(
        self,
        kernel: LoopKernel,
        emit: InstructionBuilder,
        vector_pool: "_RoundRobin",
        values: List[Register],
    ) -> List[Register]:
        loaded = list(values)
        independent: List[Register] = []
        if not loaded or kernel.load_use_distance > 0:
            # Either there is nothing to load from, or the schedule wants some
            # operations that do not touch loaded values: seed an independent
            # value with a splat of a scalar constant.
            seed = emit.splat(vector_pool.take(), s_reg(0), label="seed")
            independent.append(seed.destinations[0])
        results: List[Register] = loaded + independent

        fu_any_cycle = [Opcode.V_ADD, Opcode.V_SUB, Opcode.V_MAX, Opcode.V_AND]
        fu_any_plan = [
            fu_any_cycle[index % len(fu_any_cycle)] for index in range(kernel.fu_any_ops)
        ]
        fu2_plan = [Opcode.V_MUL] * kernel.fu2_ops
        # Interleave FU2-only and FU1-capable work the way a scheduler would,
        # so both units can be kept busy simultaneously.
        plan: List[Opcode] = []
        for index in range(max(len(fu_any_plan), len(fu2_plan))):
            if index < len(fu2_plan):
                plan.append(fu2_plan[index])
            if index < len(fu_any_plan):
                plan.append(fu_any_plan[index])

        unconsumed_loads = list(loaded)
        for index, opcode in enumerate(plan):
            before_load_use = bool(index < kernel.load_use_distance and independent)
            if before_load_use:
                pool = independent
                first = pool[index % len(pool)]
                second = pool[(index + 1) % len(pool)]
            elif kernel.chained_ops:
                pool = results[-2:] if len(results) > 1 else results[-1:]
                first = pool[0]
                second = pool[-1]
            elif unconsumed_loads:
                # Consume every loaded value exactly once before recombining
                # intermediate results, as a scheduler filling both units
                # would.  The first consuming operation takes the two
                # earliest-loaded values so the compute chain (and therefore
                # any chained store) can start as soon as those loads finish,
                # rather than waiting for the last operand stream.
                first = unconsumed_loads.pop(0)
                if index == kernel.load_use_distance and len(unconsumed_loads) > 0:
                    second = unconsumed_loads.pop(0)
                else:
                    second = results[-1]
            else:
                first = results[index % len(results)]
                second = results[(index + 1) % len(results)]
            destination = vector_pool.take()
            emit.vector_op(opcode, destination, [first, second], label=f"op{index}")
            results.append(destination)
            if before_load_use:
                independent.append(destination)
        return results

    def _emit_vector_spill(
        self,
        kernel: LoopKernel,
        emit: InstructionBuilder,
        vector_pool: "_RoundRobin",
        results: List[Register],
    ) -> None:
        for index in range(kernel.vector_spill_pairs):
            region = f"spill.{kernel.name}.v{index}"
            victim = results[index % len(results)]
            emit.vector_store(victim, region, is_spill=True, label=f"spill_store{index}")
            # Some unrelated work typically sits between the spill and the
            # reload; the reload then feeds later computation.
            filler = vector_pool.take()
            emit.vector_op(Opcode.V_ADD, filler, [results[-1], results[-1]], label="spill_filler")
            reload = vector_pool.take()
            emit.vector_load(reload, region, is_spill=True, label=f"spill_reload{index}")
            combined = vector_pool.take()
            emit.vector_op(Opcode.V_ADD, combined, [reload, filler], label="spill_use")
            results.append(combined)

    def _emit_reduction(
        self, kernel: LoopKernel, emit: InstructionBuilder, results: List[Register]
    ) -> None:
        emit.vector_reduce(Opcode.V_SUM, s_reg(6), results[-1], label="reduce")
        # Fold the partial sum into the running accumulator on the scalar side.
        emit.scalar_op(Opcode.S_FADD, _ACCUMULATOR, [_ACCUMULATOR, s_reg(6)], label="acc")

    def _emit_vector_stores(
        self,
        kernel: LoopKernel,
        stream_bases: Dict[str, Register],
        emit: InstructionBuilder,
        results: List[Register],
    ) -> None:
        for index, stream in enumerate(kernel.stores):
            if abs(stream.stride) != 1:
                emit.set_vector_stride(stream.stride)
            value = results[-(index % len(results)) - 1]
            emit.vector_store(
                value,
                f"{kernel.name}.{stream.region}",
                stride=stream.stride,
                indexed=stream.indexed,
                base=stream_bases.get(stream.region),
                label=f"store_{stream.region}",
            )
            if abs(stream.stride) != 1:
                emit.set_vector_stride(1)

    def _emit_loop_control(self, emit: InstructionBuilder) -> None:
        emit.scalar_op(Opcode.S_ADD, _INDUCTION, [_INDUCTION], label="induction")
        emit.scalar_op(Opcode.S_CMP, _LOOP_CONDITION, [_INDUCTION], label="compare")
        emit.branch(_LOOP_CONDITION, label="loop_branch")


class _RoundRobin:
    """Round-robin register chooser used during lowering."""

    def __init__(self, registers: List[Register]) -> None:
        if not registers:
            raise WorkloadError("round-robin pool requires at least one register")
        self._registers = registers
        self._next = 0

    def take(self) -> Register:
        register = self._registers[self._next]
        self._next = (self._next + 1) % len(self._registers)
        return register

    def peek(self) -> Register:
        return self._registers[self._next]
