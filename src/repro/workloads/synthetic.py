"""Parametric synthetic kernels.

These are the classic vector kernels used throughout the examples, the unit
tests and the ablation benchmarks.  They are deliberately simple: each factory
returns a :class:`~repro.workloads.kernel.LoopKernel` whose resource balance
is obvious from its definition, which makes them ideal for checking that the
simulators respond to memory-boundness, compute-boundness, spill code and
reductions the way the paper describes.
"""

from __future__ import annotations

from repro.isa.registers import VECTOR_REGISTER_LENGTH
from repro.workloads.kernel import LoopKernel, VectorStream
from repro.workloads.program_model import ProgramModel, ProgramTargets
from repro.workloads.kernel import KernelSchedule


def daxpy(
    elements: int = 1024,
    max_vector_length: int = VECTOR_REGISTER_LENGTH,
    invocations: int = 1,
) -> LoopKernel:
    """``y[i] = a * x[i] + y[i]`` — one multiply, one add, two loads, one store."""
    return LoopKernel(
        name="daxpy",
        elements=elements,
        max_vector_length=max_vector_length,
        loads=(VectorStream("x"), VectorStream("y")),
        stores=(VectorStream("y"),),
        fu_any_ops=1,
        fu2_ops=1,
        uses_scalar_operand=True,
        address_ops=2,
        scalar_ops=1,
        invocations=invocations,
    )


def stream_triad(
    elements: int = 2048,
    max_vector_length: int = VECTOR_REGISTER_LENGTH,
    invocations: int = 1,
) -> LoopKernel:
    """``a[i] = b[i] + s * c[i]`` — the memory-bound STREAM triad."""
    return LoopKernel(
        name="stream_triad",
        elements=elements,
        max_vector_length=max_vector_length,
        loads=(VectorStream("b"), VectorStream("c")),
        stores=(VectorStream("a"),),
        fu_any_ops=1,
        fu2_ops=1,
        uses_scalar_operand=True,
        address_ops=3,
        scalar_ops=1,
        invocations=invocations,
    )


def stencil3(
    elements: int = 1024,
    max_vector_length: int = VECTOR_REGISTER_LENGTH,
    invocations: int = 1,
) -> LoopKernel:
    """A three-point stencil: three shifted loads, one store, a few adds."""
    return LoopKernel(
        name="stencil3",
        elements=elements,
        max_vector_length=max_vector_length,
        loads=(VectorStream("u_left"), VectorStream("u_mid"), VectorStream("u_right")),
        stores=(VectorStream("u_out"),),
        fu_any_ops=3,
        fu2_ops=1,
        address_ops=3,
        scalar_ops=2,
        invocations=invocations,
    )


def compute_bound(
    elements: int = 1024,
    max_vector_length: int = VECTOR_REGISTER_LENGTH,
    fu_ops: int = 10,
    invocations: int = 1,
) -> LoopKernel:
    """A kernel dominated by vector arithmetic rather than memory traffic."""
    return LoopKernel(
        name="compute_bound",
        elements=elements,
        max_vector_length=max_vector_length,
        loads=(VectorStream("x"),),
        stores=(VectorStream("y"),),
        fu_any_ops=(fu_ops + 1) // 2,
        fu2_ops=fu_ops // 2,
        load_use_distance=max(fu_ops // 2 - 1, 0),
        address_ops=2,
        scalar_ops=2,
        invocations=invocations,
    )


def reduction(
    elements: int = 1024,
    max_vector_length: int = VECTOR_REGISTER_LENGTH,
    carried: bool = False,
    invocations: int = 1,
) -> LoopKernel:
    """A dot-product style reduction, optionally carried across iterations."""
    return LoopKernel(
        name="reduction_carried" if carried else "reduction",
        elements=elements,
        max_vector_length=max_vector_length,
        loads=(VectorStream("x"), VectorStream("y")),
        fu2_ops=1,
        reduction=True,
        reduction_carried=carried,
        address_ops=2,
        scalar_ops=2,
        invocations=invocations,
    )


def spill_heavy(
    elements: int = 1024,
    max_vector_length: int = VECTOR_REGISTER_LENGTH,
    spill_pairs: int = 2,
    invocations: int = 1,
) -> LoopKernel:
    """A register-starved loop that spills and reloads vector temporaries."""
    return LoopKernel(
        name="spill_heavy",
        elements=elements,
        max_vector_length=max_vector_length,
        loads=(VectorStream("x"), VectorStream("y")),
        stores=(VectorStream("z"),),
        fu_any_ops=2,
        fu2_ops=2,
        vector_spill_pairs=spill_pairs,
        address_ops=3,
        scalar_ops=2,
        invocations=invocations,
    )


def gather_scatter(
    elements: int = 512,
    max_vector_length: int = VECTOR_REGISTER_LENGTH,
    invocations: int = 1,
) -> LoopKernel:
    """An indexed (gather/scatter) kernel that defeats range disambiguation."""
    return LoopKernel(
        name="gather_scatter",
        elements=elements,
        max_vector_length=max_vector_length,
        loads=(VectorStream("idx"), VectorStream("table", indexed=True)),
        stores=(VectorStream("out", indexed=True),),
        fu_any_ops=2,
        address_ops=3,
        scalar_ops=2,
        invocations=invocations,
    )


def strided(
    elements: int = 1024,
    stride: int = 4,
    max_vector_length: int = VECTOR_REGISTER_LENGTH,
    invocations: int = 1,
) -> LoopKernel:
    """A column-access kernel with non-unit stride."""
    return LoopKernel(
        name="strided",
        elements=elements,
        max_vector_length=max_vector_length,
        loads=(VectorStream("matrix", stride=stride),),
        stores=(VectorStream("column", stride=1),),
        fu_any_ops=2,
        address_ops=3,
        scalar_ops=1,
        invocations=invocations,
    )


def simple_program(
    name: str = "synthetic",
    elements: int = 1024,
    max_vector_length: int = VECTOR_REGISTER_LENGTH,
    repetitions: int = 4,
) -> ProgramModel:
    """A small two-kernel program useful for quick end-to-end runs."""
    return ProgramModel(
        name=name,
        description="Synthetic two-kernel program (stream triad + daxpy).",
        schedules=(
            KernelSchedule(stream_triad(elements, max_vector_length), repetitions),
            KernelSchedule(daxpy(elements, max_vector_length), repetitions),
        ),
        targets=ProgramTargets(),
        prologue_scalar_instructions=16,
    )
