"""Synthetic workload models — the reproduction's substitute for the Perfect Club.

The paper drives its simulators with Dixie traces of six Perfect Club programs
compiled by the Convex Fortran compiler.  Neither the traces nor the compiler
are available, so this package rebuilds the workload layer from the published
per-program statistics:

* a loop-kernel description language (:mod:`repro.workloads.kernel`),
* a small vectorizing compiler that lowers kernels to the Convex-style ISA,
  strip-mining to the 128-element vector registers and inserting the scalar
  overhead, spill traffic and loop control real compiled code carries
  (:mod:`repro.workloads.compiler`),
* six program models tuned to the paper's Table 1 (vectorization percentage,
  average vector length), Section 3 (memory-port idle fractions), Section 7
  (spill-code fractions) and the DYFESM loop structure described in Section 5
  (:mod:`repro.workloads.programs`),
* a set of parametric synthetic kernels (daxpy, stream triad, stencils,
  reductions, spill-heavy loops) useful for unit tests, examples and
  ablations (:mod:`repro.workloads.synthetic`).
"""

from repro.workloads.kernel import KernelSchedule, LoopKernel, VectorStream
from repro.workloads.compiler import VectorizingCompiler
from repro.workloads.program_model import ProgramModel, ProgramTargets
from repro.workloads.perfect_club import (
    PERFECT_CLUB_PROGRAMS,
    load_program,
    program_names,
)
from repro.workloads import synthetic

__all__ = [
    "KernelSchedule",
    "LoopKernel",
    "PERFECT_CLUB_PROGRAMS",
    "ProgramModel",
    "ProgramTargets",
    "VectorStream",
    "VectorizingCompiler",
    "load_program",
    "program_names",
    "synthetic",
]
