"""The loop-kernel description language.

A :class:`LoopKernel` describes one vectorized loop nest the way a performance
model sees it: how many elements it processes, which memory streams it reads
and writes, how much vector arithmetic it performs per strip-mined iteration,
how much scalar overhead surrounds the vector work, and whether it carries the
kinds of dependences (reductions fed back through scalar registers, compiler
spill code) that determine how much decoupling can help.

The :class:`~repro.workloads.compiler.VectorizingCompiler` lowers a kernel to
Convex-style vector code; program models combine several kernels with
invocation counts to approximate whole Perfect Club programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common.errors import WorkloadError
from repro.isa.registers import VECTOR_REGISTER_LENGTH


@dataclass(frozen=True)
class VectorStream:
    """One vector memory stream accessed by a kernel.

    Attributes:
        region: name of the array (address region) being accessed.
        stride: access stride in elements (1 = unit stride).
        indexed: ``True`` for gather/scatter access through an index vector.
    """

    region: str
    stride: int = 1
    indexed: bool = False

    def __post_init__(self) -> None:
        if not self.region:
            raise WorkloadError("vector stream requires a region name")
        if self.stride == 0:
            raise WorkloadError("vector stream stride cannot be zero")


@dataclass(frozen=True)
class LoopKernel:
    """A vectorized loop nest described by its resource usage per iteration.

    One *iteration* here means one strip-mined pass over at most
    ``max_vector_length`` elements.  All ``*_per_iteration`` quantities refer
    to that strip.

    Attributes:
        name: identifier of the loop (used for labels and spill region names).
        elements: number of elements processed per invocation of the loop.
        max_vector_length: strip length; at most the 128-element register size.
        loads: vector load streams read every iteration.
        stores: vector store streams written every iteration.
        fu_any_ops: vector operations executable on either functional unit.
        fu2_ops: vector multiply/divide/sqrt operations (FU2 only).
        chained_ops: when ``True`` the vector operations form one dependence
            chain (each op consumes the previous result); when ``False`` they
            only depend on the loaded values, leaving more parallelism.
        load_use_distance: number of vector operations scheduled *before* the
            first operation that consumes a loaded value.  A non-zero distance
            models a compiler that hoists loads to the top of the loop body so
            that even the non-decoupled machine can overlap part of the memory
            latency with independent work (how the Convex compiler schedules
            the compute-bound DYFESM loop the paper discusses in §5).
        vector_spill_pairs: vector store+reload pairs of the same register
            slot inserted per iteration (compiler spill of vector values) —
            these are the bypass opportunities of Section 7.
        scalar_spill_pairs: scalar store+reload pairs per iteration (spill of
            scalar values through the stack).
        address_ops: scalar address-arithmetic instructions per iteration
            (routed to the address processor in the decoupled machine).
        scalar_ops: scalar data-computation instructions per iteration
            (routed to the scalar processor).
        scalar_loads: scalar loads of loop-invariant data per iteration.
        scalar_stores: scalar stores per iteration.
        reduction: when ``True`` the iteration ends with a vector reduction
            producing a scalar value.
        reduction_carried: when ``True`` the reduction result feeds the next
            iteration's vector work through the scalar processor — the
            distance-1 self-dependence that forces the DYFESM loops into
            lockstep (paper §5).
        uses_scalar_operand: when ``True`` each iteration broadcasts a scalar
            produced by the scalar processor into a vector register.
        invocations: how many times the whole loop nest is entered per program
            run (before scaling).
    """

    name: str
    elements: int
    max_vector_length: int = VECTOR_REGISTER_LENGTH
    loads: Tuple[VectorStream, ...] = ()
    stores: Tuple[VectorStream, ...] = ()
    fu_any_ops: int = 1
    fu2_ops: int = 0
    chained_ops: bool = False
    load_use_distance: int = 0
    vector_spill_pairs: int = 0
    scalar_spill_pairs: int = 0
    address_ops: int = 2
    scalar_ops: int = 2
    scalar_loads: int = 0
    scalar_stores: int = 0
    reduction: bool = False
    reduction_carried: bool = False
    uses_scalar_operand: bool = False
    invocations: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("kernel requires a name")
        if self.elements <= 0:
            raise WorkloadError(f"kernel {self.name!r}: elements must be positive")
        if not 1 <= self.max_vector_length <= VECTOR_REGISTER_LENGTH:
            raise WorkloadError(
                f"kernel {self.name!r}: max vector length must be in "
                f"[1, {VECTOR_REGISTER_LENGTH}]"
            )
        if self.invocations <= 0:
            raise WorkloadError(f"kernel {self.name!r}: invocations must be positive")
        if self.reduction_carried and not self.reduction:
            raise WorkloadError(
                f"kernel {self.name!r}: a carried reduction requires reduction=True"
            )
        negatives = {
            "fu_any_ops": self.fu_any_ops,
            "fu2_ops": self.fu2_ops,
            "load_use_distance": self.load_use_distance,
            "vector_spill_pairs": self.vector_spill_pairs,
            "scalar_spill_pairs": self.scalar_spill_pairs,
            "address_ops": self.address_ops,
            "scalar_ops": self.scalar_ops,
            "scalar_loads": self.scalar_loads,
            "scalar_stores": self.scalar_stores,
        }
        for field_name, value in negatives.items():
            if value < 0:
                raise WorkloadError(
                    f"kernel {self.name!r}: {field_name} cannot be negative"
                )
        if (
            self.fu_any_ops + self.fu2_ops == 0
            and not self.loads
            and not self.stores
            and self.vector_spill_pairs == 0
        ):
            raise WorkloadError(
                f"kernel {self.name!r}: kernel performs no vector work at all"
            )

    # -- derived shape -----------------------------------------------------------

    @property
    def strips_per_invocation(self) -> int:
        """Number of strip-mined iterations needed to cover ``elements``."""
        full, remainder = divmod(self.elements, self.max_vector_length)
        return full + (1 if remainder else 0)

    @property
    def strip_lengths(self) -> list[int]:
        """The vector lengths of the successive strips of one invocation."""
        full, remainder = divmod(self.elements, self.max_vector_length)
        lengths = [self.max_vector_length] * full
        if remainder:
            lengths.append(remainder)
        return lengths

    @property
    def vector_memory_streams(self) -> int:
        """Vector memory instructions per strip iteration (without spill)."""
        return len(self.loads) + len(self.stores)

    @property
    def vector_compute_ops(self) -> int:
        """Vector arithmetic instructions per strip iteration (without QMOV)."""
        ops = self.fu_any_ops + self.fu2_ops
        if self.reduction:
            ops += 1
        if self.uses_scalar_operand:
            ops += 1
        return ops

    @property
    def emits_seed_splat(self) -> bool:
        """True when the compiled strip starts with an independent seed value.

        The compiler seeds a value with a scalar broadcast when the kernel has
        nothing to load from, or when ``load_use_distance`` asks for operations
        that must not depend on loaded values.
        """
        has_initial_value = bool(self.loads) or self.uses_scalar_operand
        return self.load_use_distance > 0 or not has_initial_value

    @property
    def vector_instructions_per_strip(self) -> int:
        """All vector instructions issued per strip iteration.

        Every vector spill pair expands to four vector instructions (spill
        store, filler operation, reload, consuming operation), matching the
        code the compiler emits.
        """
        count = self.vector_compute_ops + self.vector_memory_streams
        count += 4 * self.vector_spill_pairs
        if self.emits_seed_splat:
            count += 1
        return count

    @property
    def scalar_instructions_per_strip(self) -> int:
        """All scalar instructions issued per strip iteration.

        Includes the ``SET_VL`` update, stride updates for non-unit-stride
        streams, address and scalar arithmetic, scalar memory traffic, spill,
        loop control (induction increment, compare, branch) and, for carried
        reductions, the scalar update of the accumulator.
        """
        count = 1  # SET_VL
        count += self.address_ops + self.scalar_ops
        count += self.scalar_loads + self.scalar_stores
        count += 2 * self.scalar_spill_pairs
        count += 3  # loop control: induction increment + compare + branch
        strided_streams = sum(
            1 for stream in tuple(self.loads) + tuple(self.stores) if abs(stream.stride) != 1
        )
        count += 2 * strided_streams  # SET_VS before and after each strided access
        if self.reduction:
            count += 1  # scalar consumption of the reduction result
        if self.reduction_carried:
            count += 1  # accumulator forwarded into the next strip's addressing
        return count


@dataclass(frozen=True)
class KernelSchedule:
    """A kernel together with the number of times it runs in a program."""

    kernel: LoopKernel
    repetitions: int = 1

    def __post_init__(self) -> None:
        if self.repetitions <= 0:
            raise WorkloadError(
                f"kernel {self.kernel.name!r}: repetitions must be positive"
            )

    @property
    def total_invocations(self) -> int:
        return self.repetitions * self.kernel.invocations
