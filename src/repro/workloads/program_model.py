"""Whole-program workload models.

A :class:`ProgramModel` combines several loop kernels (with invocation counts)
into a stand-in for one Perfect Club program.  The model also records the
*targets* — the numbers the paper publishes for the real program — so that
tests, EXPERIMENTS.md and the calibration example can compare what the
synthetic model achieves against what the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.common.errors import WorkloadError
from repro.isa.builder import InstructionBuilder
from repro.isa.opcodes import Opcode
from repro.isa.registers import a_reg, s_reg
from repro.trace.generator import TraceBuilder
from repro.trace.record import Trace
from repro.workloads.compiler import VectorizingCompiler
from repro.workloads.kernel import KernelSchedule


@dataclass(frozen=True)
class ProgramTargets:
    """Published per-program numbers this model tries to approximate.

    All fields are optional because the paper does not publish every number
    for every program; ``None`` simply means "no target".
    """

    vectorization_percent: Optional[float] = None
    average_vector_length: Optional[float] = None
    spill_fraction: Optional[float] = None
    ref_port_idle_fraction: Optional[float] = None
    dva_speedup_at_latency_100: Optional[float] = None
    bypass_speedup_at_latency_1: Optional[float] = None
    traffic_reduction: Optional[float] = None

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "vectorization_percent": self.vectorization_percent,
            "average_vector_length": self.average_vector_length,
            "spill_fraction": self.spill_fraction,
            "ref_port_idle_fraction": self.ref_port_idle_fraction,
            "dva_speedup_at_latency_100": self.dva_speedup_at_latency_100,
            "bypass_speedup_at_latency_1": self.bypass_speedup_at_latency_1,
            "traffic_reduction": self.traffic_reduction,
        }


@dataclass
class ProgramModel:
    """A synthetic stand-in for one benchmark program."""

    name: str
    schedules: Sequence[KernelSchedule]
    description: str = ""
    targets: ProgramTargets = field(default_factory=ProgramTargets)
    prologue_scalar_instructions: int = 32

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("program model requires a name")
        if not self.schedules:
            raise WorkloadError(f"program model {self.name!r} has no kernels")
        if self.prologue_scalar_instructions < 0:
            raise WorkloadError("prologue length cannot be negative")

    # -- trace generation ---------------------------------------------------------

    def build_trace(self, scale: float = 1.0) -> Trace:
        """Generate the dynamic trace of one run of the program.

        ``scale`` multiplies every kernel's invocation count, allowing quick
        benchmark runs (``scale < 1``) or long, paper-sized runs
        (``scale > 1``).  At least one invocation of every kernel is always
        emitted so small scales never drop a program phase entirely.
        """
        if scale <= 0:
            raise WorkloadError("trace scale must be positive")

        compiler = VectorizingCompiler(program_name=self.name)
        compiled = [compiler.compile(schedule.kernel) for schedule in self.schedules]

        builder = TraceBuilder(self.name)
        self._emit_prologue(compiler, builder)
        for schedule, compiled_kernel in zip(self.schedules, compiled):
            invocations = max(1, math.ceil(schedule.total_invocations * scale))
            compiled_kernel.emit_program(builder, invocations=invocations)
        trace = builder.build()
        trace.metadata["program"] = self.name
        trace.metadata["scale"] = scale
        trace.metadata["targets"] = {
            key: value for key, value in self.targets.as_dict().items() if value is not None
        }
        return trace

    def estimated_trace_length(self, scale: float = 1.0) -> int:
        """A cheap estimate of the dynamic instruction count at ``scale``.

        Computed from the kernel schedules alone — invocation counts, strip
        counts and per-strip instruction shapes — without compiling kernels or
        emitting a single trace record, so callers can rank the *cost* of
        simulating a cell (the sweep runner and the cluster manifest order
        work longest-job-first) before any trace exists.  It tracks the real
        trace length closely but is not exact; never use it where the actual
        length matters.
        """
        if scale <= 0:
            raise WorkloadError("trace scale must be positive")
        total = self.prologue_scalar_instructions
        for schedule in self.schedules:
            invocations = max(1, math.ceil(schedule.total_invocations * scale))
            kernel = schedule.kernel
            per_strip = (
                kernel.vector_instructions_per_strip
                + kernel.scalar_instructions_per_strip
            )
            total += invocations * kernel.strips_per_invocation * per_strip
        return total

    def _emit_prologue(self, compiler: VectorizingCompiler, builder: TraceBuilder) -> None:
        """Emit the scalar start-up code every real program executes once."""
        if self.prologue_scalar_instructions == 0:
            return
        block = compiler.program.new_block(f"{self.name}.prologue")
        emit = InstructionBuilder(block, label_prefix="prologue")
        for index in range(self.prologue_scalar_instructions):
            if index % 8 == 7:
                emit.scalar_load(s_reg(index % 4), f"{self.name}.globals")
            elif index % 8 == 3:
                emit.scalar_op(Opcode.S_LI, a_reg(index % 6), immediate=index)
            else:
                emit.scalar_op(Opcode.S_ADD, s_reg(index % 6), [s_reg((index + 1) % 6)])
        builder.append_block(block)

    # -- descriptive helpers ------------------------------------------------------

    @property
    def kernels(self):
        return [schedule.kernel for schedule in self.schedules]

    def kernel_named(self, name: str):
        for kernel in self.kernels:
            if kernel.name == name:
                return kernel
        raise WorkloadError(f"program {self.name!r} has no kernel named {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kernel_names = ", ".join(kernel.name for kernel in self.kernels)
        return f"ProgramModel(name={self.name!r}, kernels=[{kernel_names}])"
