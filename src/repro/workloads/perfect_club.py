"""Registry of the six synthetic Perfect Club program models.

The paper selects the six Perfect Club programs whose vectorization exceeds
70 % (ARC2D, FLO52, BDNA, SPEC77, TRFD and DYFESM); this module is the single
place the rest of the library looks them up.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.common.errors import WorkloadError
from repro.trace.record import Trace
from repro.workloads.program_model import ProgramModel
from repro.workloads.programs import arc2d, bdna, dyfesm, flo52, spec77, trfd

#: Factories for the six benchmark program models, keyed by paper name.
PERFECT_CLUB_PROGRAMS: Dict[str, Callable[[], ProgramModel]] = {
    "ARC2D": arc2d.build,
    "FLO52": flo52.build,
    "BDNA": bdna.build,
    "TRFD": trfd.build,
    "DYFESM": dyfesm.build,
    "SPEC77": spec77.build,
}


def program_names() -> List[str]:
    """The benchmark program names, in the paper's customary order."""
    return list(PERFECT_CLUB_PROGRAMS)


def load_program(name: str) -> ProgramModel:
    """Build the program model for ``name`` (case-insensitive)."""
    key = name.upper()
    try:
        factory = PERFECT_CLUB_PROGRAMS[key]
    except KeyError as exc:
        known = ", ".join(PERFECT_CLUB_PROGRAMS)
        raise WorkloadError(f"unknown benchmark program {name!r} (known: {known})") from exc
    return factory()


def build_all_programs() -> Dict[str, ProgramModel]:
    """Build every benchmark program model."""
    return {name: factory() for name, factory in PERFECT_CLUB_PROGRAMS.items()}


def build_trace(name: str, scale: float = 1.0) -> Trace:
    """Convenience helper: build the trace of one benchmark program."""
    return load_program(name).build_trace(scale=scale)
