"""Synthetic model of ARC2D (implicit finite-difference CFD, 2D Euler).

ARC2D is the most heavily vectorized program of the six (98.5 % vectorization,
average vector length 95 in Table 1) and the least latency-sensitive on the
reference machine (only ~11 % of REF cycles have an idle memory port in
Figure 1; the DVA speedup at latency 100 is the smallest of the set, 1.35 in
Figure 5).  It carries a moderate amount of spill traffic (12.2 % of memory
operations, §7) and gets a small benefit from bypassing (2.68 %).

The model uses two long-vector, memory-port-bound ADI-sweep kernels; the
second one spills one vector temporary per iteration.
"""

from __future__ import annotations

from repro.workloads.kernel import KernelSchedule, LoopKernel, VectorStream
from repro.workloads.program_model import ProgramModel, ProgramTargets

#: Vector length used by the ARC2D sweeps (Table 1 reports an average of 95).
VECTOR_LENGTH = 95


def build() -> ProgramModel:
    """Build the ARC2D program model."""
    xsweep = LoopKernel(
        name="arc2d_xsweep",
        elements=VECTOR_LENGTH * 8,
        max_vector_length=VECTOR_LENGTH,
        loads=(VectorStream("q"), VectorStream("coef")),
        stores=(VectorStream("qnew"),),
        fu_any_ops=1,
        fu2_ops=1,
        address_ops=2,
        scalar_ops=2,
        scalar_loads=1,
    )
    ysweep = LoopKernel(
        name="arc2d_ysweep",
        elements=VECTOR_LENGTH * 4,
        max_vector_length=VECTOR_LENGTH,
        loads=(VectorStream("q", stride=1), VectorStream("penta")),
        stores=(VectorStream("qnew"),),
        fu_any_ops=1,
        fu2_ops=1,
        vector_spill_pairs=1,
        scalar_spill_pairs=1,
        address_ops=2,
        scalar_ops=2,
    )
    return ProgramModel(
        name="ARC2D",
        description=(
            "Implicit-factored 2D Euler solver: long unit-stride ADI sweeps, "
            "almost fully vectorized, memory-port bound."
        ),
        schedules=(
            KernelSchedule(xsweep, repetitions=12),
            KernelSchedule(ysweep, repetitions=6),
        ),
        targets=ProgramTargets(
            vectorization_percent=98.5,
            average_vector_length=95.0,
            spill_fraction=0.122,
            ref_port_idle_fraction=0.1113,
            dva_speedup_at_latency_100=1.35,
            bypass_speedup_at_latency_1=0.0268,
        ),
    )
