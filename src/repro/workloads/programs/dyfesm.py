"""Synthetic model of DYFESM (2D dynamic finite-element structural analysis).

DYFESM is the one program of the six that gains essentially nothing from
decoupling (Figure 5), and §5 of the paper explains why loop by loop:

* its dominant loop (68 % of all vector operations) cannot execute in fewer
  than 3 chimes, and *both* architectures already achieve that minimum — the
  Convex compiler schedules the loads far enough from their consumers that
  even the reference machine hides the memory latency behind the two busy
  functional units;
* its next two loops (7.1 % of vector operations each) contain a reduction
  with a distance-1 self-dependence carried through a scalar register, which
  forces the fetch/address/vector processors into lockstep and removes any
  possibility of slip.

At the same time DYFESM has the *largest* bypass benefit (22 % at latency 1)
and memory-traffic reduction (>30 %, Figure 8), because the vector temporaries
it spills around those loops are immediately reloaded.  On the reference
machine it shows the largest idle-memory-port fraction of the suite (51.9 %).
"""

from __future__ import annotations

from repro.workloads.kernel import KernelSchedule, LoopKernel, VectorStream
from repro.workloads.program_model import ProgramModel, ProgramTargets

#: Vector length of the dominant element-force loop.
DOMINANT_VECTOR_LENGTH = 64

#: Vector length of the short reduction loops.
REDUCTION_VECTOR_LENGTH = 16


def build() -> ProgramModel:
    """Build the DYFESM program model."""
    dominant = LoopKernel(
        name="dyfesm_element_forces",
        elements=DOMINANT_VECTOR_LENGTH * 4,
        max_vector_length=DOMINANT_VECTOR_LENGTH,
        loads=(VectorStream("displacements"),),
        stores=(VectorStream("forces"),),
        fu_any_ops=3,
        fu2_ops=3,
        load_use_distance=4,
        vector_spill_pairs=1,
        address_ops=3,
        scalar_ops=3,
    )
    reduction_a = LoopKernel(
        name="dyfesm_energy_reduction",
        elements=REDUCTION_VECTOR_LENGTH * 4,
        max_vector_length=REDUCTION_VECTOR_LENGTH,
        loads=(VectorStream("forces"),),
        fu2_ops=1,
        reduction=True,
        reduction_carried=True,
        vector_spill_pairs=1,
        address_ops=3,
        scalar_ops=4,
    )
    reduction_b = LoopKernel(
        name="dyfesm_residual_reduction",
        elements=REDUCTION_VECTOR_LENGTH * 4,
        max_vector_length=REDUCTION_VECTOR_LENGTH,
        loads=(VectorStream("residual"),),
        fu2_ops=1,
        reduction=True,
        reduction_carried=True,
        vector_spill_pairs=1,
        address_ops=3,
        scalar_ops=4,
    )
    assembly = LoopKernel(
        name="dyfesm_assembly",
        elements=32 * 4,
        max_vector_length=32,
        loads=(VectorStream("element"), VectorStream("connectivity")),
        stores=(VectorStream("global"),),
        fu_any_ops=2,
        address_ops=4,
        scalar_ops=6,
    )
    return ProgramModel(
        name="DYFESM",
        description=(
            "Dynamic finite-element structural analysis: a compute-bound "
            "3-chime element loop, two lockstep reduction loops with a "
            "distance-1 scalar dependence, and a short assembly loop."
        ),
        schedules=(
            KernelSchedule(dominant, repetitions=8),
            KernelSchedule(reduction_a, repetitions=15),
            KernelSchedule(reduction_b, repetitions=15),
            KernelSchedule(assembly, repetitions=10),
        ),
        targets=ProgramTargets(
            ref_port_idle_fraction=0.519,
            dva_speedup_at_latency_100=1.05,
            bypass_speedup_at_latency_1=0.22,
            traffic_reduction=0.30,
        ),
    )
