"""Synthetic model of SPEC77 (global spectral weather simulation).

SPEC77 combines short vectors with a substantial scalar component, which makes
it the most latency-sensitive program of the suite on the reference machine
(48 % idle-memory-port cycles in Figure 1) and gives the decoupled
architecture its largest speedup (2.05 at latency 100, Figure 5).  Two other
published facts shape the model:

* spill code is almost absent (3 % of memory operations, §7), so bypassing
  gains almost nothing (0.7 %);
* SPEC77 is the one program that makes heavy use of the vector load data
  queue (Figure 6): its spectral-transform loops stream many operand vectors
  per iteration while the vector processor works through long chains of
  arithmetic, so reducing the load queue to four slots actually hurts it
  (Figure 7, §7).
"""

from __future__ import annotations

from repro.workloads.kernel import KernelSchedule, LoopKernel, VectorStream
from repro.workloads.program_model import ProgramModel, ProgramTargets

#: Vector length of the SPEC77 kernels.
VECTOR_LENGTH = 28


def build() -> ProgramModel:
    """Build the SPEC77 program model."""
    physics = LoopKernel(
        name="spec77_physics",
        elements=VECTOR_LENGTH * 4,
        max_vector_length=VECTOR_LENGTH,
        loads=(VectorStream("state"), VectorStream("tendency")),
        stores=(VectorStream("state"),),
        fu_any_ops=2,
        fu2_ops=1,
        address_ops=5,
        scalar_ops=8,
        scalar_loads=1,
    )
    spectral = LoopKernel(
        name="spec77_spectral_transform",
        elements=VECTOR_LENGTH * 4,
        max_vector_length=VECTOR_LENGTH,
        loads=(
            VectorStream("fourier_re"),
            VectorStream("fourier_im"),
            VectorStream("legendre"),
            VectorStream("weights"),
            VectorStream("spectrum"),
        ),
        stores=(VectorStream("spectrum"),),
        fu_any_ops=6,
        fu2_ops=6,
        address_ops=4,
        scalar_ops=4,
    )
    return ProgramModel(
        name="SPEC77",
        description=(
            "Spectral atmospheric circulation model: short-vector physics "
            "columns plus spectral transforms streaming many operand vectors."
        ),
        schedules=(
            KernelSchedule(physics, repetitions=30),
            KernelSchedule(spectral, repetitions=10),
        ),
        targets=ProgramTargets(
            spill_fraction=0.03,
            ref_port_idle_fraction=0.48,
            dva_speedup_at_latency_100=2.05,
            bypass_speedup_at_latency_1=0.007,
        ),
    )
