"""Synthetic model of BDNA (molecular dynamics of hydrated DNA).

BDNA is 86.9 % vectorized with long vectors (average length 81, Table 1), but
it is the spill-code champion of the suite: 69.5 % of all its memory
operations are spill loads and stores (§7).  Most of that spill is scalar
(stack) traffic, which is why its bypass benefit (10.94 %) and memory-traffic
reduction (~10 %, Figure 8) are moderate even though the spill fraction is
enormous.  On the reference machine about 35 % of its cycles leave the memory
port idle (Figure 1).

The model pairs a force-evaluation kernel (long vectors, one vector spill pair
and several scalar spills per iteration) with a scalar-dominated bookkeeping
kernel that carries the bulk of the scalar spill traffic.
"""

from __future__ import annotations

from repro.workloads.kernel import KernelSchedule, LoopKernel, VectorStream
from repro.workloads.program_model import ProgramModel, ProgramTargets

#: Vector length of the BDNA force kernels (Table 1 reports an average of 81).
VECTOR_LENGTH = 81


def build() -> ProgramModel:
    """Build the BDNA program model."""
    forces = LoopKernel(
        name="bdna_forces",
        elements=VECTOR_LENGTH * 8,
        max_vector_length=VECTOR_LENGTH,
        loads=(VectorStream("x"), VectorStream("y"), VectorStream("charge")),
        stores=(VectorStream("force"),),
        fu_any_ops=4,
        fu2_ops=3,
        vector_spill_pairs=1,
        scalar_spill_pairs=3,
        address_ops=4,
        scalar_ops=6,
        scalar_loads=1,
    )
    bookkeeping = LoopKernel(
        name="bdna_bookkeeping",
        elements=VECTOR_LENGTH,
        max_vector_length=VECTOR_LENGTH,
        loads=(VectorStream("pairlist"),),
        stores=(VectorStream("pairlist"),),
        fu_any_ops=1,
        scalar_ops=120,
        address_ops=6,
        scalar_loads=4,
        scalar_stores=4,
        scalar_spill_pairs=15,
    )
    return ProgramModel(
        name="BDNA",
        description=(
            "Molecular dynamics of DNA in water: long-vector force evaluation "
            "plus scalar-heavy neighbour-list bookkeeping with massive spill."
        ),
        schedules=(
            KernelSchedule(forces, repetitions=4),
            KernelSchedule(bookkeeping, repetitions=45),
        ),
        targets=ProgramTargets(
            vectorization_percent=86.9,
            average_vector_length=81.0,
            spill_fraction=0.695,
            ref_port_idle_fraction=0.351,
            bypass_speedup_at_latency_1=0.1094,
            traffic_reduction=0.10,
        ),
    )
