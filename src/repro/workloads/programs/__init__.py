"""Synthetic models of the six Perfect Club programs the paper evaluates.

Each module exposes a single ``build()`` function returning a
:class:`~repro.workloads.program_model.ProgramModel` whose aggregate behaviour
(vectorization percentage, average vector length, spill traffic, memory- vs
compute-boundness, loop-carried dependences) approximates what the paper
reports for the real program.  See DESIGN.md for the substitution rationale
and EXPERIMENTS.md for the achieved-versus-published comparison.
"""

from repro.workloads.programs import arc2d, bdna, dyfesm, flo52, spec77, trfd

__all__ = ["arc2d", "bdna", "dyfesm", "flo52", "spec77", "trfd"]
