"""Synthetic model of TRFD (two-electron integral transformation, quantum chemistry).

TRFD has the shortest vectors of the suite (average vector length 22) and the
lowest vectorization (75.7 %, Table 1): every strip of vector work is
surrounded by a thick layer of scalar index arithmetic.  That combination
makes it very latency sensitive on the reference machine (30 % idle-port
cycles in Figure 1, one of the steepest REF curves in Figure 3) and gives it a
large bypass benefit (17.36 % at latency 1) and one of the biggest
memory-traffic reductions (>30 %, Figure 8), because a good share of its
vector memory traffic is spill of intermediate integral blocks.

The model pairs a short-vector transformation kernel that spills two vector
temporaries per iteration with a scalar-heavy index-generation kernel.
"""

from __future__ import annotations

from repro.workloads.kernel import KernelSchedule, LoopKernel, VectorStream
from repro.workloads.program_model import ProgramModel, ProgramTargets

#: Vector length of the TRFD kernels (Table 1 reports an average of 22).
VECTOR_LENGTH = 22


def build() -> ProgramModel:
    """Build the TRFD program model."""
    transform = LoopKernel(
        name="trfd_transform",
        elements=VECTOR_LENGTH * 4,
        max_vector_length=VECTOR_LENGTH,
        loads=(VectorStream("integrals"), VectorStream("coefficients")),
        stores=(VectorStream("transformed"),),
        fu_any_ops=2,
        fu2_ops=1,
        vector_spill_pairs=1,
        scalar_spill_pairs=2,
        address_ops=6,
        scalar_ops=30,
        scalar_loads=2,
    )
    indexing = LoopKernel(
        name="trfd_indexing",
        elements=VECTOR_LENGTH,
        max_vector_length=VECTOR_LENGTH,
        loads=(VectorStream("labels"),),
        fu_any_ops=1,
        address_ops=10,
        scalar_ops=110,
        scalar_spill_pairs=3,
        scalar_loads=2,
        scalar_stores=2,
    )
    return ProgramModel(
        name="TRFD",
        description=(
            "Two-electron integral transformation: short vectors wrapped in "
            "heavy scalar index arithmetic, with spilled integral blocks."
        ),
        schedules=(
            KernelSchedule(transform, repetitions=24),
            KernelSchedule(indexing, repetitions=24),
        ),
        targets=ProgramTargets(
            vectorization_percent=75.7,
            average_vector_length=22.0,
            ref_port_idle_fraction=0.302,
            bypass_speedup_at_latency_1=0.1736,
            traffic_reduction=0.30,
        ),
    )
