"""Synthetic model of FLO52 (transonic flow past an airfoil, multigrid Euler).

FLO52 is almost fully vectorized (97.1 %) with a medium average vector length
of 54 (Table 1).  Like ARC2D it keeps the reference machine's memory port busy
(only ~10.6 % idle-port cycles in Figure 1) but its shorter vectors make it a
little more latency sensitive.  It carries 11.9 % spill traffic and is the
program whose bypass configuration famously beats the single-port lower bound
in Figure 7 (9.3 % bypass speedup at latency 1), because the bypass acts as a
second memory port.

The model uses a flux-evaluation kernel and a smoothing kernel that spills one
vector temporary per iteration.
"""

from __future__ import annotations

from repro.workloads.kernel import KernelSchedule, LoopKernel, VectorStream
from repro.workloads.program_model import ProgramModel, ProgramTargets

#: Vector length of the FLO52 kernels (Table 1 reports an average of 54).
VECTOR_LENGTH = 54


def build() -> ProgramModel:
    """Build the FLO52 program model."""
    flux = LoopKernel(
        name="flo52_flux",
        elements=VECTOR_LENGTH * 8,
        max_vector_length=VECTOR_LENGTH,
        loads=(VectorStream("w"), VectorStream("p"), VectorStream("area")),
        stores=(VectorStream("flux"),),
        fu_any_ops=1,
        fu2_ops=1,
        address_ops=2,
        scalar_ops=2,
        scalar_loads=1,
    )
    smooth = LoopKernel(
        name="flo52_smooth",
        elements=VECTOR_LENGTH * 4,
        max_vector_length=VECTOR_LENGTH,
        loads=(VectorStream("w"), VectorStream("dw")),
        stores=(VectorStream("w"),),
        fu_any_ops=1,
        fu2_ops=1,
        vector_spill_pairs=1,
        address_ops=2,
        scalar_ops=2,
    )
    return ProgramModel(
        name="FLO52",
        description=(
            "Multigrid Euler solver for transonic flow: flux evaluation plus "
            "residual smoothing, highly vectorized with medium vectors."
        ),
        schedules=(
            KernelSchedule(flux, repetitions=10),
            KernelSchedule(smooth, repetitions=8),
        ),
        targets=ProgramTargets(
            vectorization_percent=97.1,
            average_vector_length=54.0,
            spill_fraction=0.119,
            ref_port_idle_fraction=0.1058,
            bypass_speedup_at_latency_1=0.0931,
            traffic_reduction=0.10,
        ),
    )
