"""The shared timing kernel both simulated machines are built on.

The reference and decoupled simulators used to hand-roll the same timing
machinery twice — register scoreboards with chain-start tracking, free-time
bookkeeping for functional units and the memory port, stall accounting, the
completion-horizon logic.  This package is that machinery as one tested
kernel:

* :class:`Scoreboard` — register ready/chain-start/owner tracking.
* :class:`ResourcePool` — *k* interchangeable units, each a free-time +
  :class:`~repro.common.intervals.IntervalRecorder` pair, with the seed's
  least-loaded/first-wins selection rule; :func:`occupancy_cycles` converts
  vector lengths to busy cycles for multi-lane units.
* :class:`StallAccountant` — named stall counters and per-category cycles.
* :class:`MemoryFabric` — the memory-port pool, the scalar cache in front of
  it, and traffic accounting, wired once for both machines.
* :class:`TimingCore` — composes the above with the completion horizon.

Everything works in one-pass timestamp arithmetic: simulators process the
trace once in program order and never step individual cycles, so a new
machine variant (more lanes, more ports, different queueing) is configuration
over these primitives rather than a new 400-line simulator.

Two control flows drive the primitives.  The default ``tick`` cores fold
every issue constraint into a running ``max``; the ``event`` cores
(:mod:`repro.engine.events`) register each constraint as a wakeup on a
:class:`WakeupScheduler` and jump the clock straight to the last one,
attributing every skipped span to the blocking resource.  Both produce
cycle-identical results — the golden suite and the differential fuzz
harness (``scripts/fuzz_cores.py``) pin the equivalence — so the core
selector never participates in store keys or the timing-model version.
"""

#: Version of the timing model the simulators implement on these primitives.
#: Any change that alters simulated numbers for an unchanged input — an issue
#: rule, a latency formula, a stall-accounting fix (such changes are exactly
#: what ``tests/golden`` exists to catch) — must bump this constant: it is
#: folded into every :mod:`repro.store` cache key, so bumping it keeps
#: results persisted by the old timing model from being served as hits.
#: v2: the columnar hot-loop restructuring — cycle-for-cycle identical (the
#: golden suite pins it), but results persisted by the record-at-a-time
#: implementation are not served as hits across the representation change.
TIMING_MODEL_VERSION = 2

from repro.engine.events import CORES, EventQueue, WakeupScheduler, validate_core
from repro.engine.memory import MemoryFabric, ScalarAccess
from repro.engine.resources import ResourcePool, occupancy_cycles
from repro.engine.scoreboard import RegisterEntry, Scoreboard
from repro.engine.stalls import StallAccountant
from repro.engine.timing import TimingCore

__all__ = [
    "CORES",
    "TIMING_MODEL_VERSION",
    "EventQueue",
    "MemoryFabric",
    "RegisterEntry",
    "ResourcePool",
    "ScalarAccess",
    "Scoreboard",
    "StallAccountant",
    "TimingCore",
    "WakeupScheduler",
    "occupancy_cycles",
    "validate_core",
]
