"""Free-time bookkeeping for groups of identical execution resources.

Functional units, memory ports and queue-move units all follow one pattern:
a request starts no earlier than both its operands and the unit allow, holds
the unit for some cycles, and the unit's next-free time moves forward.  The
seed simulators hand-rolled this as ``fu1_free``/``fu2_free``/``port_free``
integers paired with :class:`~repro.common.intervals.IntervalRecorder`\\ s (and
a ``setattr`` dance to write the right attribute back); :class:`ResourcePool`
is that pattern as a reusable object, generalized to *k* units so a
multi-lane or multi-port machine is a constructor argument, not a fork.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.intervals import IntervalRecorder


def occupancy_cycles(elements: int, lanes: int = 1) -> int:
    """Cycles a ``lanes``-wide unit needs to process ``elements`` elements.

    A zero-element request still costs one cycle (issuing it), matching the
    single-lane seed behaviour of ``max(elements, 1)``.
    """
    if lanes <= 0:
        raise ConfigurationError("a vector unit needs at least one lane")
    return max(-(-max(elements, 1) // lanes), 1)


class ResourcePool:
    """A named group of interchangeable units with per-unit free times.

    Each unit pairs a next-free cycle with an optional
    :class:`IntervalRecorder` of its busy intervals.  Selection among free
    units is least-loaded with the *first* unit winning ties — exactly the
    seed's ``fu1_free <= fu2_free`` rule, which golden tests pin.
    """

    def __init__(
        self,
        name: str,
        count: int = 1,
        unit_names: Optional[Sequence[str]] = None,
        record: bool = True,
    ) -> None:
        if count <= 0:
            raise ConfigurationError(f"resource pool {name!r} needs at least one unit")
        if unit_names is not None and len(unit_names) != count:
            raise ConfigurationError(
                f"resource pool {name!r}: {count} units but "
                f"{len(unit_names)} unit names"
            )
        self.name = name
        if unit_names is None:
            unit_names = [name] if count == 1 else [f"{name}{i}" for i in range(count)]
        self.unit_names: Tuple[str, ...] = tuple(unit_names)
        self.free: List[int] = [0] * count
        self.recorders: Optional[List[IntervalRecorder]] = (
            [IntervalRecorder(unit) for unit in self.unit_names] if record else None
        )

    def __len__(self) -> int:
        return len(self.free)

    # -- selection ---------------------------------------------------------------------

    def least_loaded(self) -> int:
        """Index of the unit that frees up first (first unit wins ties)."""
        return min(range(len(self.free)), key=self.free.__getitem__)

    def earliest_free(self) -> int:
        """Earliest cycle at which *some* unit is free."""
        return min(self.free)

    def latest_free(self) -> int:
        """Cycle at which *every* unit is free (the pool has gone quiet)."""
        return max(self.free)

    def free_time(self, unit: int = 0) -> int:
        """Next-free cycle of one specific unit."""
        return self.free[unit]

    # -- occupation --------------------------------------------------------------------

    def acquire(
        self, earliest: int, busy: int, unit: Optional[int] = None
    ) -> Tuple[int, int]:
        """Reserve a unit for ``busy`` cycles starting at the earliest legal cycle.

        Picks the least-loaded unit unless ``unit`` pins one (the seed's
        ``requires_fu2`` case).  Returns ``(start_cycle, unit_index)``.
        """
        if unit is None:
            unit = self.least_loaded()
        start = max(earliest, self.free[unit])
        self.occupy(start, start + busy, unit)
        return start, unit

    def occupy(self, start: int, end: int, unit: int = 0) -> None:
        """Mark one unit busy over ``[start, end)`` and move its free time.

        The lower-level sibling of :meth:`acquire`, for callers that compute
        the interval themselves (e.g. a processor whose issue pointer advances
        one cycle while the work it started runs longer).
        """
        if end < start:
            raise SimulationError(
                f"resource pool {self.name!r}: busy interval ends ({end}) "
                f"before it starts ({start})"
            )
        if self.recorders is not None:
            self.recorders[unit].record(start, end)
        if end > self.free[unit]:
            self.free[unit] = end

    # -- statistics --------------------------------------------------------------------

    def recorder(self, unit: int = 0) -> IntervalRecorder:
        """The busy-interval recorder of one unit."""
        if self.recorders is None:
            raise SimulationError(
                f"resource pool {self.name!r} was created with record=False"
            )
        return self.recorders[unit]

    def combined_recorder(self, name: Optional[str] = None) -> IntervalRecorder:
        """One recorder covering every unit ("is *any* unit busy?").

        With a single unit this is that unit's own recorder, so existing
        single-port results stay structurally identical to the seed's.
        """
        if self.recorders is None:
            raise SimulationError(
                f"resource pool {self.name!r} was created with record=False"
            )
        if len(self.recorders) == 1 and name is None:
            return self.recorders[0]
        combined = IntervalRecorder(name or self.name)
        for recorder in self.recorders:
            for interval in recorder:
                combined.record_interval(interval)
        return combined

    def busy_time(self) -> int:
        """Total busy cycles summed over all units."""
        if self.recorders is None:
            raise SimulationError(
                f"resource pool {self.name!r} was created with record=False"
            )
        return sum(recorder.busy_time() for recorder in self.recorders)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResourcePool(name={self.name!r}, free={self.free})"
