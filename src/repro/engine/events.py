"""Event-queue/next-wakeup scheduling for the skip-ahead timing cores.

The tick cores (:mod:`repro.refarch.simulator`, :mod:`repro.dva.simulator`)
decide each instruction's issue cycle by folding every constraint into a
running ``max`` as they encounter it.  The event cores invert that control
flow: each constraint — a scoreboard release, the memory bus freeing, a
queue slot draining, a pending store retiring — is registered as a *wakeup*
on a :class:`WakeupScheduler`, and one :meth:`~WakeupScheduler.jump` pops the
wakeups in cycle order and moves the consumer's clock straight to the last
one.  Because the pops come back time-sorted, every cycle skipped between
two wakeups is unambiguously the fault of the *next* wakeup's resource, so
the scheduler attributes each skipped span to the blocking resource's tag as
it jumps — stall accounting stays exact without ever visiting the idle
cycles one by one.

Two invariants make the attribution trustworthy (property-tested in
``tests/engine/test_event_queue.py``):

* pops are monotonically non-decreasing in time, FIFO among equal times, and
  a wakeup is never lost — two resources freeing on the same cycle both pop,
  the second with a zero-cycle span;
* over one :meth:`~WakeupScheduler.jump`, the attributed spans sum exactly
  to ``final − start`` (zero when every wakeup is already in the past).

The schedulers are diagnostic machinery layered *beside* the shared
primitives, not a second timing model: the event cores drive the same
:class:`~repro.engine.Scoreboard`/:class:`~repro.engine.ResourcePool`/
:class:`~repro.engine.MemoryFabric` state through the same mutations in the
same order, which is why their results are cycle-identical to the tick
cores (the golden suite and the differential fuzz harness pin this).
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Tuple

from repro.common.errors import ConfigurationError, SimulationError

#: The timing-core implementations a simulator can run on.  ``tick`` is the
#: oracle — the original one-pass max-folding control flow; ``event`` is the
#: wakeup-scheduler control flow of this module.  Results are identical by
#: contract, so the selector never participates in store keys.
CORES: Tuple[str, ...] = ("tick", "event")


def validate_core(core: str) -> str:
    """Return ``core`` if it names a known timing core, else raise."""
    if core not in CORES:
        raise ConfigurationError(
            f"unknown timing core {core!r} (known: {', '.join(CORES)})"
        )
    return core


class EventQueue:
    """A min-heap of ``(cycle, tag)`` wakeups with FIFO tie-breaking.

    Tags are opaque labels for the resource that scheduled the wakeup (a
    string in the simulators).  Equal-time wakeups pop in insertion order —
    a monotonically increasing sequence number breaks heap ties, so tags
    never need to be comparable — and pop times are guarded to be
    non-decreasing within one *drain* (between :meth:`reset_guard` calls):
    a consumer that drains the queue per jump may then register wakeups in
    the past for its next jump, which is legal, but out-of-order pops inside
    a single drain are a scheduling bug.
    """

    __slots__ = ("_heap", "_pushes", "last_popped")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Hashable]] = []
        self._pushes = 0
        self.last_popped: Optional[int] = None

    def push(self, time: int, tag: Hashable) -> None:
        """Register a wakeup at ``time`` attributed to ``tag``."""
        heapq.heappush(self._heap, (time, self._pushes, tag))
        self._pushes += 1

    def pop(self) -> Tuple[int, Hashable]:
        """Remove and return the earliest ``(time, tag)`` wakeup."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        time, _sequence, tag = heapq.heappop(self._heap)
        if self.last_popped is not None and time < self.last_popped:
            raise SimulationError(
                f"event queue popped time {time} after {self.last_popped}; "
                "wakeup order must be non-decreasing within a drain"
            )
        self.last_popped = time
        return time, tag

    def reset_guard(self) -> None:
        """Start a fresh drain: the next pop may restart from any cycle."""
        self.last_popped = None

    def peek_time(self) -> int:
        """Cycle of the earliest registered wakeup."""
        if not self._heap:
            raise SimulationError("peek into an empty event queue")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class WakeupScheduler:
    """One consumer's skip-ahead clock over an :class:`EventQueue`.

    The consumer registers every cycle something it is waiting on becomes
    available (:meth:`wake`), then :meth:`jump` drains the registered
    wakeups in cycle order starting from ``start``, attributes each
    incremental skipped span to the wakeup's tag in :attr:`spans`, and
    returns the final cycle — ``max(start, *wakeups)``, computed by jumping
    rather than folding.  Wakeups at or before the moving clock pop with a
    zero-cycle span (the resource was not the bottleneck but is still
    recorded, so no wakeup is ever lost).

    :attr:`spans` accumulates across jumps: after a full simulation it is
    the per-resource breakdown of every cycle this consumer skipped.
    """

    __slots__ = ("events", "spans", "now")

    def __init__(self) -> None:
        self.events = EventQueue()
        self.spans: Dict[Hashable, int] = {}
        self.now = 0

    def wake(self, time: int, tag: Hashable) -> None:
        """Register that ``tag`` becomes available at ``time``."""
        self.events.push(time, tag)

    def jump(self, start: int) -> int:
        """Drain every pending wakeup and return the resulting cycle.

        Starting the clock at ``start``, each wakeup later than the clock
        advances it and charges the skipped span to the wakeup's tag; the
        attributed spans of one jump sum exactly to ``final − start``.
        """
        clock = start
        events = self.events
        events.reset_guard()
        spans = self.spans
        while events:
            time, tag = events.pop()
            if time > clock:
                spans[tag] = spans.get(tag, 0) + (time - clock)
                clock = time
            elif tag not in spans:
                spans[tag] = 0
        self.now = clock
        return clock

    def total_skipped(self) -> int:
        """Every cycle this consumer ever skipped, summed over all tags."""
        return sum(self.spans.values())


__all__ = [
    "CORES",
    "EventQueue",
    "WakeupScheduler",
    "validate_core",
]
