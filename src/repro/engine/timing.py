"""The timing core: scoreboard + resource pools + stalls + completion horizon.

:class:`TimingCore` composes the engine primitives every one-pass simulator
needs.  The horizon is the latest completion any issued work has reached; a
machine's total execution time is the maximum of the horizon and whatever
per-machine pointers (dispatcher, processors, ports) are still moving.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.engine.resources import ResourcePool
from repro.engine.scoreboard import Scoreboard
from repro.engine.stalls import StallAccountant
from repro.isa.registers import Register


class TimingCore:
    """Shared mutable state of one event-driven simulation."""

    def __init__(
        self,
        default_owner: Optional[Callable[[Register], Hashable]] = None,
    ) -> None:
        self.scoreboard = Scoreboard(default_owner)
        self.stalls = StallAccountant()
        self.pools: Dict[str, ResourcePool] = {}
        self.horizon = 0

    # -- resource pools ----------------------------------------------------------------

    def add_pool(
        self,
        name: str,
        count: int = 1,
        unit_names: Optional[Sequence[str]] = None,
        record: bool = True,
    ) -> ResourcePool:
        """Create and register a named :class:`ResourcePool`."""
        if name in self.pools:
            raise ConfigurationError(f"resource pool {name!r} already exists")
        pool = ResourcePool(name, count=count, unit_names=unit_names, record=record)
        self.pools[name] = pool
        return pool

    def pool(self, name: str) -> ResourcePool:
        try:
            return self.pools[name]
        except KeyError as exc:
            known = ", ".join(sorted(self.pools))
            raise ConfigurationError(
                f"unknown resource pool {name!r} (known: {known})"
            ) from exc

    # -- completion horizon ------------------------------------------------------------

    def bump(self, completion: int) -> None:
        """Extend the completion horizon to ``completion`` if it is later."""
        if completion > self.horizon:
            self.horizon = completion

    def finish_time(self, *pointers: int) -> int:
        """Total execution time: the horizon plus any still-moving pointers."""
        return max(self.horizon, *pointers) if pointers else self.horizon
