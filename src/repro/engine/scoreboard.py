"""Register availability tracking shared by every simulated machine.

Both simulators keep, per architectural register, the cycle at which its value
is fully written and — when the producer supports chaining — the cycle at
which its *first* element becomes available.  The decoupled machine adds a
third fact: which processor owns the value, because reading a value produced
on another processor costs a queue traversal.  :class:`Scoreboard` models all
three so one implementation serves machines with and without ownership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional

from repro.isa.registers import Register


@dataclass(slots=True)
class RegisterEntry:
    """Availability of one architectural register.

    Attributes:
        ready: cycle at which the value is fully written.
        chain_start: cycle at which the first element is available to a
            chaining consumer, or ``None`` when the producer is not chainable.
        owner: token identifying who produced the value (``None`` on machines
            without the concept, e.g. the reference architecture).
    """

    ready: int = 0
    chain_start: Optional[int] = None
    owner: Optional[Hashable] = None


class Scoreboard:
    """Ready/chain-start/owner tracking for the architectural register file.

    ``default_owner`` assigns an owner to registers that are read before ever
    being written (machine state at cycle 0); machines without ownership leave
    it ``None`` and never pass ``consumer`` to :meth:`read`.
    """

    def __init__(
        self, default_owner: Optional[Callable[[Register], Hashable]] = None
    ) -> None:
        self._entries: Dict[Register, RegisterEntry] = {}
        self._default_owner = default_owner

    def entry(self, register: Register) -> RegisterEntry:
        """The (created-on-demand) entry for ``register``."""
        entry = self._entries.get(register)
        if entry is None:
            owner = self._default_owner(register) if self._default_owner else None
            entry = RegisterEntry(owner=owner)
            self._entries[register] = entry
        return entry

    def read(
        self,
        register: Register,
        *,
        consumer: Optional[Hashable] = None,
        allow_chain: bool = False,
        cross_delay: int = 0,
    ) -> int:
        """Cycle at which a consumer may use ``register``.

        Chaining applies only when the consumer asks for it and the value is
        local (same owner, or ownership untracked).  A value owned by another
        producer arrives ``cross_delay`` cycles after it is fully written.

        The entry lookup is inlined (rather than delegated to :meth:`entry`)
        because this method runs once per operand of every traced
        instruction.
        """
        entry = self._entries.get(register)
        if entry is None:
            owner = self._default_owner(register) if self._default_owner else None
            entry = RegisterEntry(owner=owner)
            self._entries[register] = entry
        if consumer is not None and entry.owner is not consumer:
            return entry.ready + cross_delay
        if allow_chain and entry.chain_start is not None:
            return entry.chain_start
        return entry.ready

    def write(
        self,
        register: Register,
        ready: int,
        *,
        chain_start: Optional[int] = None,
        owner: Optional[Hashable] = None,
    ) -> None:
        """Record a new value: fully written at ``ready``.

        ``chain_start=None`` marks the value non-chainable (every write
        resolves chainability anew).  ``owner=None`` keeps the current owner.
        """
        entry = self._entries.get(register)
        if entry is None:
            default = self._default_owner(register) if self._default_owner else None
            entry = RegisterEntry(owner=default)
            self._entries[register] = entry
        entry.ready = ready
        entry.chain_start = chain_start
        if owner is not None:
            entry.owner = owner

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, register: Register) -> bool:
        return register in self._entries
