"""Stall and busy-cycle accounting shared by every simulated machine.

The reference machine counts cycles its dispatcher spends blocked and
attributes execution cycles to instruction categories; the decoupled machine
counts cycles its fetch processor spends blocked on full instruction queues.
:class:`StallAccountant` is the common ledger for both: named stall counters
plus named busy-cycle categories.
"""

from __future__ import annotations

from typing import Dict


class StallAccountant:
    """Named stall counters and per-category cycle accounting."""

    def __init__(self) -> None:
        self.stall_cycles: Dict[str, int] = {}
        self.category_cycles: Dict[str, int] = {}

    # -- stalls ------------------------------------------------------------------------

    def stall(self, kind: str, cycles: int) -> None:
        """Charge ``cycles`` of stall to ``kind`` (negative charges clamp to 0)."""
        if cycles > 0:
            self.stall_cycles[kind] = self.stall_cycles.get(kind, 0) + cycles

    def stalls(self, kind: str) -> int:
        """Total stall cycles charged to ``kind``."""
        return self.stall_cycles.get(kind, 0)

    # -- busy categories ---------------------------------------------------------------

    def account(self, category: str, cycles: int) -> None:
        """Attribute ``cycles`` of execution to ``category``."""
        self.category_cycles[category] = self.category_cycles.get(category, 0) + cycles

    def total(self, category: str) -> int:
        """Total cycles attributed to ``category``."""
        return self.category_cycles.get(category, 0)

    def categories(self) -> Dict[str, int]:
        """A copy of the per-category totals (safe to embed in results)."""
        return dict(self.category_cycles)
