"""The engine-level memory interface.

Everything a simulated machine's issue rules need from the memory system sits
behind :class:`MemoryFabric`: the (possibly multi-unit) memory-port pool, the
scalar cache that filters scalar references away from the port, and traffic
accounting.  The seed simulators wired :class:`~repro.memory.model.MemoryModel`
and :class:`~repro.memory.scalar_cache.ScalarCache` together differently in
``refarch`` and in the DVA's :class:`~repro.dva.address.MemoryPipeline`; both
now share this one wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import SimulationError
from repro.common.intervals import IntervalRecorder
from repro.engine.resources import ResourcePool
from repro.memory.model import MemoryModel
from repro.memory.scalar_cache import ScalarCache, ScalarCacheConfig
from repro.trace.record import DynamicInstruction


@dataclass(frozen=True)
class ScalarAccess:
    """Outcome of presenting one scalar reference to the cache."""

    hit: bool
    uses_port: bool


class MemoryFabric:
    """Port pool, scalar cache and traffic accounting for one machine.

    ``ports`` widens the memory port: every bus occupation picks the
    least-loaded port unit, so a dual-port machine is a constructor argument
    rather than a simulator fork.  With one port the timing degenerates to the
    seed's single ``port_free`` integer exactly.
    """

    def __init__(
        self,
        memory: MemoryModel,
        cache_config: Optional[ScalarCacheConfig] = None,
        ports: int = 1,
        scalar_store_writes_through: bool = False,
    ) -> None:
        self.memory = memory
        self.cache = ScalarCache(cache_config)
        self.ports = ResourcePool("LD", ports)
        self.scalar_store_writes_through = scalar_store_writes_through
        self.traffic_bytes = 0

    @property
    def latency(self) -> int:
        return self.memory.latency

    def port_free(self) -> int:
        """Earliest cycle at which some port unit is free."""
        return self.ports.earliest_free()

    def port_quiet(self) -> int:
        """Cycle at which every port unit has finished (wind-down accounting)."""
        return self.ports.latest_free()

    def port_recorder(self) -> IntervalRecorder:
        """Busy intervals of the port ("any unit busy" when multi-port)."""
        return self.ports.combined_recorder()

    # -- scalar cache ------------------------------------------------------------------

    def scalar_access_at(self, address: int, is_store: bool) -> ScalarAccess:
        """Present one scalar reference to the cache; decide port usage.

        Loads use the port only on a miss.  Stores additionally use it on a
        hit when the machine writes through (both seed machines shared this
        policy, each with its own copy of the code).
        """
        hit = self.cache.access(address)
        uses_port = not hit
        if is_store and self.scalar_store_writes_through:
            uses_port = True
        return ScalarAccess(hit=hit, uses_port=uses_port)

    def scalar_access(self, record: DynamicInstruction) -> ScalarAccess:
        """Record-object form of :meth:`scalar_access_at`."""
        if record.base_address is None:
            raise SimulationError(f"scalar memory access without address: {record}")
        return self.scalar_access_at(record.base_address, record.instruction.is_store)

    def scalar_load_ready(self, access: ScalarAccess, start: int) -> int:
        """Cycle a scalar load's value arrives, given its bus/issue start."""
        if access.hit:
            return start + self.cache.config.hit_latency
        return start + 1 + self.memory.latency

    # -- bus occupation ----------------------------------------------------------------

    def occupy_bus(self, earliest: int, cycles: int, traffic: int) -> Tuple[int, int]:
        """Drive one reference over a port for ``cycles``; return ``(start, end)``.

        This is the hot-loop primitive: the caller supplies the bus occupancy
        and the bytes moved (both derived from trace columns), the fabric
        picks the least-loaded port unit and accounts the traffic.
        """
        start, _unit = self.ports.acquire(earliest, cycles)
        self.traffic_bytes += traffic
        return start, start + cycles

    def occupy_scalar_bus(
        self, earliest: int, record: DynamicInstruction
    ) -> Tuple[int, int]:
        """Drive one scalar reference over a port; return ``(start, end)``."""
        return self.occupy_bus(
            earliest,
            self.memory.timings.scalar_bus_cycles,
            self.memory.traffic_bytes(record),
        )

    def occupy_vector_bus(
        self, earliest: int, record: DynamicInstruction
    ) -> Tuple[int, int]:
        """Drive one vector reference over a port; return ``(start, end)``."""
        return self.occupy_bus(
            earliest,
            self.memory.bus_occupancy(record),
            self.memory.traffic_bytes(record),
        )
