"""The cluster worker: claim, simulate, store, repeat.

A :class:`ClusterWorker` is one process cooperating on a distributed sweep
(``repro worker`` on the command line).  It owns no sockets and speaks no
protocol — the shared store directory *is* the coordination substrate:

1. load the sweep's manifest (:mod:`repro.cluster.manifest`);
2. walk the unfinished cells costliest first; for each, first check the
   store (another worker may have finished it), then race an atomic claim
   (:mod:`repro.cluster.claims`), then — for cells whose claim has expired —
   steal the dead holder's lease;
3. simulate won cells exactly the way the in-process runner does (one
   per-worker :class:`~repro.core.experiment.TraceCache`, so cells of the
   same program share a trace build), write the result through the
   :class:`~repro.store.ResultStore`, and release the claim;
4. loop until every manifest cell resolves in the store.

A heartbeat thread refreshes the leases of held claims and rewrites the
worker's status file (``workers/<id>.json`` next to the manifest) with its
claim/steal/complete counters, so ``repro cluster status`` and the
coordinator can see who is alive and who stopped beating.

Before simulating, the worker *recomputes* the cell's content-addressed key
from the manifest's (program, scale, latency, architecture) and refuses the
cell if it disagrees with the manifest — a worker running different
trace-generator or timing-model code must never publish results under the
coordinator's keys.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.common.errors import ReproError
from repro.core.config import RunConfig
from repro.core.experiment import TraceCache
from repro.core.registry import resolve_architecture
from repro.core.result import RunResult
from repro.store import ResultStore, cell_key
from repro.cluster.claims import DEFAULT_LEASE_SECONDS, ClaimSet, Heartbeat
from repro.cluster.manifest import (
    ClusterError,
    Manifest,
    ManifestCell,
    claims_dir,
    list_sweep_ids,
    load_manifest,
    remaining_cells,
    workers_dir,
)

#: Version of the worker status payload.
WORKER_STATUS_FORMAT_VERSION = 1


def default_worker_id() -> str:
    """A host-unique worker identity (``<hostname>-<pid>``)."""
    host = "".join(
        ch if ch.isalnum() or ch in "-_." else "-" for ch in socket.gethostname()
    )
    return f"{host or 'host'}-{os.getpid()}"


class ClusterWorker:
    """One cooperating worker process of a distributed sweep.

    Args:
        store: the shared result store (an instance or a directory path).
        worker_id: identity used in claim files and the status file;
            defaults to ``<hostname>-<pid>``, unique per process.
        lease_seconds: how long a held claim stays valid without a
            heartbeat; crashed workers' cells become stealable after this.
        poll_seconds: sleep between passes when every unfinished cell is
            validly claimed by someone else.
    """

    def __init__(
        self,
        store: Union[ResultStore, str, Path],
        worker_id: Optional[str] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        poll_seconds: float = 0.05,
    ) -> None:
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.worker_id = worker_id if worker_id else default_worker_id()
        if "/" in self.worker_id:
            raise ClusterError(f"worker id {self.worker_id!r} is not filesystem-safe")
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        self.config = RunConfig()
        self.trace_cache = TraceCache()
        self.started_unix = time.time()
        # Lifetime counters, across every sweep this worker serves.
        self.claimed = 0
        self.stolen = 0
        self.completed = 0
        self.observed_done = 0
        self.failed = 0
        self.errors: List[Dict[str, str]] = []
        self._status_dir: Optional[Path] = None
        self._current_sweep: Optional[str] = None
        self._active_claims: Optional[ClaimSet] = None

    # -- status reporting --------------------------------------------------------------

    def status_payload(self) -> Dict[str, object]:
        # Claim/steal bookkeeping lives in the current sweep's ClaimSet until
        # run_sweep folds it into the lifetime counters on the way out; the
        # live view must include it, because a worker terminated mid-sweep
        # (the coordinator reaps idle workers with SIGTERM) never reaches
        # that fold — its last heartbeat write is all the record there is.
        claimed, stolen = self.claimed, self.stolen
        active = self._active_claims
        if active is not None:
            claimed += active.claimed
            stolen += active.stolen
        return {
            "format": WORKER_STATUS_FORMAT_VERSION,
            "worker": self.worker_id,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "sweep": self._current_sweep,
            "lease_seconds": self.lease_seconds,
            "started_unix": round(self.started_unix, 3),
            "updated_unix": round(time.time(), 3),
            "counters": {
                "claimed": claimed,
                "stolen": stolen,
                "completed": self.completed,
                "observed_done": self.observed_done,
                "failed": self.failed,
            },
            "errors": self.errors[-8:],
        }

    def write_status(self) -> None:
        """Atomically rewrite this worker's status file (heartbeat cadence)."""
        directory = self._status_dir
        if directory is None:
            return
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self.status_payload(), handle, indent=2)
            os.replace(tmp_name, directory / f"{self.worker_id}.json")
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- cell execution ----------------------------------------------------------------

    def _execute(self, cell: ManifestCell) -> Optional[RunResult]:
        """Simulate one claimed cell and persist it; ``None`` on refusal.

        Refusals (unknown architecture, key mismatch, simulator failure) are
        recorded in the status file and the claim is left to *expire* rather
        than being released: an immediate release would make every other
        worker instantly retry a cell that just failed deterministically,
        while an expiring claim retries at lease cadence — and lets a
        version-skewed worker's cells fall to correctly-versioned peers.
        """
        try:
            simulator = resolve_architecture(cell.architecture)
            recomputed = cell_key(
                cell.program, cell.scale, cell.latency, simulator, self.config
            )
            if recomputed != cell.key:
                raise ClusterError(
                    f"cell key mismatch for {cell.program} lat={cell.latency} "
                    f"{cell.architecture}: manifest {cell.key[:12]}..., this "
                    f"worker derives {str(recomputed)[:12]}... (coordinator "
                    "and worker must run the same repro version)"
                )
            trace = self.trace_cache.get(cell.program, cell.scale)
            result = simulator.simulate(
                trace, self.config.with_latency(cell.latency)
            )
            result = replace(result, store_key=cell.key)
            self.store.put(cell.key, result, scale=cell.scale)
        except ReproError as exc:
            self.failed += 1
            self.errors.append({"key": cell.key, "error": f"{type(exc).__name__}: {exc}"})
            self.write_status()
            return None
        self.completed += 1
        return result

    # -- the work loop -----------------------------------------------------------------

    def run_sweep(
        self,
        sweep_id: str,
        manifest: Optional[Manifest] = None,
        wait: bool = True,
    ) -> Dict[str, int]:
        """Work on one sweep until its manifest drains; returns the counters.

        With ``wait=False`` the worker returns as soon as a full pass over
        the manifest finds nothing to do — every unfinished cell validly
        claimed by a live peer — instead of idling until those peers finish
        (or die and get stolen from).
        """
        if manifest is None:
            manifest = load_manifest(self.store, sweep_id)
        claims = ClaimSet(
            claims_dir(self.store, sweep_id), self.worker_id, self.lease_seconds
        )
        self._status_dir = workers_dir(self.store, sweep_id)
        self._current_sweep = sweep_id
        self._active_claims = claims
        self.write_status()
        remaining: Dict[str, ManifestCell] = {
            cell.key: cell for cell in manifest.cells
        }
        written: List[RunResult] = []
        heartbeat = Heartbeat(claims, on_beat=self.write_status)
        try:
            with heartbeat:
                while remaining:
                    progress = False
                    for cell in list(remaining.values()):
                        if cell.key in self.store:
                            remaining.pop(cell.key)
                            self.observed_done += 1
                            progress = True
                            continue
                        won = claims.try_claim(cell.key) or claims.try_steal(cell.key)
                        if not won:
                            continue
                        # Claim races with completion: re-check before the
                        # expensive part so a just-finished cell is not
                        # simulated again.
                        if cell.key in self.store:
                            claims.release(cell.key)
                            remaining.pop(cell.key)
                            self.observed_done += 1
                            progress = True
                            continue
                        result = self._execute(cell)
                        remaining.pop(cell.key)
                        progress = True
                        if result is not None:
                            claims.release(cell.key)
                            written.append(result)
                            self.write_status()
                        else:
                            # Refused: leave the claim to expire (see
                            # _execute) but stop heartbeating it.
                            claims.abandon(cell.key)
                    if remaining and not progress:
                        if not wait:
                            break
                        time.sleep(self.poll_seconds)
        finally:
            self._active_claims = None
            self.claimed += claims.claimed
            self.stolen += claims.stolen
            # Claims of refused cells stay behind deliberately (see
            # _execute); everything else was released on completion.
            if written:
                self.store.update_index(
                    [(result.store_key, result) for result in written],
                    scale=manifest_scale(manifest),
                )
            self.write_status()
        return dict(self.status_payload()["counters"])  # type: ignore[arg-type]

    def run(
        self,
        sweep_ids: Optional[List[str]] = None,
        once: bool = False,
        poll_seconds: float = 0.5,
    ) -> Dict[str, int]:
        """Serve sweeps: the given ones, or whatever manifests the store has.

        With ``once=True`` the worker makes one pass — every known manifest
        driven to drained — and returns.  Otherwise it keeps polling the
        cluster directory for new manifests until interrupted, which is the
        ``repro worker`` daemon mode: start workers on any number of hosts
        sharing the store directory and feed them by writing manifests.
        """
        explicit = sweep_ids is not None
        while True:
            ids = sweep_ids if explicit else list_sweep_ids(self.store)
            worked = False
            for sweep_id in ids or ():
                manifest = load_manifest(self.store, sweep_id)
                if not remaining_cells(manifest, self.store):
                    continue
                worked = True
                self.run_sweep(sweep_id, manifest=manifest)
            if once or explicit:
                break
            if not worked:
                time.sleep(poll_seconds)
        return dict(self.status_payload()["counters"])  # type: ignore[arg-type]


def manifest_scale(manifest: Manifest) -> float:
    """The sweep's trace scale (cells of one sweep share it by construction)."""
    if manifest.cells:
        return manifest.cells[0].scale
    spec_scale = manifest.spec.get("scale", 1.0)
    return float(spec_scale) if isinstance(spec_scale, (int, float)) else 1.0
