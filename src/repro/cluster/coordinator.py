"""The cluster coordinator: manifest out, workers loose, results assembled.

A :class:`ClusterCoordinator` turns a :class:`~repro.core.experiment.SweepSpec`
into a shared work queue and back into a :class:`~repro.core.experiment.SweepResult`:

* :meth:`~ClusterCoordinator.prepare` resolves the grid, answers what it can
  from the store, and publishes the rest as a cost-ranked manifest;
* :meth:`~ClusterCoordinator.wait` polls the store until every manifest cell
  resolves, firing per-cell progress, watching worker status files for
  reported failures and — when the coordinator spawned the workers itself —
  for a fleet that died with work outstanding;
* :meth:`~ClusterCoordinator.assemble` reads the full grid back out of the
  store in grid order, producing a sweep result golden-identical to a serial
  run (the store is provenance-only by construction);
* :meth:`~ClusterCoordinator.run_distributed` composes the three around a
  fleet of spawned ``repro worker`` subprocesses — the one-machine,
  N-process mode the bench and CI exercise.  Workers on *other* hosts join
  the same sweep by pointing ``repro worker`` at the shared store directory;
  the coordinator cannot tell the difference and does not need to.

This module also carries the cluster's two maintenance surfaces:
:func:`cluster_status` (behind ``repro cluster status`` and the service's
``/v1/stats``) and :func:`reap_cluster` (behind ``repro cache gc``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import RunConfig
from repro.core.experiment import (
    CellProgress,
    ProgressCallback,
    SweepResult,
    SweepSpec,
    estimate_cell_cost,
    resolve_sweep_machines,
)
from repro.core.result import RunResult
from repro.store import ResultStore, cell_key
from repro.workloads.perfect_club import load_program
from repro.cluster.claims import DEFAULT_LEASE_SECONDS, read_claim
from repro.cluster.manifest import (
    ClusterError,
    Manifest,
    ManifestCell,
    claims_dir,
    cluster_root,
    list_sweep_ids,
    load_manifest,
    new_sweep_id,
    remaining_cells,
    sweep_dir,
    workers_dir,
)


@dataclass
class PreparedSweep:
    """One sweep, resolved and (if needed) published for workers.

    ``grid`` holds every cell in grid order as ``(program, latency, label,
    key)``; ``hits`` the results the store answered at preparation time; the
    ``manifest`` (``None`` when the sweep was fully warm) everything left
    for the cluster to simulate.
    """

    sweep_id: str
    spec: SweepSpec
    config: RunConfig
    grid: List[Tuple[str, int, str, str]]
    hits: Dict[str, RunResult]
    manifest: Optional[Manifest]

    @property
    def total(self) -> int:
        return len(self.grid)

    @property
    def unfinished(self) -> int:
        return len(self.manifest.cells) if self.manifest is not None else 0


class _Progress:
    """Counts finished cells for the coordinator's progress callback."""

    def __init__(self, callback: Optional[ProgressCallback], total: int) -> None:
        self.callback = callback
        self.total = total
        self.done = 0
        self.cached = 0
        self.simulated = 0

    def report(
        self, program: str, latency: int, architecture: str, from_store: bool
    ) -> None:
        self.done += 1
        if from_store:
            self.cached += 1
        else:
            self.simulated += 1
        if self.callback is not None:
            self.callback(
                CellProgress(
                    done=self.done,
                    total=self.total,
                    cached=self.cached,
                    simulated=self.simulated,
                    program=program,
                    latency=latency,
                    architecture=architecture,
                    from_store=from_store,
                )
            )


class ClusterCoordinator:
    """Drives one distributed sweep through a shared store directory."""

    def __init__(
        self,
        store: Union[ResultStore, str, Path],
        poll_seconds: float = 0.05,
    ) -> None:
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.poll_seconds = poll_seconds

    # -- phase 1: publish --------------------------------------------------------------

    def prepare(
        self, spec: SweepSpec, sweep_id: Optional[str] = None
    ) -> PreparedSweep:
        """Resolve the grid, split it into store hits and manifest cells.

        Distributed sweeps run the default :class:`RunConfig` — the same
        contract as CLI sweeps and the service — because workers recompute
        cell keys independently and a side-channel configuration would break
        that symmetry.  Every cell must be cacheable (spec-backed machines):
        an uncacheable cell has no content-addressed identity for workers to
        rendezvous on, so it is rejected here, before anything is published.
        """
        config = RunConfig()
        for program in spec.programs:
            load_program(program)  # fail fast on unknown programs
        machines = resolve_sweep_machines(spec)
        pairs = [
            (latency, simulator)
            for latency in spec.latencies
            for simulator in machines
        ]
        grid: List[Tuple[str, int, str, str]] = []
        hits: Dict[str, RunResult] = {}
        pending: Dict[str, ManifestCell] = {}
        for program in spec.programs:
            for latency, simulator in pairs:
                key = cell_key(program, spec.scale, latency, simulator, config)
                if key is None:
                    raise ClusterError(
                        f"cell ({program}, {latency}, {simulator.name}) is not "
                        "cacheable; distributed sweeps need spec-backed "
                        "machines (the cell key is the cluster's unit of "
                        "coordination)"
                    )
                grid.append((program, latency, simulator.name, key))
                if key in hits or key in pending:
                    continue
                found = self.store.get(key)
                if found is not None:
                    hits[key] = found
                    continue
                pending[key] = ManifestCell(
                    key=key,
                    program=program,
                    latency=latency,
                    architecture=simulator.name,
                    scale=spec.scale,
                    cost=estimate_cell_cost(program, spec.scale, latency),
                )
        cells = list(pending.values())
        manifest: Optional[Manifest] = None
        if cells:
            manifest = Manifest(
                sweep_id=sweep_id if sweep_id else new_sweep_id(),
                spec={
                    "programs": list(spec.programs),
                    "latencies": list(spec.latencies),
                    "architectures": list(spec.architectures),
                    "scale": spec.scale,
                    "axes": [[name, list(values)] for name, values in spec.axes],
                },
                created_unix=time.time(),
                cells=tuple(cells),
            )
            manifest.write(self.store)
        return PreparedSweep(
            sweep_id=manifest.sweep_id if manifest is not None else (sweep_id or "warm"),
            spec=spec,
            config=config,
            grid=grid,
            hits=hits,
            manifest=manifest,
        )

    # -- phase 2: drain ----------------------------------------------------------------

    def wait(
        self,
        prepared: PreparedSweep,
        timeout: Optional[float] = None,
        progress: Optional[ProgressCallback] = None,
        procs: Sequence["subprocess.Popen"] = (),
        _tracker: Optional[_Progress] = None,
    ) -> None:
        """Block until every manifest cell resolves in the store.

        Raises :class:`ClusterError` when the sweep can no longer finish:
        every unfinished cell has a failure reported against it in some
        worker's status file, every coordinator-spawned worker process has
        exited with cells outstanding, or ``timeout`` elapsed.
        """
        tracker = _tracker if _tracker is not None else _Progress(
            progress, prepared.total
        )
        if _tracker is None:
            for program, latency, label, key in prepared.grid:
                if key in prepared.hits:
                    tracker.report(program, latency, label, from_store=True)
        if prepared.manifest is None:
            return
        remaining: Dict[str, ManifestCell] = {
            cell.key: cell for cell in prepared.manifest.cells
        }
        # Progress counts *grid* cells; a key normally backs exactly one but
        # degenerate specs (repeated latencies) can fold several onto it.
        multiplicity: Dict[str, int] = {}
        for _program, _latency, _label, key in prepared.grid:
            if key in remaining:
                multiplicity[key] = multiplicity.get(key, 0) + 1
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        sweep_id = prepared.manifest.sweep_id
        while remaining:
            for key in list(remaining):
                if key in self.store:
                    cell = remaining.pop(key)
                    for _ in range(multiplicity.get(key, 1)):
                        tracker.report(
                            cell.program, cell.latency, cell.architecture,
                            from_store=False,
                        )
            if not remaining:
                return
            failed = self._failed_keys(sweep_id)
            if failed and set(remaining) <= failed.keys():
                details = "; ".join(
                    failed[key] for key in list(remaining)[:3]
                )
                raise ClusterError(
                    f"sweep {sweep_id}: all {len(remaining)} unfinished "
                    f"cells failed on every worker that tried ({details})"
                )
            if procs and all(proc.poll() is not None for proc in procs):
                # The fleet is gone.  One final store re-check closes the
                # race where the last worker wrote results and exited
                # between our store pass and the poll.
                if any(key in self.store for key in remaining):
                    continue
                codes = [proc.returncode for proc in procs]
                raise ClusterError(
                    f"sweep {sweep_id}: all {len(procs)} workers exited "
                    f"(return codes {codes}) with {len(remaining)} cells "
                    "unfinished"
                )
            if deadline is not None and time.monotonic() >= deadline:
                raise ClusterError(
                    f"sweep {sweep_id}: timed out with {len(remaining)} of "
                    f"{prepared.unfinished} cells unfinished"
                )
            time.sleep(self.poll_seconds)

    def _failed_keys(self, sweep_id: str) -> Dict[str, str]:
        """Cell keys some worker reported a failure for, with the messages."""
        failed: Dict[str, str] = {}
        for status in read_worker_statuses(self.store, sweep_id):
            for error in status.get("errors", ()):
                if isinstance(error, dict) and "key" in error:
                    failed[str(error["key"])] = str(error.get("error", "?"))
        return failed

    # -- phase 3: collect --------------------------------------------------------------

    def assemble(self, prepared: PreparedSweep) -> SweepResult:
        """Read the full grid out of the store, in grid order.

        Manifest cells come back marked ``cached=False``: the store is how
        their results travelled, but *this* sweep simulated them — so the
        cached/simulated split matches what a serial run would report, and
        the assembled :class:`SweepResult` is golden-identical to one.
        """
        results: List[RunResult] = []
        for program, latency, label, key in prepared.grid:
            result = prepared.hits.get(key)
            if result is None:
                result = self.store.get(key)
                if result is None:
                    raise ClusterError(
                        f"cell ({program}, {latency}, {label}) vanished from "
                        "the store during assembly (evicted mid-sweep?)"
                    )
                result = replace(result, cached=False)
            results.append(result)
        fresh = [
            (result.store_key, result)
            for result in results
            if not result.cached and result.store_key is not None
        ]
        if fresh:
            # Workers merge their own cells into the advisory index, but one
            # terminated mid-sweep (or killed) never gets to; merging here is
            # idempotent and closes that gap.
            self.store.update_index(fresh, scale=prepared.spec.scale)
        return SweepResult(spec=prepared.spec, results=results)

    # -- the composed one-machine mode -------------------------------------------------

    def run_distributed(
        self,
        spec: SweepSpec,
        workers: int = 2,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        timeout: Optional[float] = None,
        progress: Optional[ProgressCallback] = None,
        quiet: bool = True,
    ) -> SweepResult:
        """Run ``spec`` across ``workers`` spawned worker processes.

        Fully-warm sweeps never spawn anything.  Spawned workers exit on
        their own when the manifest drains; whatever survives an error path
        is terminated before the error propagates.  ``workers=0`` spawns
        nothing and only publishes and waits — the mode for a fleet of
        standing ``repro worker`` daemons that discover manifests
        themselves (pair it with ``timeout`` so a fleetless store cannot
        block forever).
        """
        if workers < 0:
            raise ClusterError("worker count cannot be negative")
        prepared = self.prepare(spec)
        tracker = _Progress(progress, prepared.total)
        for program, latency, label, key in prepared.grid:
            if key in prepared.hits:
                tracker.report(program, latency, label, from_store=True)
        if prepared.manifest is None:
            return self.assemble(prepared)
        procs = [
            spawn_worker(
                self.store.root,
                prepared.sweep_id,
                lease_seconds=lease_seconds,
                quiet=quiet,
            )
            for _ in range(workers)
        ]
        try:
            self.wait(prepared, timeout=timeout, procs=procs, _tracker=tracker)
        finally:
            # Workers exit by themselves once every manifest cell resolves;
            # give them a moment to do so — terminating the instant the last
            # result hits the store races the worker's final status write
            # and under-reports its counters.  Stragglers (error paths,
            # hung workers) are then terminated.
            deadline = time.monotonic() + 5.0
            for proc in procs:
                if proc.poll() is None:
                    try:
                        proc.wait(timeout=max(0.0, deadline - time.monotonic()))
                    except subprocess.TimeoutExpired:
                        pass
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                    proc.kill()
                    proc.wait()
        return self.assemble(prepared)


def spawn_worker(
    store_root: Union[str, Path],
    sweep_id: str,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    worker_id: Optional[str] = None,
    quiet: bool = True,
) -> "subprocess.Popen":
    """Start one ``repro worker`` subprocess attached to ``sweep_id``.

    The child runs the same interpreter and sees this process's ``repro``
    package (its ``src`` directory is prepended to ``PYTHONPATH``), so
    spawning works from a source checkout and an installed package alike.
    """
    import repro

    command = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        "--store-dir",
        str(store_root),
        "--sweep",
        sweep_id,
        "--lease",
        str(lease_seconds),
    ]
    if worker_id:
        command += ["--worker-id", worker_id]
    env = dict(os.environ)
    package_parent = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        package_parent + (os.pathsep + existing if existing else "")
    )
    sink = subprocess.DEVNULL if quiet else None
    return subprocess.Popen(command, env=env, stdout=sink, stderr=sink)


# -- status and maintenance ------------------------------------------------------------


def read_worker_statuses(
    store: ResultStore, sweep_id: str
) -> List[Dict[str, object]]:
    """Every worker status file of one sweep, unreadable ones skipped."""
    directory = workers_dir(store, sweep_id)
    if not directory.is_dir():
        return []
    statuses = []
    for path in sorted(directory.glob("*.json")):
        try:
            with path.open() as handle:
                statuses.append(json.load(handle))
        except (OSError, ValueError):
            continue
    return statuses


def cluster_status(store: ResultStore, now: Optional[float] = None) -> Dict[str, object]:
    """The cluster's observable state, for the CLI and ``/v1/stats``.

    Liveness is judged from heartbeat ages: a worker whose status file was
    refreshed within two lease periods is ``live``, anything older is
    ``stale`` (dead or wedged — either way its claims are expiring).
    """
    now = now if now is not None else time.time()
    sweeps: List[Dict[str, object]] = []
    for sweep_id in list_sweep_ids(store):
        try:
            manifest = load_manifest(store, sweep_id)
        except ClusterError:
            continue
        remaining = remaining_cells(manifest, store)
        claims = []
        directory = claims_dir(store, sweep_id)
        if directory.is_dir():
            for path in sorted(directory.glob("*.claim")):
                claim = read_claim(path)
                if claim is not None:
                    claims.append(claim)
        workers = []
        for status in read_worker_statuses(store, sweep_id):
            counters = status.get("counters", {})
            updated = float(status.get("updated_unix", 0.0) or 0.0)
            lease = float(status.get("lease_seconds", DEFAULT_LEASE_SECONDS) or 0.0)
            heartbeat_age = round(now - updated, 3) if updated else None
            workers.append(
                {
                    "worker": status.get("worker", "?"),
                    "pid": status.get("pid"),
                    "host": status.get("host"),
                    "live": bool(
                        heartbeat_age is not None
                        and heartbeat_age <= 2.0 * max(lease, 1.0)
                    ),
                    "heartbeat_age_seconds": heartbeat_age,
                    "claimed": counters.get("claimed", 0),
                    "stolen": counters.get("stolen", 0),
                    "completed": counters.get("completed", 0),
                    "failed": counters.get("failed", 0),
                }
            )
        sweeps.append(
            {
                "sweep": sweep_id,
                "created_unix": round(manifest.created_unix, 3),
                "state": "running" if remaining else "done",
                "total": len(manifest),
                "done": len(manifest) - len(remaining),
                "remaining": len(remaining),
                "claims_active": sum(1 for c in claims if not c.expired(now)),
                "claims_expired": sum(1 for c in claims if c.expired(now)),
                "workers": workers,
            }
        )
    return {
        "root": str(cluster_root(store)),
        "sweeps": sweeps,
        "running_sweeps": sum(1 for s in sweeps if s["state"] == "running"),
    }


def reap_cluster(
    store: ResultStore,
    dry_run: bool = False,
    claim_grace_seconds: float = 3600.0,
    sweep_grace_seconds: float = 3600.0,
    now: Optional[float] = None,
) -> Dict[str, int]:
    """Reclaim dead cluster state (the ``repro cache gc`` hook).

    Two policies, both conservative:

    * claim files whose lease expired more than ``claim_grace_seconds`` ago
      are unlinked — workers steal merely-expired claims themselves within
      one lease, so a claim expired for an *hour* means no worker is coming;
    * sweep directories whose manifest has fully drained (or is unreadable)
      and was last touched more than ``sweep_grace_seconds`` ago are removed
      wholesale — the results live in the store; the coordination scaffolding
      is disposable.
    """
    import shutil

    now = now if now is not None else time.time()
    root = cluster_root(store)
    claims_reaped = 0
    sweeps_reaped = 0
    if not root.is_dir():
        return {"claims_reaped": 0, "sweeps_reaped": 0}
    for path in sorted(root.iterdir()):
        if not path.is_dir():
            continue
        sweep_id = path.name
        drained = False
        try:
            manifest = load_manifest(store, sweep_id)
            drained = not remaining_cells(manifest, store)
        except ClusterError:
            drained = True  # no usable manifest: nothing can ever work on it
        try:
            age = now - max(
                (p.stat().st_mtime for p in path.rglob("*")),
                default=path.stat().st_mtime,
            )
        except OSError:
            age = 0.0
        if drained and age > sweep_grace_seconds:
            sweeps_reaped += 1
            if not dry_run:
                shutil.rmtree(path, ignore_errors=True)
            continue
        claim_directory = path / "claims"
        if claim_directory.is_dir():
            for claim_path in sorted(claim_directory.glob("*.claim")):
                claim = read_claim(claim_path)
                if claim is None:
                    continue
                if claim.age(now) > claim.lease_seconds + claim_grace_seconds:
                    claims_reaped += 1
                    if not dry_run:
                        try:
                            claim_path.unlink()
                        except OSError:
                            pass
    return {"claims_reaped": claims_reaped, "sweeps_reaped": sweeps_reaped}
