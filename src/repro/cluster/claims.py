"""Atomic cell claims with heartbeat-refreshed leases.

One claim file per in-flight cell, living next to the manifest::

    <store>/v<N>/cluster/<sweep_id>/claims/<cell_key>.claim

Claiming is a single ``open(O_CREAT | O_EXCL)`` — the one filesystem
operation that is atomic across processes *and* across hosts sharing the
directory — so exactly one worker wins a cell no matter how many race for
it.  The file's mtime is the lease: the holder refreshes it with
``os.utime`` every few seconds (a background heartbeat thread, so a long
simulation never lets the lease lapse), and a claim whose mtime is older
than its recorded ``lease_seconds`` is *expired* — its holder is presumed
dead, and any other worker may steal the cell: unlink the expired file and
race a fresh ``O_EXCL`` create, which again exactly one stealer wins.

The steal path has the same benign race as the store's index lock: a holder
that was merely stalled (not dead) can have its claim broken and the cell
simulated twice.  That is safe by construction — cells are deterministic
and content-addressed, so duplicate executions write byte-identical objects
under the same key and the store's atomic ``os.replace`` makes the second
write a no-op in effect.  Leases are therefore purely a *work-saving*
mechanism; correctness never depends on mutual exclusion holding.

Claims are released (unlinked) when the cell's result lands in the store;
a crashed worker's claims simply expire and are stolen, and ``repro cache
gc`` reaps any stragglers no worker ever came back for.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

#: Default lease duration.  Heartbeats refresh at a third of this, so a
#: worker must miss several consecutive heartbeats before it can be robbed.
DEFAULT_LEASE_SECONDS = 30.0


@dataclass(frozen=True)
class ClaimInfo:
    """One claim file, as read back for status tooling and steal decisions."""

    key: str
    worker: str
    pid: int
    host: str
    lease_seconds: float
    acquired_unix: float
    mtime: float

    def age(self, now: Optional[float] = None) -> float:
        return (now if now is not None else time.time()) - self.mtime

    def expired(self, now: Optional[float] = None) -> bool:
        return self.age(now) > self.lease_seconds


def read_claim(path: Path) -> Optional[ClaimInfo]:
    """Parse one claim file; ``None`` when it vanished or is unreadable.

    An unreadable claim (torn write, foreign tool) still reports through its
    file mtime: the caller gets a :class:`ClaimInfo` with unknown holder
    fields and the :data:`DEFAULT_LEASE_SECONDS` lease, so even garbage
    claims expire and get stolen rather than wedging a cell forever.
    """
    try:
        stat = path.stat()
    except OSError:
        return None
    key = path.name[: -len(".claim")] if path.name.endswith(".claim") else path.name
    try:
        with path.open() as handle:
            data = json.load(handle)
        return ClaimInfo(
            key=str(data.get("key", key)),
            worker=str(data.get("worker", "?")),
            pid=int(data.get("pid", -1)),
            host=str(data.get("host", "?")),
            lease_seconds=float(data.get("lease_seconds", DEFAULT_LEASE_SECONDS)),
            acquired_unix=float(data.get("acquired_unix", stat.st_mtime)),
            mtime=stat.st_mtime,
        )
    except (OSError, ValueError, TypeError):
        return ClaimInfo(
            key=key,
            worker="?",
            pid=-1,
            host="?",
            lease_seconds=DEFAULT_LEASE_SECONDS,
            acquired_unix=stat.st_mtime,
            mtime=stat.st_mtime,
        )


class ClaimSet:
    """One worker's view of a sweep's claim directory.

    Tracks the claims this worker currently holds (so the heartbeat knows
    what to refresh and :meth:`release_all` what to clean up on the way
    out).  All methods are safe to call concurrently with the heartbeat
    thread; the held-claim registry is the only shared state and it is
    lock-protected.
    """

    def __init__(
        self,
        directory: Path,
        worker: str,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        self.directory = directory
        self.worker = worker
        self.lease_seconds = lease_seconds
        self._held: Dict[str, Path] = {}
        self._lock = threading.Lock()
        # Counters for worker status reporting.
        self.claimed = 0
        self.stolen = 0
        self.released = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.claim"

    # -- acquisition -------------------------------------------------------------------

    def try_claim(self, key: str) -> bool:
        """One atomic attempt at claiming ``key``; ``True`` on the win."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        payload = {
            "key": key,
            "worker": self.worker,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "lease_seconds": self.lease_seconds,
            "acquired_unix": round(time.time(), 3),
        }
        try:
            os.write(fd, json.dumps(payload, separators=(",", ":")).encode())
        finally:
            os.close(fd)
        with self._lock:
            self._held[key] = path
        self.claimed += 1
        return True

    def try_steal(self, key: str) -> bool:
        """Break an *expired* claim on ``key`` and race to re-claim it.

        Verifies expiry immediately before the unlink to shrink the window
        in which a live-but-stalled holder gets robbed (duplicate execution
        is benign — see the module docstring — but not free).  Two stealers
        racing is fine: the loser's unlink hits ENOENT and exactly one
        ``O_EXCL`` create wins.
        """
        claim = read_claim(self.path_for(key))
        if claim is None:
            # Claim vanished: either the holder finished (the caller will see
            # the result in the store) or released; try a plain claim.
            return self.try_claim(key)
        if not claim.expired():
            return False
        try:
            self.path_for(key).unlink()
        except OSError:
            pass
        if self.try_claim(key):
            self.stolen += 1
            return True
        return False

    # -- lease maintenance -------------------------------------------------------------

    def held_keys(self) -> List[str]:
        with self._lock:
            return list(self._held)

    def refresh(self) -> int:
        """Touch every held claim's mtime (the heartbeat); returns how many."""
        with self._lock:
            paths = list(self._held.values())
        refreshed = 0
        for path in paths:
            try:
                os.utime(path)
                refreshed += 1
            except OSError:
                # Stolen out from under us (we were presumed dead).  Keep
                # going: the cell will be — harmlessly — simulated twice.
                continue
        return refreshed

    def release(self, key: str) -> None:
        """Drop our claim on ``key`` (after the result landed in the store)."""
        with self._lock:
            path = self._held.pop(key, None)
        if path is None:
            return
        try:
            path.unlink()
        except OSError:
            pass
        self.released += 1

    def release_all(self) -> None:
        for key in self.held_keys():
            self.release(key)

    def abandon(self, key: str) -> None:
        """Stop maintaining ``key``'s lease *without* unlinking the claim.

        Used for refused cells: the claim file stays behind so the cell is
        not instantly retried by every peer, but this worker stops
        heartbeating it, so it expires one lease later and another worker
        (possibly one running the right code version) can steal it.
        """
        with self._lock:
            self._held.pop(key, None)

    # -- listing -----------------------------------------------------------------------

    def list_claims(self) -> List[ClaimInfo]:
        """Every claim currently on disk for this sweep (any worker's)."""
        if not self.directory.is_dir():
            return []
        claims = []
        for path in sorted(self.directory.glob("*.claim")):
            claim = read_claim(path)
            if claim is not None:
                claims.append(claim)
        return claims


class Heartbeat:
    """A daemon thread refreshing a :class:`ClaimSet`'s leases.

    Runs ``on_beat`` (the worker's status-file write) after each refresh, so
    liveness and progress reporting share one clock.  The interval defaults
    to a third of the lease: a holder must miss three consecutive beats —
    not one slow write — before its claims expire.
    """

    def __init__(
        self,
        claims: ClaimSet,
        interval: Optional[float] = None,
        on_beat=None,
    ) -> None:
        self.claims = claims
        self.interval = (
            interval if interval is not None else max(0.05, claims.lease_seconds / 3.0)
        )
        self.on_beat = on_beat
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name=f"repro-heartbeat-{self.claims.worker}", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.claims.refresh()
            if self.on_beat is not None:
                try:
                    self.on_beat()
                except Exception:
                    # Status reporting must never kill lease maintenance.
                    pass

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "Heartbeat":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
