"""Store-coordinated, work-stealing sweep execution across processes and hosts.

``repro.cluster`` turns a sweep into a shared, crash-tolerant work queue with
no server and no protocol — the :class:`~repro.store.ResultStore` directory is
the only coordination substrate, so anything that can mount it (processes on
one machine, hosts on a shared filesystem) can cooperate:

* the **coordinator** (:mod:`repro.cluster.coordinator`) publishes a
  cost-ranked manifest of unfinished cells and assembles the final
  :class:`~repro.core.experiment.SweepResult` when the store answers them all;
* **workers** (:mod:`repro.cluster.worker`) claim cells through atomic
  ``O_CREAT | O_EXCL`` claim files with heartbeat-refreshed leases
  (:mod:`repro.cluster.claims`), simulate them exactly the way the in-process
  runner does, and write results through the store;
* crashed workers' leases expire and their cells are **stolen** by peers, so
  killing any worker — or the coordinator — never loses work: at-least-once
  execution is safe because cells are deterministic and content-addressed
  (duplicate runs write byte-identical objects under the same key).

The CLI surfaces are ``repro sweep --distributed``, ``repro worker`` and
``repro cluster status``; ``repro cache gc`` reaps dead cluster state.
"""

from repro.cluster.claims import (
    DEFAULT_LEASE_SECONDS,
    ClaimInfo,
    ClaimSet,
    Heartbeat,
    read_claim,
)
from repro.cluster.coordinator import (
    ClusterCoordinator,
    PreparedSweep,
    cluster_status,
    reap_cluster,
    read_worker_statuses,
    spawn_worker,
)
from repro.cluster.manifest import (
    MANIFEST_FORMAT_VERSION,
    ClusterError,
    Manifest,
    ManifestCell,
    claims_dir,
    cluster_root,
    list_sweep_ids,
    load_manifest,
    manifest_path,
    new_sweep_id,
    remaining_cells,
    sweep_dir,
    workers_dir,
)
from repro.cluster.worker import (
    WORKER_STATUS_FORMAT_VERSION,
    ClusterWorker,
    default_worker_id,
)

__all__ = [
    "MANIFEST_FORMAT_VERSION",
    "WORKER_STATUS_FORMAT_VERSION",
    "DEFAULT_LEASE_SECONDS",
    "ClusterError",
    "Manifest",
    "ManifestCell",
    "ClaimInfo",
    "ClaimSet",
    "Heartbeat",
    "ClusterWorker",
    "ClusterCoordinator",
    "PreparedSweep",
    "cluster_root",
    "sweep_dir",
    "manifest_path",
    "claims_dir",
    "workers_dir",
    "load_manifest",
    "list_sweep_ids",
    "remaining_cells",
    "new_sweep_id",
    "read_claim",
    "default_worker_id",
    "cluster_status",
    "reap_cluster",
    "read_worker_statuses",
    "spawn_worker",
]
