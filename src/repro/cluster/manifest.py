"""The cell manifest: one sweep's unfinished work, as a shared file.

A distributed sweep is coordinated entirely through the result-store
directory, and the manifest is its root object: the coordinator resolves the
sweep grid, drops every cell the store already answers, ranks the remainder
by estimated simulation cost (a latency-100 cell burns ~100x the cycles of a
latency-1 cell of the same trace, so costliest-first dispatch keeps the
sweep's critical path short), and writes the result atomically as::

    <store>/v<N>/cluster/<sweep_id>/manifest.json

Workers need nothing else to participate: a manifest entry carries the
cell's content-addressed key plus everything required to recompute it —
program, scale, latency and the architecture label, which re-resolves
through the registry to the exact machine the coordinator meant (canonical
spec strings resolve anywhere a preset name does).  Recomputing the key and
comparing it against the manifest's is the workers' integrity check: a
worker running different trace-generator or timing-model code derives a
different key and refuses the cell instead of poisoning the store.

The manifest is immutable once written.  Progress lives in the store itself
(a cell is done exactly when its key resolves) and in the claim files next
door (:mod:`repro.cluster.claims`), so crashed coordinators leave nothing
inconsistent behind — at worst a drained manifest for ``repro cache gc`` to
sweep up.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.common.errors import ConfigurationError
from repro.store import ResultStore

#: Version of the manifest payload.  Workers refuse manifests of a different
#: version, so a layout change can never be half-understood.
MANIFEST_FORMAT_VERSION = 1


class ClusterError(ConfigurationError):
    """A distributed sweep cannot proceed (bad manifest, lost workers, ...)."""


def cluster_root(store: ResultStore) -> Path:
    """Where cluster state lives inside ``store`` (``<root>/v<N>/cluster``)."""
    return store.version_dir / "cluster"


def sweep_dir(store: ResultStore, sweep_id: str) -> Path:
    """One sweep's coordination directory (manifest, claims, worker status)."""
    if not sweep_id or "/" in sweep_id or sweep_id.startswith("."):
        raise ClusterError(f"malformed sweep id {sweep_id!r}")
    return cluster_root(store) / sweep_id


def manifest_path(store: ResultStore, sweep_id: str) -> Path:
    return sweep_dir(store, sweep_id) / "manifest.json"


def claims_dir(store: ResultStore, sweep_id: str) -> Path:
    return sweep_dir(store, sweep_id) / "claims"


def workers_dir(store: ResultStore, sweep_id: str) -> Path:
    return sweep_dir(store, sweep_id) / "workers"


@dataclass(frozen=True)
class ManifestCell:
    """One unfinished sweep cell, as published to the workers.

    Attributes:
        key: the cell's content-addressed store key — its identity, its
            completion marker (the cell is done when the key resolves in the
            store) and its claim-file name.
        program / latency / architecture / scale: everything a worker needs
            to recompute the key and simulate the cell.  ``architecture`` is
            the cell's label (a registry name or canonical spec string),
            which resolves through the registry on any host.
        cost: the coordinator's cost estimate, recorded so workers and
            status tooling rank work identically without re-deriving it.
    """

    key: str
    program: str
    latency: int
    architecture: str
    scale: float
    cost: int

    def to_json(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "program": self.program,
            "latency": self.latency,
            "architecture": self.architecture,
            "scale": self.scale,
            "cost": self.cost,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ManifestCell":
        try:
            return cls(
                key=str(data["key"]),
                program=str(data["program"]),
                latency=int(data["latency"]),  # type: ignore[arg-type]
                architecture=str(data["architecture"]),
                scale=float(data["scale"]),  # type: ignore[arg-type]
                cost=int(data["cost"]),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ClusterError(f"malformed manifest cell: {exc}") from exc


@dataclass(frozen=True)
class Manifest:
    """One sweep's immutable work list, cost-ranked costliest first."""

    sweep_id: str
    spec: Dict[str, object]
    created_unix: float
    cells: tuple

    def __post_init__(self) -> None:
        ranked = tuple(
            sorted(self.cells, key=lambda cell: (-cell.cost, cell.key))
        )
        object.__setattr__(self, "cells", ranked)

    def __len__(self) -> int:
        return len(self.cells)

    def to_json(self) -> Dict[str, object]:
        return {
            "format": MANIFEST_FORMAT_VERSION,
            "sweep_id": self.sweep_id,
            "created_unix": round(self.created_unix, 3),
            "spec": self.spec,
            "cells": [cell.to_json() for cell in self.cells],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "Manifest":
        if data.get("format") != MANIFEST_FORMAT_VERSION:
            raise ClusterError(
                f"manifest format {data.get('format')!r} is not "
                f"{MANIFEST_FORMAT_VERSION} (coordinator and worker must run "
                "the same repro version)"
            )
        cells = data.get("cells")
        if not isinstance(cells, list):
            raise ClusterError("manifest has no cell list")
        spec = data.get("spec")
        return cls(
            sweep_id=str(data.get("sweep_id", "")),
            spec=dict(spec) if isinstance(spec, Mapping) else {},
            created_unix=float(data.get("created_unix", 0.0)),  # type: ignore[arg-type]
            cells=tuple(ManifestCell.from_json(cell) for cell in cells),
        )

    def write(self, store: ResultStore) -> Path:
        """Persist the manifest atomically; returns its path."""
        path = manifest_path(store, self.sweep_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self.to_json(), handle, indent=2)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path


def load_manifest(store: ResultStore, sweep_id: str) -> Manifest:
    """Read one sweep's manifest; raises :class:`ClusterError` when unusable."""
    path = manifest_path(store, sweep_id)
    try:
        with path.open() as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ClusterError(f"no manifest for sweep {sweep_id!r} at {path}") from exc
    except ValueError as exc:
        raise ClusterError(f"manifest for sweep {sweep_id!r} is corrupt") from exc
    manifest = Manifest.from_json(data)
    if manifest.sweep_id != sweep_id:
        raise ClusterError(
            f"manifest at {path} labels itself {manifest.sweep_id!r}"
        )
    return manifest


def list_sweep_ids(store: ResultStore) -> List[str]:
    """Every sweep directory holding a manifest, oldest manifest first."""
    root = cluster_root(store)
    if not root.is_dir():
        return []
    found = []
    for path in root.iterdir():
        manifest = path / "manifest.json"
        if path.is_dir() and manifest.is_file():
            try:
                found.append((manifest.stat().st_mtime, path.name))
            except OSError:
                continue
    return [name for _mtime, name in sorted(found)]


def remaining_cells(
    manifest: Manifest, store: ResultStore
) -> List[ManifestCell]:
    """Manifest cells whose results are not in the store yet (cost order)."""
    return [cell for cell in manifest.cells if cell.key not in store]


def new_sweep_id(token: Optional[str] = None) -> str:
    """A fresh, filesystem-safe sweep id (``sw-<unixtime>-<entropy>``)."""
    if token is None:
        token = os.urandom(4).hex()
    return f"sw-{int(time.time())}-{token}"
