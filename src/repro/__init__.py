"""Reproduction of "Decoupled Vector Architectures" (Espasa & Valero, HPCA 1996).

The package is organised as a stack of substrates topped by the paper's
contribution:

* :mod:`repro.isa` — Convex C34-style vector instruction set model.
* :mod:`repro.trace` — dynamic instruction traces (the Dixie substitute).
* :mod:`repro.workloads` — synthetic Perfect Club workload models and a small
  vectorizing compiler.
* :mod:`repro.memory` — memory latency model, scalar cache and vector memory
  disambiguation.
* :mod:`repro.refarch` — the reference (non-decoupled) vector architecture.
* :mod:`repro.dva` — the decoupled vector architecture with load/store queues
  and the store→load bypass.
* :mod:`repro.core` — configuration, experiment runner, lower bounds, metrics
  and figure/table reproduction.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
