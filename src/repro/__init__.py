"""Reproduction of "Decoupled Vector Architectures" (Espasa & Valero, HPCA 1996).

The package is organised as a stack of substrates topped by the paper's
contribution:

* :mod:`repro.isa` — Convex C34-style vector instruction set model.
* :mod:`repro.trace` — dynamic instruction traces (the Dixie substitute).
* :mod:`repro.workloads` — synthetic Perfect Club workload models and a small
  vectorizing compiler.
* :mod:`repro.memory` — memory latency model, scalar cache and vector memory
  disambiguation.
* :mod:`repro.engine` — the shared timing kernel (register scoreboard,
  resource pools, stall accounting, memory fabric) both machines build on.
* :mod:`repro.refarch` — the reference (non-decoupled) vector architecture.
* :mod:`repro.dva` — the decoupled vector architecture with load/store queues
  and the store→load bypass.
* :mod:`repro.core` — the unified experiment API: the :class:`~repro.core.Simulator`
  protocol and architecture registry, run configuration, the sweep
  runner (serial or multiprocessing, with per-program trace caching),
  figure/table reproduction and the ``python -m repro`` command line.
* :mod:`repro.store` — the persistent, content-addressed result store that
  makes sweeps incremental and resumable: completed cells are cached under
  ``~/.cache/repro`` keyed on their full input description and never
  re-simulated.
* :mod:`repro.service` — the sweep service behind ``repro serve``: an
  asyncio HTTP daemon over the store that answers warm cells in
  microseconds, deduplicates identical in-flight cells across concurrent
  clients, and streams per-cell sweep progress as server-sent events.
* :mod:`repro.cluster` — distributed sweeps over a shared store directory:
  a coordinator publishes a cost-ranked manifest of unfinished cells and
  ``repro worker`` processes on any number of hosts race atomic,
  lease-guarded claim files to simulate them, stealing the cells of
  crashed peers when their leases expire.

The :mod:`repro.core` facade is re-exported here, so most callers only need::

    from repro import MachineSpec, SweepSpec, run_sweep, simulate
"""

from repro.core import (
    Experiment,
    MachineSpec,
    ResultStore,
    RunConfig,
    RunResult,
    Runner,
    Simulator,
    SweepResult,
    SweepSpec,
    architecture,
    architecture_names,
    machine_spec,
    register_architecture,
    resolve_architecture,
    run_sweep,
    simulate,
)

__version__ = "1.7.0"

__all__ = [
    "Experiment",
    "MachineSpec",
    "ResultStore",
    "RunConfig",
    "RunResult",
    "Runner",
    "Simulator",
    "SweepResult",
    "SweepSpec",
    "__version__",
    "architecture",
    "architecture_names",
    "machine_spec",
    "register_architecture",
    "resolve_architecture",
    "run_sweep",
    "simulate",
]
