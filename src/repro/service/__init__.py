"""The sweep service: ``repro serve`` — a long-running daemon over the store.

This package turns the content-addressed result store into a multi-client
system.  A :class:`ReproService` accepts JSON run/sweep requests over a
minimal stdlib-only asyncio HTTP layer, answers warm cells straight from the
:class:`~repro.store.ResultStore` without touching the worker path,
deduplicates identical in-flight cells across clients (single-flight
futures keyed by :func:`~repro.store.cell_key`), batches cold cells onto
the multiprocessing sweep runner, and streams per-cell progress as
server-sent events.

Layers, bottom-up:

* :mod:`repro.service.http` — request parsing, routing, JSON and
  event-stream responses over ``asyncio`` streams (no new dependencies).
* :mod:`repro.service.protocol` — the JSON wire shapes: request bodies into
  validated :class:`~repro.core.experiment.SweepSpec` / run descriptions,
  results and progress events back out.
* :mod:`repro.service.scheduler` — :class:`CellScheduler`, the single-flight
  store-first cell executor.
* :mod:`repro.service.server` — :class:`ReproService` (routes + sweep jobs)
  and the blocking :func:`serve` entry point behind ``repro serve``.
"""

from repro.service.http import HttpError, Request, Response, Router
from repro.service.protocol import (
    ProtocolError,
    RunRequest,
    parse_run_request,
    parse_sweep_request,
)
from repro.service.scheduler import CellScheduler
from repro.service.server import ReproService, SweepJob, serve

__all__ = [
    "CellScheduler",
    "HttpError",
    "ProtocolError",
    "ReproService",
    "Request",
    "Response",
    "Router",
    "RunRequest",
    "SweepJob",
    "parse_run_request",
    "parse_sweep_request",
    "serve",
]
