"""The single-flight cell scheduler behind the sweep service.

Every request the service receives decomposes into *cells* — (program,
scale, latency, machine) points with a content-addressed identity
(:func:`~repro.store.cell_key`).  The scheduler is the one place a cell
becomes a result, and it enforces the three service invariants:

* **store hits never touch the worker path.**  A cell already in the
  :class:`~repro.store.ResultStore` is answered synchronously on the event
  loop — one small file read, no trace build, no executor hop, no pool
  dispatch — so a fully-warm sweep costs microseconds per cell.
* **in-flight cells are deduplicated.**  Two concurrent requests for the
  same ``cell_key`` share one simulation: the first registers a future under
  the key, later arrivals await that same future
  (:attr:`CellScheduler.inflight_joins` counts them).  Waiters await through
  :func:`asyncio.shield`, so a client that disconnects — cancelling its
  request task — can never cancel the shared simulation out from under the
  other waiters.
* **cold cells are batched.**  A cache-missing cell does not dispatch
  immediately: the scheduler gathers everything that arrives within
  :attr:`CellScheduler.batch_window` seconds (a sweep submission lands its
  whole grid in one window), groups it by (program, scale, config) so each
  batch shares one trace, and hands each group to
  :meth:`~repro.core.experiment.Runner.run_batch` on a thread-pool executor
  — in-process simulation for one job, the runner's multiprocessing pool
  when the service was started with more.

Simulation results are written back to the store per cell by the runner
(exactly as CLI sweeps do), and each completed batch merges its cells into
the store's advisory index under the index lock, so any number of
concurrent batches — or concurrent services — keep the index consistent.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import RunConfig
from repro.core.experiment import CellTask, Runner, estimate_cell_cost
from repro.core.registry import Simulator
from repro.core.result import RunResult
from repro.store import ResultStore, cell_key


@dataclass
class _PendingCell:
    """One cold cell waiting for the current batch window to close."""

    program: str
    scale: float
    latency: int
    simulator: Simulator
    key: Optional[str]
    config: RunConfig
    future: "asyncio.Future[RunResult]"


class CellScheduler:
    """Turns cell requests into results: store-first, deduplicated, batched.

    Args:
        store: the result store answering warm cells and persisting cold
            ones; ``None`` runs store-less (every cell simulates — useful
            only for tests).
        jobs: worker ceiling handed to the underlying
            :class:`~repro.core.experiment.Runner`; with ``jobs > 1`` cold
            batches go to its multiprocessing pool.
        batch_window: seconds to gather cold cells before dispatching, so a
            burst of concurrent requests coalesces into per-program batches.
            ``0`` still batches everything that arrived in the same event
            loop iteration (the callback fires on the next one).
        runner: inject a pre-configured runner (tests); defaults to
            ``Runner(jobs=jobs, store=store)``.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        batch_window: float = 0.010,
        runner: Optional[Runner] = None,
    ) -> None:
        self.store = store
        self.batch_window = batch_window
        self.runner = runner if runner is not None else Runner(jobs=jobs, store=store)
        # Executor threads mostly sleep in pool.apply / file writes; one per
        # job plus one keeps the pool busy without unbounded thread growth.
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, self.runner.effective_jobs + 1),
            thread_name_prefix="repro-batch",
        )
        self._inflight: Dict[str, asyncio.Future] = {}
        self._pending: List[_PendingCell] = []
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        self._batch_tasks: "set[asyncio.Task]" = set()
        self._closed = False
        # Counters surfaced by /v1/stats.
        self.cells_requested = 0
        self.store_hits = 0
        self.inflight_joins = 0
        self.simulated = 0
        self.batches_dispatched = 0
        self.uncacheable = 0

    # -- the public entry point --------------------------------------------------------

    async def run_cell(
        self,
        program: str,
        latency: int,
        simulator: Simulator,
        scale: float = 1.0,
        config: Optional[RunConfig] = None,
    ) -> RunResult:
        """One cell's result: from the store, a shared in-flight simulation,
        or a freshly dispatched batch — in that order of preference.

        Everything from the in-flight check to future registration runs
        synchronously on the event loop, so two coroutines can never both
        miss the registry and dispatch the same cell twice.
        """
        if self._closed:
            raise RuntimeError("scheduler is closed")
        config = config if config is not None else RunConfig()
        self.cells_requested += 1
        key = cell_key(program, scale, latency, simulator, config)
        if key is None:
            self.uncacheable += 1
        else:
            shared = self._inflight.get(key)
            if shared is not None:
                self.inflight_joins += 1
                return await asyncio.shield(shared)
            if self.store is not None:
                found = self.store.get(key)
                if found is not None:
                    self.store_hits += 1
                    return found

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[RunResult]" = loop.create_future()
        if key is not None:
            self._inflight[key] = future
            future.add_done_callback(lambda _done, _key=key: self._inflight.pop(_key, None))
        self._pending.append(
            _PendingCell(program, scale, latency, simulator, key, config, future)
        )
        self._schedule_flush(loop)
        return await asyncio.shield(future)

    # -- batching ----------------------------------------------------------------------

    def _schedule_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._flush_handle is None:
            self._flush_handle = loop.call_later(self.batch_window, self._flush)

    def _flush(self) -> None:
        """Close the batch window: group pending cells and dispatch each group.

        Groups are dispatched costliest first (estimated trace length x
        latency), so when the window gathered more program groups than the
        runner has workers, the pool starts the longest simulations
        immediately instead of discovering them last.
        """
        self._flush_handle = None
        pending, self._pending = self._pending, []
        if not pending:
            return
        groups: Dict[Tuple[str, float, RunConfig], List[_PendingCell]] = {}
        for cell in pending:
            groups.setdefault((cell.program, cell.scale, cell.config), []).append(cell)
        ordered = sorted(
            groups.items(),
            key=lambda item: -sum(
                estimate_cell_cost(item[0][0], item[0][1], cell.latency)
                for cell in item[1]
            ),
        )
        for (program, scale, config), cells in ordered:
            task = asyncio.ensure_future(self._run_batch(program, scale, config, cells))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(
        self,
        program: str,
        scale: float,
        config: RunConfig,
        cells: Sequence[_PendingCell],
    ) -> None:
        """Simulate one per-program batch off-loop and resolve its futures."""
        loop = asyncio.get_running_loop()
        tasks: List[CellTask] = [(cell.latency, cell.simulator, cell.key) for cell in cells]
        self.batches_dispatched += 1
        try:
            results = await loop.run_in_executor(
                self._executor, self.runner.run_batch, program, scale, tasks, config
            )
        except Exception as exc:
            for cell in cells:
                if not cell.future.done():
                    cell.future.set_exception(exc)
            return
        self.simulated += len(results)
        for cell, result in zip(cells, results):
            if not cell.future.done():
                cell.future.set_result(result)
        if self.store is not None:
            written = [
                (result.store_key, result)
                for result in results
                if result.store_key is not None and not result.cached
            ]
            if written:
                await loop.run_in_executor(
                    self._executor, lambda: self.store.update_index(written, scale=scale)
                )

    # -- introspection and lifecycle ---------------------------------------------------

    @property
    def inflight_count(self) -> int:
        """Cells currently being simulated (or queued for the next batch)."""
        return len(self._inflight)

    def counters(self) -> Dict[str, int]:
        """The scheduler's traffic counters, for ``/v1/stats``."""
        return {
            "cells_requested": self.cells_requested,
            "store_hits": self.store_hits,
            "inflight_joins": self.inflight_joins,
            "simulated": self.simulated,
            "batches_dispatched": self.batches_dispatched,
            "uncacheable": self.uncacheable,
            "inflight_now": self.inflight_count,
        }

    async def drain(self) -> None:
        """Wait for every queued and in-flight batch to finish (tests, shutdown)."""
        while self._pending or self._flush_handle is not None or self._batch_tasks:
            if self._flush_handle is not None:
                self._flush_handle.cancel()
                self._flush_handle = None
                self._flush()
            if self._batch_tasks:
                await asyncio.gather(*list(self._batch_tasks), return_exceptions=True)
            else:
                await asyncio.sleep(0)

    def close(self) -> None:
        """Stop accepting cells and release the executor and worker pool."""
        self._closed = True
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        for cell in self._pending:
            if not cell.future.done():
                cell.future.set_exception(RuntimeError("scheduler closed"))
        self._pending = []
        self._executor.shutdown(wait=False)
        self.runner.close()


__all__ = ["CellScheduler"]
