"""A minimal HTTP/1.1 layer over asyncio streams — stdlib only.

The service needs exactly four HTTP behaviours: parse small JSON requests,
write JSON responses, stream server-sent events over chunked transfer
encoding, and survive clients that vanish mid-stream.  ``http.server`` is
threaded and ``aiohttp`` would be a new dependency, so this module
implements that minimal slice directly on ``asyncio``'s stream API:

* :func:`read_request` — request line + headers + ``Content-Length`` body,
  with hard size caps (an oversized or malformed request is a clean ``400``,
  never an unbounded read);
* :class:`Router` — method/path dispatch with ``{name}`` path parameters;
* :func:`json_response` / :class:`EventStream` — the two response kinds a
  handler can return;
* :func:`serve_connection` — the per-connection loop: keep-alive for plain
  responses, ``Connection: close`` after a stream, and any library error
  mapped to a JSON error body (:class:`HttpError` → its status,
  :class:`~repro.common.errors.ReproError` → 400, anything else → 500).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import (
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.common.errors import ReproError
from repro.service.protocol import ProtocolError, error_payload

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
}


class HttpError(ReproError):
    """An HTTP-level failure carrying the status code to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]  # keys lower-cased
    body: bytes

    def json(self) -> object:
        """The body parsed as JSON (``{}`` when empty); 400 on garbage."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc


@dataclass
class Response:
    """A complete (non-streaming) HTTP response."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: List[Tuple[str, str]] = field(default_factory=list)


@dataclass
class EventStream:
    """A streaming response: chunked transfer, one write per yielded event.

    ``events`` yields ``str`` chunks (already formatted, e.g. SSE
    ``data: ...\\n\\n`` records); the connection is closed when the iterator
    finishes or the client disconnects.  Disconnection is *normal* for event
    streams — the generator is closed, nothing is raised to the handler, and
    whatever work the stream was observing keeps running.
    """

    events: AsyncIterator[str]
    content_type: str = "text/event-stream"


def json_response(
    payload: object, status: int = 200, headers: Optional[List[Tuple[str, str]]] = None
) -> Response:
    """A JSON :class:`Response` (the normal handler return value)."""
    body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
    return Response(status=status, body=body, headers=list(headers or []))


Handler = Callable[..., Awaitable[Union[Response, EventStream]]]


class Router:
    """Method/path dispatch with ``{name}`` segments.

    A path pattern is matched segment-by-segment; ``{name}`` segments match
    any single non-empty segment and are passed to the handler as keyword
    arguments.  An unknown path raises 404; a known path with the wrong
    method raises 405 (listing the allowed methods).
    """

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        segments = tuple(segment for segment in pattern.strip("/").split("/") if segment)
        self._routes.append((method.upper(), segments, handler))

    @staticmethod
    def _match_segments(
        pattern: Tuple[str, ...], segments: Tuple[str, ...]
    ) -> Optional[Dict[str, str]]:
        if len(pattern) != len(segments):
            return None
        params: Dict[str, str] = {}
        for expected, actual in zip(pattern, segments):
            if expected.startswith("{") and expected.endswith("}"):
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params

    def match(self, method: str, path: str) -> Tuple[Handler, Dict[str, str]]:
        segments = tuple(segment for segment in path.strip("/").split("/") if segment)
        allowed: List[str] = []
        for route_method, pattern, handler in self._routes:
            params = self._match_segments(pattern, segments)
            if params is None:
                continue
            if route_method == method.upper():
                return handler, params
            allowed.append(route_method)
        if allowed:
            raise HttpError(
                405, f"method {method} not allowed for {path} (allowed: {', '.join(allowed)})"
            )
        raise HttpError(404, f"no such endpoint: {path}")


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Read one request off the connection, or ``None`` on clean EOF.

    Raises :class:`HttpError` for anything malformed or oversized — the
    caller answers it and closes — and lets connection-level exceptions
    (reset, incomplete read mid-request-line) propagate as disconnects.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request headers too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request headers too large")

    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise HttpError(400, "malformed request line") from exc
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, colon, value = line.partition(":")
        if not colon:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding"):
        raise HttpError(501, "chunked request bodies are not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise HttpError(400, f"bad Content-Length {length_text!r}") from exc
    if length < 0:
        raise HttpError(400, f"bad Content-Length {length_text!r}")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""

    parts = urlsplit(target)
    return Request(
        method=method.upper(),
        path=unquote(parts.path) or "/",
        query={key: value for key, value in parse_qsl(parts.query)},
        headers=headers,
        body=body,
    )


def _head(status: int, content_type: str, extra: List[Tuple[str, str]]) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}", f"Content-Type: {content_type}"]
    lines += [f"{name}: {value}" for name, value in extra]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter, response: Response, keep_alive: bool
) -> None:
    extra = list(response.headers)
    extra.append(("Content-Length", str(len(response.body))))
    extra.append(("Connection", "keep-alive" if keep_alive else "close"))
    writer.write(_head(response.status, response.content_type, extra))
    writer.write(response.body)
    await writer.drain()


async def write_event_stream(writer: asyncio.StreamWriter, stream: EventStream) -> None:
    """Write a chunked streaming response until the iterator (or client) stops."""
    writer.write(
        _head(
            200,
            stream.content_type,
            [
                ("Cache-Control", "no-cache"),
                ("Transfer-Encoding", "chunked"),
                ("Connection", "close"),
            ],
        )
    )
    await writer.drain()
    try:
        async for event in stream.events:
            chunk = event.encode("utf-8")
            writer.write(f"{len(chunk):x}\r\n".encode("latin-1") + chunk + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
    finally:
        iterator_close = getattr(stream.events, "aclose", None)
        if iterator_close is not None:
            try:
                await iterator_close()
            except Exception:
                pass


def _error_response(status: int, message: str) -> Response:
    return json_response(error_payload(message, status), status=status)


async def serve_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    router: Router,
    on_request: Optional[Callable[[Request], None]] = None,
) -> None:
    """The per-connection loop ``asyncio.start_server`` hands connections to.

    Plain responses keep the connection alive (HTTP/1.1 default) unless the
    client asked to close; event streams always end the connection.  A
    client that disconnects at any point simply ends the loop — nothing is
    logged, nothing propagates, and background work keeps running.
    """
    try:
        while True:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                await write_response(
                    writer, _error_response(exc.status, str(exc)), keep_alive=False
                )
                break
            if request is None:
                break
            if on_request is not None:
                on_request(request)
            keep_alive = request.headers.get("connection", "keep-alive").lower() != "close"
            try:
                handler, params = router.match(request.method, request.path)
                result = await handler(request, **params)
            except HttpError as exc:
                result = _error_response(exc.status, str(exc))
            except (ProtocolError, ReproError) as exc:
                result = _error_response(400, str(exc))
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # a handler bug must not kill the server
                result = _error_response(500, f"internal error: {type(exc).__name__}: {exc}")
            if isinstance(result, EventStream):
                await write_event_stream(writer, result)
                break
            await write_response(writer, result, keep_alive=keep_alive)
            if not keep_alive:
                break
    except (ConnectionError, asyncio.IncompleteReadError, TimeoutError):
        pass  # client went away; their loss
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


__all__ = [
    "EventStream",
    "Handler",
    "HttpError",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "Request",
    "Response",
    "Router",
    "json_response",
    "read_request",
    "serve_connection",
    "write_event_stream",
    "write_response",
]
