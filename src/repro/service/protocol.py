"""The JSON wire protocol of the sweep service.

Everything the HTTP layer moves is already JSON-shaped elsewhere in the
package — :class:`~repro.core.experiment.SweepSpec` grids,
:class:`~repro.core.result.RunResult` payloads,
:class:`~repro.core.experiment.CellProgress` events — so this module is a
thin boundary: it parses untrusted request bodies into validated library
objects (raising :class:`ProtocolError`, which the server maps to ``400``)
and renders library objects back into plain dictionaries for responses.

Request shapes:

``POST /v1/run``::

    {"program": "TRFD", "arch": "dva@lanes=2", "latency": 50, "scale": 1.0}

``POST /v1/sweeps`` — the same shape :meth:`SweepResult.to_json` emits
under ``"spec"``, so a sweep result downloaded from one service can be
re-submitted to another verbatim.  Scalars are accepted where lists read
more naturally as strings (``"programs": "dyfesm,trfd"`` parses like the
CLI), and ``axes`` may be a mapping or a pair list::

    {"programs": ["dyfesm"], "latencies": [1, 50], "architectures": ["ref", "dva"],
     "scale": 1.0, "axes": {"lanes": [1, 2]}}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.common.errors import ReproError
from repro.core.experiment import CellProgress, SweepSpec
from repro.core.result import RunResult


class ProtocolError(ReproError):
    """A request payload is malformed (the server answers ``400``)."""


def _require_mapping(payload: object, what: str) -> Mapping[str, object]:
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"{what} must be a JSON object")
    return payload


def _reject_unknown(payload: Mapping[str, object], allowed: Sequence[str], what: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ProtocolError(
            f"{what} has unknown field(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def _string_tuple(value: object, what: str) -> Tuple[str, ...]:
    """A list of names, or a comma-separated string of them (CLI-style)."""
    if isinstance(value, str):
        return tuple(part.strip() for part in value.split(",") if part.strip())
    if isinstance(value, Sequence):
        if not all(isinstance(item, str) for item in value):
            raise ProtocolError(f"{what} entries must be strings")
        return tuple(value)
    raise ProtocolError(f"{what} must be a list of strings or a comma-separated string")


def _number(value: object, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{what} must be a number")
    return float(value)


@dataclass(frozen=True)
class RunRequest:
    """One validated ``POST /v1/run`` body."""

    program: str
    architecture: str = "dva"
    latency: int = 1
    scale: float = 1.0


def parse_run_request(payload: object) -> RunRequest:
    """Validate a ``/v1/run`` body into a :class:`RunRequest`."""
    body = _require_mapping(payload, "run request")
    _reject_unknown(body, ("program", "arch", "architecture", "latency", "scale"), "run request")
    if "arch" in body and "architecture" in body:
        raise ProtocolError("run request gives both 'arch' and 'architecture'")
    program = body.get("program")
    if not isinstance(program, str) or not program.strip():
        raise ProtocolError("run request needs a non-empty 'program' string")
    architecture = body.get("arch", body.get("architecture", "dva"))
    if not isinstance(architecture, str) or not architecture.strip():
        raise ProtocolError("'arch' must be a non-empty string")
    latency = _number(body.get("latency", 1), "'latency'")
    if latency != int(latency):
        raise ProtocolError("'latency' must be an integer")
    return RunRequest(
        program=program.strip(),
        architecture=architecture.strip(),
        latency=int(latency),
        scale=_number(body.get("scale", 1.0), "'scale'"),
    )


def parse_sweep_request(payload: object) -> SweepSpec:
    """Validate a ``/v1/sweeps`` body into a :class:`SweepSpec`.

    Grid-level validation (empty axes, negative latencies, malformed axis
    values) is :class:`SweepSpec`'s own job; its
    :class:`~repro.common.errors.ConfigurationError` is re-raised as a
    :class:`ProtocolError` so every bad request maps to ``400``.
    """
    body = _require_mapping(payload, "sweep request")
    _reject_unknown(
        body, ("programs", "latencies", "architectures", "scale", "axes"), "sweep request"
    )
    if "programs" not in body:
        raise ProtocolError("sweep request needs 'programs'")
    programs = _string_tuple(body["programs"], "'programs'")

    raw_latencies = body.get("latencies", ())
    if isinstance(raw_latencies, str):
        parts = [part.strip() for part in raw_latencies.split(",") if part.strip()]
        try:
            latencies: Tuple[int, ...] = tuple(int(part) for part in parts)
        except ValueError:
            raise ProtocolError(f"'latencies' must be integers, got {raw_latencies!r}") from None
    elif isinstance(raw_latencies, Sequence):
        numbers = [_number(item, "'latencies' entry") for item in raw_latencies]
        if any(number != int(number) for number in numbers):
            raise ProtocolError("'latencies' entries must be integers")
        latencies = tuple(int(number) for number in numbers)
    else:
        raise ProtocolError("'latencies' must be a list of integers or a comma-separated string")

    architectures = _string_tuple(body.get("architectures", "ref,dva"), "'architectures'")

    raw_axes = body.get("axes", ())
    axes: List[Tuple[str, Tuple[object, ...]]] = []
    if isinstance(raw_axes, Mapping):
        axis_items: Sequence[Tuple[object, object]] = list(raw_axes.items())
    elif isinstance(raw_axes, Sequence) and not isinstance(raw_axes, str):
        axis_items = []
        for pair in raw_axes:
            if not isinstance(pair, Sequence) or isinstance(pair, str) or len(pair) != 2:
                raise ProtocolError("'axes' pair entries must be [name, values] pairs")
            axis_items.append((pair[0], pair[1]))
    else:
        raise ProtocolError("'axes' must be a mapping or a list of [name, values] pairs")
    for name, values in axis_items:
        if not isinstance(name, str) or not name.strip():
            raise ProtocolError("axis names must be non-empty strings")
        if isinstance(values, (str, int, bool)):
            values = (values,)
        elif not isinstance(values, Sequence):
            raise ProtocolError(f"axis {name!r} values must be a list or a scalar")
        axes.append((name.strip(), tuple(values)))

    try:
        return SweepSpec(
            programs=programs,
            latencies=latencies,
            architectures=architectures,
            scale=_number(body.get("scale", 1.0), "'scale'"),
            axes=tuple(axes),
        )
    except ReproError as exc:
        raise ProtocolError(str(exc)) from exc


def sweep_spec_payload(spec: SweepSpec) -> Dict[str, object]:
    """The spec as response JSON — the same shape :func:`parse_sweep_request` reads."""
    return {
        "programs": list(spec.programs),
        "latencies": list(spec.latencies),
        "architectures": list(spec.architectures),
        "scale": spec.scale,
        "axes": [[name, list(values)] for name, values in spec.axes],
    }


def result_payload(result: RunResult) -> Dict[str, object]:
    """One cell result as response JSON: headline fields + full detail."""
    return {
        "program": result.program,
        "architecture": result.architecture,
        "latency": result.latency,
        "total_cycles": result.total_cycles,
        "instructions": result.instructions,
        "cached": result.cached,
        "store_key": result.store_key,
        "summary": result.summary(),
    }


def progress_payload(event: CellProgress) -> Dict[str, object]:
    """One sweep progress event as an SSE ``data:`` JSON payload."""
    return {
        "done": event.done,
        "total": event.total,
        "cached": event.cached,
        "simulated": event.simulated,
        "program": event.program,
        "latency": event.latency,
        "architecture": event.architecture,
        "from_store": event.from_store,
    }


def error_payload(message: str, status: int) -> Dict[str, object]:
    """The uniform error body every non-2xx response carries."""
    return {"error": message, "status": status}


__all__ = [
    "ProtocolError",
    "RunRequest",
    "error_payload",
    "parse_run_request",
    "parse_sweep_request",
    "progress_payload",
    "result_payload",
    "sweep_spec_payload",
]
