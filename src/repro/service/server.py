"""The sweep service: an asyncio HTTP daemon over the result store.

``repro serve`` starts a :class:`ReproService` — the step from CLI tool to
long-running system.  Many concurrent clients submit runs and sweeps; the
service answers warm cells straight from the
:class:`~repro.store.ResultStore` in microseconds, deduplicates identical
in-flight cells across clients (single-flight, see
:class:`~repro.service.scheduler.CellScheduler`), batches cold cells onto
the multiprocessing runner, and streams per-cell progress as server-sent
events.

The JSON API (all under ``/v1``):

========  ======================  =================================================
method    path                    behaviour
========  ======================  =================================================
POST      ``/v1/run``             simulate (or fetch) one cell; blocks until done
POST      ``/v1/sweeps``          submit a sweep grid; ``202`` + sweep id at once
GET       ``/v1/sweeps``          list known sweeps (id, state, progress)
GET       ``/v1/sweeps/{id}``     status + counts (+ full results when done)
GET       ``/v1/sweeps/{id}/events``  SSE stream: one event per finished cell
GET       ``/v1/healthz``         liveness + uptime
GET       ``/v1/stats``           the ``repro cache stats --json`` payload + service counters
========  ======================  =================================================

Sweeps execute as *background tasks*: submission validates the whole grid
(unknown programs, bad architectures, duplicate cells → ``400`` immediately),
then every cell is fanned out to the scheduler concurrently.  Clients watch
via polling or the event stream; a client disconnecting mid-stream
disconnects the *stream*, never the sweep.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import secrets
import time
from pathlib import Path
from typing import AsyncIterator, Dict, List, Optional, Union

from repro import __version__
from repro.core.config import RunConfig
from repro.core.experiment import (
    CellProgress,
    SweepResult,
    SweepSpec,
    _ProgressTracker,
    resolve_sweep_machines,
)
from repro.core.registry import Simulator, resolve_architecture
from repro.core.result import RunResult
from repro.service.http import (
    EventStream,
    HttpError,
    Request,
    Response,
    Router,
    json_response,
    serve_connection,
)
from repro.service.protocol import (
    parse_run_request,
    parse_sweep_request,
    progress_payload,
    result_payload,
    sweep_spec_payload,
)
from repro.service.scheduler import CellScheduler
from repro.store import ResultStore
from repro.workloads.perfect_club import load_program


class SweepJob:
    """One submitted sweep: its spec, background task, and event history.

    Progress events accumulate in :attr:`events` (every stream replays the
    full history first, so a late subscriber misses nothing).  Waiters park
    on the current wake-up event; :meth:`_notify` swaps in a fresh one and
    sets the old, which wakes *every* parked stream without the clear/set
    races a shared :class:`asyncio.Event` would invite.
    """

    def __init__(self, job_id: str, spec: SweepSpec) -> None:
        self.id = job_id
        self.spec = spec
        self.state = "running"  # running | done | failed
        self.error: Optional[str] = None
        self.created_unix = time.time()
        self.finished_unix: Optional[float] = None
        self.events: List[Dict[str, object]] = []
        self.result: Optional[SweepResult] = None
        self.cached_count = 0
        self.simulated_count = 0
        self.task: Optional[asyncio.Task] = None
        self._wakeup: asyncio.Event = asyncio.Event()

    @property
    def total(self) -> int:
        return len(self.spec)

    @property
    def done(self) -> int:
        return len(self.events)

    def _notify(self) -> None:
        wakeup, self._wakeup = self._wakeup, asyncio.Event()
        wakeup.set()

    def record(self, event: CellProgress) -> None:
        """Append one cell's progress event and wake every stream."""
        self.cached_count = event.cached
        self.simulated_count = event.simulated
        self.events.append(progress_payload(event))
        self._notify()

    def finish(self, result: SweepResult) -> None:
        self.result = result
        self.state = "done"
        self.finished_unix = time.time()
        self._notify()

    def fail(self, error: BaseException) -> None:
        self.error = f"{type(error).__name__}: {error}"
        self.state = "failed"
        self.finished_unix = time.time()
        self._notify()

    async def stream_events(self) -> AsyncIterator[Dict[str, object]]:
        """Replay history, then yield live events until the job settles."""
        index = 0
        while True:
            while index < len(self.events):
                yield self.events[index]
                index += 1
            if self.state != "running":
                return
            waiter = self._wakeup
            await waiter.wait()

    def status_payload(self, include_results: bool = False) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "sweep": self.id,
            "state": self.state,
            "done": self.done,
            "total": self.total,
            "cached": self.cached_count,
            "simulated": self.simulated_count,
            "created_unix": round(self.created_unix, 3),
            "spec": sweep_spec_payload(self.spec),
        }
        if self.finished_unix is not None:
            payload["elapsed_seconds"] = round(self.finished_unix - self.created_unix, 6)
        if self.error is not None:
            payload["error"] = self.error
        if include_results and self.result is not None:
            payload["results"] = [result_payload(result) for result in self.result]
        return payload


class ReproService:
    """The HTTP application: routes, sweep jobs, and the cell scheduler.

    Args:
        store: a :class:`ResultStore`, a directory path for one, or ``None``
            for the default store location.  The service *requires* a store —
            answering from it is the point — so unlike CLI sweeps there is
            no store-less mode.
        jobs: worker ceiling for cold-cell simulation.
        batch_window: see :class:`~repro.service.scheduler.CellScheduler`.
    """

    def __init__(
        self,
        store: Union[ResultStore, str, Path, None] = None,
        jobs: int = 1,
        batch_window: float = 0.010,
    ) -> None:
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.scheduler = CellScheduler(store=store, jobs=jobs, batch_window=batch_window)
        self.jobs = jobs
        self.sweeps: Dict[str, SweepJob] = {}
        self.started_unix = time.time()
        self.requests_served = 0
        self._ids = itertools.count(1)
        self.router = Router()
        self.router.add("GET", "/v1/healthz", self._handle_healthz)
        self.router.add("GET", "/v1/stats", self._handle_stats)
        self.router.add("POST", "/v1/run", self._handle_run)
        self.router.add("POST", "/v1/sweeps", self._handle_submit_sweep)
        self.router.add("GET", "/v1/sweeps", self._handle_list_sweeps)
        self.router.add("GET", "/v1/sweeps/{sweep_id}", self._handle_sweep_status)
        self.router.add("GET", "/v1/sweeps/{sweep_id}/events", self._handle_sweep_events)

    # -- request handlers --------------------------------------------------------------

    async def _handle_healthz(self, request: Request) -> Response:
        return json_response(
            {
                "status": "ok",
                "version": __version__,
                "uptime_seconds": round(time.time() - self.started_unix, 3),
                "store_root": str(self.store.root),
                "jobs": self.jobs,
                "sweeps": len(self.sweeps),
            }
        )

    async def _handle_stats(self, request: Request) -> Response:
        # The exact `repro cache stats --json` payload, extended with the
        # live service-side counters (one surface, two transports).
        payload = self.store.stats()
        payload["service"] = {
            "uptime_seconds": round(time.time() - self.started_unix, 3),
            "requests_served": self.requests_served,
            "sweeps_submitted": len(self.sweeps),
            "sweeps_running": sum(
                1 for job in self.sweeps.values() if job.state == "running"
            ),
            "scheduler": self.scheduler.counters(),
        }
        # Distributed sweeps coordinate through the same store directory, so
        # the service can report on them without participating: the stats
        # endpoint doubles as `repro cluster status` over HTTP.
        from repro.cluster import cluster_status

        payload["cluster"] = cluster_status(self.store)
        return json_response(payload)

    async def _handle_run(self, request: Request) -> Response:
        run = parse_run_request(request.json())
        load_program(run.program)  # unknown program → clean 400
        simulator: Simulator = resolve_architecture(run.architecture)
        result: RunResult = await self.scheduler.run_cell(
            run.program, run.latency, simulator, scale=run.scale, config=RunConfig()
        )
        return json_response(result_payload(result))

    async def _handle_submit_sweep(self, request: Request) -> Response:
        spec = parse_sweep_request(request.json())
        for program in spec.programs:
            load_program(program)  # fail fast, exactly like Runner.run
        machines = resolve_sweep_machines(spec)
        job = SweepJob(f"sw-{next(self._ids):05d}-{secrets.token_hex(4)}", spec)
        self.sweeps[job.id] = job
        job.task = asyncio.ensure_future(self._run_sweep(job, machines))
        return json_response(
            {
                "sweep": job.id,
                "state": job.state,
                "total": job.total,
                "status_url": f"/v1/sweeps/{job.id}",
                "events_url": f"/v1/sweeps/{job.id}/events",
            },
            status=202,
        )

    async def _handle_list_sweeps(self, request: Request) -> Response:
        return json_response(
            {
                "sweeps": [
                    job.status_payload(include_results=False)
                    for job in self.sweeps.values()
                ]
            }
        )

    def _job(self, sweep_id: str) -> SweepJob:
        job = self.sweeps.get(sweep_id)
        if job is None:
            raise HttpError(404, f"no such sweep: {sweep_id}")
        return job

    async def _handle_sweep_status(self, request: Request, sweep_id: str) -> Response:
        job = self._job(sweep_id)
        include = request.query.get("results", "done") != "none"
        return json_response(job.status_payload(include_results=include))

    async def _handle_sweep_events(self, request: Request, sweep_id: str) -> EventStream:
        job = self._job(sweep_id)

        async def _events() -> AsyncIterator[str]:
            async for payload in job.stream_events():
                yield f"data: {json.dumps(payload, separators=(',', ':'))}\n\n"
            final = json.dumps(
                job.status_payload(include_results=False), separators=(",", ":")
            )
            yield f"event: done\ndata: {final}\n\n"

        return EventStream(events=_events())

    # -- sweep execution ---------------------------------------------------------------

    async def _run_sweep(self, job: SweepJob, machines: List[Simulator]) -> None:
        """Fan the grid out to the scheduler; collect results in grid order.

        This is the service-side analogue of ``Runner.run``: same grid
        order, same progress semantics (via ``_ProgressTracker``), but every
        cell is a concurrent awaitable, so store hits resolve immediately,
        duplicates join in-flight simulations from other sweeps, and cold
        cells coalesce into the scheduler's batches.
        """
        spec = job.spec
        tracker = _ProgressTracker(job.record, len(spec))

        async def _cell(program: str, latency: int, simulator: Simulator) -> RunResult:
            result = await self.scheduler.run_cell(
                program, latency, simulator, scale=spec.scale, config=RunConfig()
            )
            tracker.report(result)
            return result

        tasks = [
            asyncio.ensure_future(_cell(program, latency, simulator))
            for program in spec.programs
            for latency in spec.latencies
            for simulator in machines
        ]
        try:
            results = await asyncio.gather(*tasks)
            job.finish(SweepResult(spec=spec, results=list(results)))
        except BaseException as exc:
            for task in tasks:
                task.cancel()
            job.fail(exc)
            if isinstance(exc, asyncio.CancelledError):
                raise

    # -- lifecycle ---------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await serve_connection(reader, writer, self.router, on_request=self._count_request)

    def _count_request(self, request: Request) -> None:
        self.requests_served += 1

    async def start(self, host: str = "127.0.0.1", port: int = 8023) -> asyncio.AbstractServer:
        """Bind and start accepting connections; returns the asyncio server.

        Pass ``port=0`` to bind an ephemeral port; read the actual address
        back from the returned server's ``sockets``.
        """
        return await asyncio.start_server(self._on_connection, host=host, port=port)

    async def aclose(self) -> None:
        """Cancel running sweeps and release the scheduler's pools."""
        for job in list(self.sweeps.values()):
            if job.task is not None and not job.task.done():
                job.task.cancel()
        await asyncio.gather(
            *(job.task for job in self.sweeps.values() if job.task is not None),
            return_exceptions=True,
        )
        self.scheduler.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 8023,
    store: Union[ResultStore, str, Path, None] = None,
    jobs: int = 1,
    announce=print,
) -> None:
    """Run the service until interrupted (the ``repro serve`` entry point)."""

    async def _main() -> None:
        service = ReproService(store=store, jobs=jobs)
        server = await service.start(host=host, port=port)
        try:
            sockets = server.sockets or ()
            for sock in sockets:
                bound_host, bound_port = sock.getsockname()[:2]
                announce(
                    f"serving on http://{bound_host}:{bound_port} "
                    f"(store: {service.store.root}, jobs: {jobs})"
                )
            await server.serve_forever()
        finally:
            server.close()
            await server.wait_closed()
            await service.aclose()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        announce("shutting down")


__all__ = ["ReproService", "SweepJob", "serve"]
