"""Trace generation from static programs.

The :class:`TraceBuilder` plays the role of running a Dixie-instrumented
executable: it walks basic blocks in dynamic order, keeps track of the vector
length and vector stride registers, lays program data regions out in a flat
address space, and emits one dynamic record per executed instruction —
directly into the trace's :class:`~repro.trace.columns.ColumnarTrace`
columns, with no intermediate record object per instruction.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import TraceError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import BasicBlock
from repro.isa.registers import ELEMENT_SIZE_BYTES, VECTOR_REGISTER_LENGTH
from repro.trace.record import DynamicInstruction, Trace

#: Version of the trace-generation algorithm.  Any change that alters the
#: dynamic instruction stream a program model produces (instruction order,
#: addresses, vector lengths, region layout, ...) must bump this constant:
#: it is folded into every :mod:`repro.store` cache key, so bumping it
#: invalidates persisted results computed from the old streams.
#: v2: the columnar pipeline — the stream itself is unchanged, but results
#: persisted before the representation change are not served as hits.
TRACE_GENERATOR_VERSION = 2

#: Base of the data segment used by the region allocator.
_DATA_SEGMENT_BASE = 0x1000_0000

#: Base of the (scalar + vector spill) stack segment.
_STACK_SEGMENT_BASE = 0x7000_0000

#: Alignment (bytes) between allocated regions, to keep ranges visually distinct.
_REGION_ALIGNMENT = 0x1000


class RegionAllocator:
    """Lays out named data regions in a flat byte-addressed space.

    Regions whose name starts with ``spill`` or ``stack`` are placed in a
    separate stack segment, mirroring how compiler spill slots live on the
    stack while array data lives in the static data segment.
    """

    def __init__(self) -> None:
        self._addresses: Dict[str, int] = {}
        self._next_data = _DATA_SEGMENT_BASE
        self._next_stack = _STACK_SEGMENT_BASE

    def base_of(self, region: str, size_bytes: int = 0x10000) -> int:
        """Return (allocating on first use) the base address of ``region``."""
        if region in self._addresses:
            return self._addresses[region]
        is_stack = region.startswith("spill") or region.startswith("stack")
        aligned = _align(size_bytes, _REGION_ALIGNMENT)
        if is_stack:
            base = self._next_stack
            self._next_stack += aligned
        else:
            base = self._next_data
            self._next_data += aligned
        self._addresses[region] = base
        return base

    def address_of(self, region: str, element_offset: int = 0) -> int:
        """Byte address of element ``element_offset`` within ``region``."""
        return self.base_of(region) + element_offset * ELEMENT_SIZE_BYTES

    @property
    def regions(self) -> Dict[str, int]:
        """A copy of the region → base-address map."""
        return dict(self._addresses)


def _align(value: int, alignment: int) -> int:
    return ((value + alignment - 1) // alignment) * alignment


class TraceBuilder:
    """Builds a dynamic trace by replaying basic blocks.

    The builder tracks the architectural vector length and vector stride
    registers (set by ``SET_VL`` / ``SET_VS`` instructions) and assigns a
    concrete byte address to every memory reference.  Callers control where a
    block's memory references land through ``region_offsets`` — a map from
    region name to an element offset — which is how loop iterations advance
    through their arrays.
    """

    def __init__(self, name: str, allocator: Optional[RegionAllocator] = None) -> None:
        self.trace = Trace(name=name)
        self.allocator = allocator if allocator is not None else RegionAllocator()
        self._vector_length = VECTOR_REGISTER_LENGTH
        self._vector_stride = 1
        self._sequence = 0

    # -- architectural state ---------------------------------------------------

    @property
    def vector_length(self) -> int:
        return self._vector_length

    @property
    def vector_stride(self) -> int:
        return self._vector_stride

    # -- emission ---------------------------------------------------------------

    def append_block(
        self,
        block: BasicBlock,
        region_offsets: Optional[Dict[str, int]] = None,
    ) -> None:
        """Replay one basic block, emitting a dynamic record per instruction."""
        offsets = region_offsets or {}
        self.trace.blocks_executed += 1
        for instruction in block.instructions:
            self._append_instruction(instruction, block.label, offsets)

    def append_instruction(
        self,
        instruction: Instruction,
        block_label: str = "",
        region_offsets: Optional[Dict[str, int]] = None,
    ) -> DynamicInstruction:
        """Emit a single dynamic record outside of block replay."""
        self._append_instruction(instruction, block_label, region_offsets or {})
        return self.trace[len(self.trace) - 1]

    def _append_instruction(
        self,
        instruction: Instruction,
        block_label: str,
        offsets: Dict[str, int],
    ) -> None:
        self._update_control_registers(instruction)
        self.trace.columns.append(
            instruction,
            sequence=self._sequence,
            block_label=block_label,
            vector_length=self._effective_length(instruction),
            stride_elements=self._effective_stride(instruction),
            base_address=self._effective_address(instruction, offsets),
        )
        self._sequence += 1

    def _update_control_registers(self, instruction: Instruction) -> None:
        if instruction.opcode is Opcode.SET_VL:
            if instruction.immediate is None:
                raise TraceError("SET_VL traced without an immediate vector length")
            if not 0 <= instruction.immediate <= VECTOR_REGISTER_LENGTH:
                raise TraceError(
                    f"SET_VL immediate {instruction.immediate} outside "
                    f"[0, {VECTOR_REGISTER_LENGTH}]"
                )
            self._vector_length = instruction.immediate
        elif instruction.opcode is Opcode.SET_VS:
            if instruction.immediate is None:
                raise TraceError("SET_VS traced without an immediate stride")
            self._vector_stride = instruction.immediate

    def _effective_length(self, instruction: Instruction) -> int:
        if instruction.is_vector:
            return self._vector_length
        return 1

    def _effective_stride(self, instruction: Instruction) -> int:
        if instruction.memory is not None and instruction.is_vector_memory:
            return instruction.memory.stride
        return 1

    def _effective_address(
        self, instruction: Instruction, offsets: Dict[str, int]
    ) -> Optional[int]:
        if instruction.memory is None:
            return None
        region = instruction.memory.region
        offset = offsets.get(region, 0)
        return self.allocator.address_of(region, offset)

    # -- results -----------------------------------------------------------------

    def build(self) -> Trace:
        """Finalize and return the accumulated trace."""
        self.trace.metadata.setdefault("regions", self.allocator.regions)
        self.trace.validate()
        return self.trace
