"""Trace statistics in the style of Table 1 of the paper.

Table 1 reports, per Perfect Club program: the number of basic blocks
executed, the number of scalar and vector instructions issued, the number of
vector operations performed, the percentage of vectorization and the average
vector length.  :func:`compute_statistics` derives the same quantities (plus a
few the rest of the paper relies on, such as the spill-access fraction used in
Section 7) from a :class:`~repro.trace.record.Trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.stats import Histogram
from repro.isa.registers import ELEMENT_SIZE_BYTES
from repro.trace.record import Trace


@dataclass
class TraceStatistics:
    """Aggregate statistics of one dynamic trace."""

    name: str
    basic_blocks: int = 0
    scalar_instructions: int = 0
    vector_instructions: int = 0
    vector_operations: int = 0
    scalar_memory_instructions: int = 0
    vector_memory_instructions: int = 0
    vector_memory_operations: int = 0
    spill_memory_instructions: int = 0
    memory_bytes: int = 0
    vector_length_histogram: Histogram = field(default_factory=Histogram)

    @property
    def total_instructions(self) -> int:
        return self.scalar_instructions + self.vector_instructions

    @property
    def total_operations(self) -> int:
        """Scalar instructions each count as one operation (paper Table 1)."""
        return self.scalar_instructions + self.vector_operations

    @property
    def vectorization_percent(self) -> float:
        """Percentage of all operations performed by vector instructions."""
        total = self.total_operations
        if total == 0:
            return 0.0
        return 100.0 * self.vector_operations / total

    @property
    def average_vector_length(self) -> float:
        """Vector operations divided by vector instructions (Table 1, col. 6)."""
        if self.vector_instructions == 0:
            return 0.0
        return self.vector_operations / self.vector_instructions

    @property
    def memory_instructions(self) -> int:
        return self.scalar_memory_instructions + self.vector_memory_instructions

    @property
    def spill_fraction(self) -> float:
        """Fraction of memory instructions that are compiler spill accesses."""
        total = self.memory_instructions
        if total == 0:
            return 0.0
        return self.spill_memory_instructions / total

    def as_table_row(self) -> dict[str, float]:
        """The row of Table 1 for this program, as a plain dictionary."""
        return {
            "program": self.name,
            "basic_blocks": self.basic_blocks,
            "scalar_instructions": self.scalar_instructions,
            "vector_instructions": self.vector_instructions,
            "vector_operations": self.vector_operations,
            "vectorization_percent": round(self.vectorization_percent, 1),
            "average_vector_length": round(self.average_vector_length, 1),
        }


def compute_statistics(trace: Trace) -> TraceStatistics:
    """Compute :class:`TraceStatistics` in one pass over the trace columns.

    The loop reads the instruction-table index and vector-length columns with
    per-field locals and takes every static fact (vector? memory? spill?)
    from the precomputed
    :class:`~repro.trace.columns.InstructionInfo` table — no record objects
    are materialized.
    """
    stats = TraceStatistics(name=trace.name, basic_blocks=trace.blocks_executed)
    columns = trace.columns
    infos = columns.instruction_infos()
    insn = columns.insn
    lengths = columns.vl
    histogram_counts: dict[int, int] = {}

    vector_instructions = 0
    vector_operations = 0
    scalar_instructions = 0
    scalar_memory = 0
    vector_memory = 0
    vector_memory_operations = 0
    spill_memory = 0
    memory_elements = 0

    for index in range(len(insn)):
        info = infos[insn[index]]
        if info.is_vector:
            length = lengths[index]
            vector_instructions += 1
            vector_operations += length
            histogram_counts[length] = histogram_counts.get(length, 0) + 1
            if info.is_memory:
                memory_elements += length
                vector_memory += 1
                vector_memory_operations += length
                if info.is_spill:
                    spill_memory += 1
        else:
            scalar_instructions += 1
            if info.is_memory:
                memory_elements += 1
                scalar_memory += 1
                if info.is_spill:
                    spill_memory += 1

    stats.vector_instructions = vector_instructions
    stats.vector_operations = vector_operations
    stats.scalar_instructions = scalar_instructions
    stats.scalar_memory_instructions = scalar_memory
    stats.vector_memory_instructions = vector_memory
    stats.vector_memory_operations = vector_memory_operations
    stats.spill_memory_instructions = spill_memory
    stats.memory_bytes = memory_elements * ELEMENT_SIZE_BYTES
    for length, count in histogram_counts.items():
        stats.vector_length_histogram.add(length, count)
    return stats
