"""Serialization of dynamic traces.

The native format is *chunked binary columns* (format version 2): one small
JSON header carrying the trace metadata, the unique static-instruction table
and the basic-block label table, followed by fixed-size chunks of the dynamic
columns as raw little-endian ``int64`` blobs plus one opcode-class byte per
record.  Writing streams straight out of the in-memory
:class:`~repro.trace.columns.ColumnarTrace`, so a trace is never expanded
into per-record objects on its way to disk.  Gzip compression is applied
automatically when the target path ends in ``.gz``.

The original JSON-lines record format (version 1) can still be written with
``write_trace(trace, path, format="jsonl")`` for interoperability with tools
that expect one JSON object per dynamic instruction; the reader accepts both
formats transparently.
"""

from __future__ import annotations

import gzip
import json
import struct
import sys
from pathlib import Path
from typing import IO, Union

from repro.common.errors import TraceError
from repro.isa.instruction import Instruction
from repro.isa.registers import Register
from repro.trace.record import DynamicInstruction, Trace

#: Version tag of the native chunked-column format.
TRACE_FORMAT_VERSION = 2

#: Version tag of the legacy JSON-lines record format.
LEGACY_TRACE_FORMAT_VERSION = 1

#: Leading magic bytes of a chunked-column trace file.
TRACE_MAGIC = b"REPROTRC"

#: Dynamic records per chunk in the columnar format.
CHUNK_RECORDS = 65536

#: The int64 columns of one chunk, in on-disk order.
INT64_COLUMNS = ("insn", "seq", "vl", "stride", "addr", "block")

_U32 = struct.Struct("<I")


def _register_to_json(register: Register) -> list:
    return [register.register_class.value, register.index]


def _instruction_to_json(instruction: Instruction) -> dict:
    payload: dict = {
        "op": instruction.opcode.value,
        "d": [_register_to_json(r) for r in instruction.destinations],
        "s": [_register_to_json(r) for r in instruction.sources],
    }
    if instruction.memory is not None:
        payload["m"] = {
            "region": instruction.memory.region,
            "stride": instruction.memory.stride,
            "spill": instruction.memory.is_spill,
            "indexed": instruction.memory.indexed,
        }
    if instruction.immediate is not None:
        payload["i"] = instruction.immediate
    if instruction.label:
        payload["l"] = instruction.label
    return payload


def record_to_json(record: DynamicInstruction) -> dict:
    """Serialize one dynamic record to a JSON-compatible dictionary."""
    payload = {
        "seq": record.sequence,
        "bb": record.block_label,
        "vl": record.vector_length,
        "vs": record.stride_elements,
        "insn": _instruction_to_json(record.instruction),
    }
    if record.base_address is not None:
        payload["addr"] = record.base_address
    return payload


def _jsonable_metadata(metadata: dict) -> dict:
    """Keep only JSON-serializable metadata entries."""
    cleaned = {}
    for key, value in metadata.items():
        try:
            json.dumps(value)
        except TypeError:
            continue
        cleaned[key] = value
    return cleaned


# -- chunked binary columns (native format) --------------------------------------------


def _column_blob(column, start: int, stop: int) -> bytes:
    """The raw little-endian bytes of one int64 column slice."""
    piece = column[start:stop]
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts only
        piece = piece[:]
        piece.byteswap()
    return piece.tobytes()


def _write_columns(trace: Trace, stream: IO[bytes]) -> None:
    columns = trace.columns
    header = {
        "format_version": TRACE_FORMAT_VERSION,
        "name": trace.name,
        "blocks_executed": trace.blocks_executed,
        "records": len(columns),
        "chunk_records": CHUNK_RECORDS,
        "metadata": _jsonable_metadata(trace.metadata),
        "instructions": [
            _instruction_to_json(instruction) for instruction in columns.instructions
        ],
        "block_labels": list(columns.block_labels),
    }
    header_bytes = json.dumps(header).encode("utf-8")
    stream.write(TRACE_MAGIC)
    stream.write(_U32.pack(len(header_bytes)))
    stream.write(header_bytes)

    total = len(columns)
    for start in range(0, total, CHUNK_RECORDS):
        stop = min(start + CHUNK_RECORDS, total)
        stream.write(_U32.pack(stop - start))
        for name in INT64_COLUMNS:
            stream.write(_column_blob(getattr(columns, name), start, stop))
        stream.write(bytes(columns.kind[start:stop]))


# -- legacy JSON lines ------------------------------------------------------------------


def _write_jsonl(trace: Trace, stream: IO[str]) -> None:
    header = {
        "format_version": LEGACY_TRACE_FORMAT_VERSION,
        "name": trace.name,
        "blocks_executed": trace.blocks_executed,
        "records": len(trace),
        "metadata": _jsonable_metadata(trace.metadata),
    }
    stream.write(json.dumps(header) + "\n")
    for record in trace:
        stream.write(json.dumps(record_to_json(record)) + "\n")


# -- entry point ------------------------------------------------------------------------


def write_trace(
    trace: Trace, path: Union[str, Path], format: str = "columns"
) -> Path:
    """Write ``trace`` to ``path`` and return the path.

    ``format="columns"`` (the default) writes the chunked binary column
    format; ``format="jsonl"`` writes the legacy version-1 JSON-lines record
    stream.  Either way a ``.gz`` suffix gzips the output.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    gzipped = target.suffix == ".gz"
    if format == "columns":
        with (gzip.open(target, "wb") if gzipped else open(target, "wb")) as stream:
            _write_columns(trace, stream)
    elif format == "jsonl":
        opener = (
            gzip.open(target, "wt", encoding="utf-8")
            if gzipped
            else open(target, "w", encoding="utf-8")
        )
        with opener as stream:
            _write_jsonl(trace, stream)
    else:
        raise TraceError(
            f"unknown trace format {format!r} (expected 'columns' or 'jsonl')"
        )
    return target
