"""Serialization of dynamic traces to JSON-lines files.

Traces are written as one JSON object per line, with a single header line
carrying trace-level metadata.  Gzip compression is applied automatically when
the target path ends in ``.gz``.  The format is deliberately self-contained so
traces can be archived and replayed later without the workload models that
produced them, just as the paper archives Dixie traces separately from the
Perfect Club sources.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO, Union

from repro.isa.instruction import Instruction
from repro.isa.registers import Register
from repro.trace.record import DynamicInstruction, Trace

#: Version tag written into every trace header.
TRACE_FORMAT_VERSION = 1


def _register_to_json(register: Register) -> list:
    return [register.register_class.value, register.index]


def _instruction_to_json(instruction: Instruction) -> dict:
    payload: dict = {
        "op": instruction.opcode.value,
        "d": [_register_to_json(r) for r in instruction.destinations],
        "s": [_register_to_json(r) for r in instruction.sources],
    }
    if instruction.memory is not None:
        payload["m"] = {
            "region": instruction.memory.region,
            "stride": instruction.memory.stride,
            "spill": instruction.memory.is_spill,
            "indexed": instruction.memory.indexed,
        }
    if instruction.immediate is not None:
        payload["i"] = instruction.immediate
    if instruction.label:
        payload["l"] = instruction.label
    return payload


def record_to_json(record: DynamicInstruction) -> dict:
    """Serialize one dynamic record to a JSON-compatible dictionary."""
    payload = {
        "seq": record.sequence,
        "bb": record.block_label,
        "vl": record.vector_length,
        "vs": record.stride_elements,
        "insn": _instruction_to_json(record.instruction),
    }
    if record.base_address is not None:
        payload["addr"] = record.base_address
    return payload


def _open_for_write(path: Path) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def write_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` in JSON-lines format and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format_version": TRACE_FORMAT_VERSION,
        "name": trace.name,
        "blocks_executed": trace.blocks_executed,
        "records": len(trace.records),
        "metadata": _jsonable_metadata(trace.metadata),
    }
    with _open_for_write(target) as stream:
        stream.write(json.dumps(header) + "\n")
        for record in trace.records:
            stream.write(json.dumps(record_to_json(record)) + "\n")
    return target


def _jsonable_metadata(metadata: dict) -> dict:
    """Keep only JSON-serializable metadata entries."""
    cleaned = {}
    for key, value in metadata.items():
        try:
            json.dumps(value)
        except TypeError:
            continue
        cleaned[key] = value
    return cleaned
