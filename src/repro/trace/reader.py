"""Deserialization of dynamic traces written by :mod:`repro.trace.writer`.

Both on-disk formats are accepted and detected automatically:

* the native chunked binary column format (version 2), loaded chunk-by-chunk
  straight into a :class:`~repro.trace.columns.ColumnarTrace` — no
  per-record objects are created on the way in; and
* the legacy JSON-lines record format (version 1), parsed line by line and
  encoded into columns as it streams — the file is never materialized as a
  list of record objects either.

:func:`iter_trace_records` is the fully streaming record adapter: it yields
one :class:`~repro.trace.record.DynamicInstruction` view at a time from
either format without ever holding the whole trace in memory, which is what
tools that scan huge archived traces should use.

Every malformed input — missing or empty file, unrecognized leading bytes, a
format version this reader does not speak, a chunk cut short by truncation,
a record count that disagrees with the header — raises
:class:`~repro.common.errors.TraceError` with the file position, never a bare
``struct`` or ``json`` exception.
"""

from __future__ import annotations

import gzip
import json
import struct
import sys
from array import array
from pathlib import Path
from typing import IO, Iterator, List, Union

from repro.common.errors import TraceError
from repro.isa.instruction import Instruction, MemoryOperand
from repro.isa.opcodes import Opcode
from repro.isa.registers import Register, RegisterClass, canonical_register
from repro.trace.columns import ColumnarTrace
from repro.trace.record import DynamicInstruction, Trace
from repro.trace.writer import (
    INT64_COLUMNS,
    LEGACY_TRACE_FORMAT_VERSION,
    TRACE_FORMAT_VERSION,
    TRACE_MAGIC,
)

_U32 = struct.Struct("<I")


def _register_from_json(payload: list) -> Register:
    register_class, index = payload
    return canonical_register(RegisterClass(register_class), int(index))


def _instruction_from_json(payload: dict) -> Instruction:
    memory = None
    if "m" in payload:
        memory_payload = payload["m"]
        memory = MemoryOperand(
            region=memory_payload["region"],
            stride=int(memory_payload["stride"]),
            is_spill=bool(memory_payload.get("spill", False)),
            indexed=bool(memory_payload.get("indexed", False)),
        )
    return Instruction(
        opcode=Opcode(payload["op"]),
        destinations=tuple(_register_from_json(r) for r in payload.get("d", [])),
        sources=tuple(_register_from_json(r) for r in payload.get("s", [])),
        memory=memory,
        immediate=payload.get("i"),
        label=payload.get("l", ""),
    )


def record_from_json(payload: dict) -> DynamicInstruction:
    """Deserialize one dynamic record from its JSON dictionary."""
    return DynamicInstruction(
        instruction=_instruction_from_json(payload["insn"]),
        sequence=int(payload["seq"]),
        block_label=payload.get("bb", ""),
        vector_length=int(payload.get("vl", 1)),
        stride_elements=int(payload.get("vs", 1)),
        base_address=payload.get("addr"),
    )


# -- binary column parsing --------------------------------------------------------------


def _read_exact(stream: IO[bytes], count: int, source: Path, what: str) -> bytes:
    data = stream.read(count)
    if len(data) != count:
        raise TraceError(
            f"truncated trace file {source}: expected {count} more bytes "
            f"of {what}, found {len(data)}"
        )
    return data


def _read_binary_header(stream: IO[bytes], source: Path) -> dict:
    header_length = _U32.unpack(
        _read_exact(stream, _U32.size, source, "header length")
    )[0]
    header_bytes = _read_exact(stream, header_length, source, "header")
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise TraceError(f"corrupt trace header in {source}: {exc}") from exc
    version = header.get("format_version")
    if version != TRACE_FORMAT_VERSION:
        raise TraceError(
            f"unsupported trace format version {version!r} in {source} "
            f"(expected {TRACE_FORMAT_VERSION})"
        )
    return header


def _decode_instruction_table(header: dict, source: Path) -> List[Instruction]:
    try:
        return [
            _instruction_from_json(payload)
            for payload in header.get("instructions", [])
        ]
    except (KeyError, ValueError) as exc:
        raise TraceError(
            f"corrupt instruction table in {source}: {exc}"
        ) from exc


def _int64_column(blob: bytes) -> array:
    column = array("q")
    column.frombytes(blob)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts only
        column.byteswap()
    return column


def _validate_columns(columns: ColumnarTrace, source: Path) -> None:
    """Enforce the in-memory invariants on bulk-loaded columns.

    Bulk loading bypasses :meth:`ColumnarTrace.append`, so the checks append
    performs (table references in range, non-negative vector lengths, memory
    records carry an address) are re-established here — a corrupt file must
    fail loudly, not surface later as a nonsense statistic.
    """
    instruction_count = len(columns.instructions)
    if any(index >= instruction_count or index < 0 for index in columns.insn):
        raise TraceError(
            f"corrupt trace {source}: record references an instruction "
            f"outside the {instruction_count}-entry table"
        )
    label_count = len(columns.block_labels)
    if any(index >= label_count or index < 0 for index in columns.block):
        raise TraceError(
            f"corrupt trace {source}: record references a basic-block label "
            f"outside the {label_count}-entry table"
        )
    if columns.vl and min(columns.vl) < 0:
        raise TraceError(f"corrupt trace {source}: negative vector length")
    infos = columns.instruction_infos()
    insn = columns.insn
    addresses = columns.addr
    for index in range(len(insn)):
        if addresses[index] < 0 and infos[insn[index]].is_memory:
            raise TraceError(
                f"corrupt trace {source}: memory record {index} carries "
                f"no base address"
            )


def _read_columns(stream: IO[bytes], source: Path) -> Trace:
    header = _read_binary_header(stream, source)
    columns = ColumnarTrace()
    columns.instructions = _decode_instruction_table(header, source)
    columns.block_labels = [str(label) for label in header.get("block_labels", [])]

    expected = int(header.get("records", 0))
    loaded = 0
    while loaded < expected:
        count = _U32.unpack(
            _read_exact(stream, _U32.size, source, "chunk header")
        )[0]
        if count == 0 or loaded + count > expected:
            raise TraceError(
                f"corrupt trace chunk in {source}: chunk of {count} records "
                f"at record {loaded} of {expected}"
            )
        for name in INT64_COLUMNS:
            blob = _read_exact(stream, count * 8, source, f"column {name!r}")
            getattr(columns, name).extend(_int64_column(blob))
        columns.kind.extend(_read_exact(stream, count, source, "column 'kind'"))
        loaded += count

    if stream.read(1):
        raise TraceError(
            f"corrupt trace {source}: file contains more data than the "
            f"{expected} records its header declares"
        )
    _validate_columns(columns, source)

    trace = Trace(
        name=str(header.get("name", source.stem)),
        blocks_executed=int(header.get("blocks_executed", 0)),
        metadata=dict(header.get("metadata", {})),
        columns=columns,
    )
    trace.validate()
    return trace


# -- legacy JSON lines ------------------------------------------------------------------


def _iter_legacy_records(
    stream: IO[str], source: Path
) -> Iterator[DynamicInstruction]:
    """Parse legacy record lines one at a time (the header is already read)."""
    for line_number, line in enumerate(stream, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            yield record_from_json(json.loads(line))
        except (KeyError, ValueError) as exc:
            raise TraceError(
                f"malformed trace record at {source}:{line_number}: {exc}"
            ) from exc


def _read_legacy_header(stream: IO[str], source: Path) -> dict:
    header_line = stream.readline()
    if not header_line:
        raise TraceError(f"trace file is empty: {source}")
    try:
        header = json.loads(header_line)
    except ValueError as exc:
        raise TraceError(
            f"unrecognized trace file {source}: neither a chunked-column "
            f"trace nor a JSON-lines trace ({exc})"
        ) from exc
    version = header.get("format_version")
    if version != LEGACY_TRACE_FORMAT_VERSION:
        raise TraceError(
            f"unsupported trace format version {version!r} in {source} "
            f"(expected {LEGACY_TRACE_FORMAT_VERSION} or {TRACE_FORMAT_VERSION})"
        )
    return header


def _read_legacy(stream: IO[str], source: Path) -> Trace:
    header = _read_legacy_header(stream, source)
    trace = Trace(
        name=header.get("name", source.stem),
        blocks_executed=int(header.get("blocks_executed", 0)),
        metadata=dict(header.get("metadata", {})),
    )
    for record in _iter_legacy_records(stream, source):
        trace.append(record)
    expected = header.get("records")
    if expected is not None and expected != len(trace):
        raise TraceError(
            f"trace {source} declares {expected} records but contains {len(trace)}"
        )
    trace.validate()
    return trace


# -- format detection and entry points --------------------------------------------------


def _open_binary(path: Path) -> IO[bytes]:
    if path.suffix == ".gz":
        return gzip.open(path, "rb")
    return open(path, "rb")


def _open_text(path: Path) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def _detect_format(source: Path) -> str:
    """``"columns"``, ``"jsonl"`` or a :class:`TraceError` for anything else."""
    if not source.exists():
        raise TraceError(f"trace file not found: {source}")
    with _open_binary(source) as stream:
        lead = stream.read(len(TRACE_MAGIC))
    if lead == TRACE_MAGIC:
        return "columns"
    if not lead:
        raise TraceError(f"trace file is empty: {source}")
    if lead.lstrip()[:1] == b"{":
        return "jsonl"
    raise TraceError(
        f"unrecognized trace file {source}: bad magic {lead[:8]!r} "
        f"(expected {TRACE_MAGIC!r} or a JSON-lines header)"
    )


def read_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written with :func:`~repro.trace.writer.write_trace`.

    Both the native chunked-column format and the legacy JSON-lines format
    are accepted; the result is always a columnar-backed
    :class:`~repro.trace.record.Trace`.
    """
    source = Path(path)
    if _detect_format(source) == "columns":
        with _open_binary(source) as stream:
            stream.read(len(TRACE_MAGIC))
            return _read_columns(stream, source)
    with _open_text(source) as stream:
        return _read_legacy(stream, source)


def iter_trace_records(path: Union[str, Path]) -> Iterator[DynamicInstruction]:
    """Stream the dynamic records of a trace file, one view at a time.

    Unlike :func:`read_trace` this never holds the whole trace in memory:
    legacy files are decoded line by line, columnar files chunk by chunk.
    Use it to scan archived traces that are too large to load.
    """
    source = Path(path)
    if _detect_format(source) == "columns":
        with _open_binary(source) as stream:
            stream.read(len(TRACE_MAGIC))
            header = _read_binary_header(stream, source)
            instructions = _decode_instruction_table(header, source)
            labels = [str(label) for label in header.get("block_labels", [])]
            expected = int(header.get("records", 0))
            loaded = 0
            while loaded < expected:
                count = _U32.unpack(
                    _read_exact(stream, _U32.size, source, "chunk header")
                )[0]
                if count == 0 or loaded + count > expected:
                    raise TraceError(
                        f"corrupt trace chunk in {source}: chunk of {count} "
                        f"records at record {loaded} of {expected}"
                    )
                blobs = {
                    name: _int64_column(
                        _read_exact(stream, count * 8, source, f"column {name!r}")
                    )
                    for name in INT64_COLUMNS
                }
                _read_exact(stream, count, source, "column 'kind'")
                instruction_count = len(instructions)
                label_count = len(labels)
                for offset in range(count):
                    address = blobs["addr"][offset]
                    insn_index = blobs["insn"][offset]
                    block_index = blobs["block"][offset]
                    if not (
                        0 <= insn_index < instruction_count
                        and 0 <= block_index < label_count
                    ):
                        raise TraceError(
                            f"corrupt trace {source}: record {loaded + offset} "
                            f"references a missing table entry"
                        )
                    yield DynamicInstruction(
                        instruction=instructions[insn_index],
                        sequence=blobs["seq"][offset],
                        block_label=labels[block_index],
                        vector_length=blobs["vl"][offset],
                        stride_elements=blobs["stride"][offset],
                        base_address=None if address < 0 else address,
                    )
                loaded += count
            if stream.read(1):
                raise TraceError(
                    f"corrupt trace {source}: file contains more data than "
                    f"the {expected} records its header declares"
                )
        return
    with _open_text(source) as stream:
        _read_legacy_header(stream, source)
        yield from _iter_legacy_records(stream, source)


__all__ = ["iter_trace_records", "read_trace", "record_from_json"]
