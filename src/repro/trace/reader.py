"""Deserialization of dynamic traces written by :mod:`repro.trace.writer`."""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO, Union

from repro.common.errors import TraceError
from repro.isa.instruction import Instruction, MemoryOperand
from repro.isa.opcodes import Opcode
from repro.isa.registers import Register, RegisterClass
from repro.trace.record import DynamicInstruction, Trace
from repro.trace.writer import TRACE_FORMAT_VERSION


def _register_from_json(payload: list) -> Register:
    register_class, index = payload
    return Register(RegisterClass(register_class), int(index))


def _instruction_from_json(payload: dict) -> Instruction:
    memory = None
    if "m" in payload:
        memory_payload = payload["m"]
        memory = MemoryOperand(
            region=memory_payload["region"],
            stride=int(memory_payload["stride"]),
            is_spill=bool(memory_payload.get("spill", False)),
            indexed=bool(memory_payload.get("indexed", False)),
        )
    return Instruction(
        opcode=Opcode(payload["op"]),
        destinations=tuple(_register_from_json(r) for r in payload.get("d", [])),
        sources=tuple(_register_from_json(r) for r in payload.get("s", [])),
        memory=memory,
        immediate=payload.get("i"),
        label=payload.get("l", ""),
    )


def record_from_json(payload: dict) -> DynamicInstruction:
    """Deserialize one dynamic record from its JSON dictionary."""
    return DynamicInstruction(
        instruction=_instruction_from_json(payload["insn"]),
        sequence=int(payload["seq"]),
        block_label=payload.get("bb", ""),
        vector_length=int(payload.get("vl", 1)),
        stride_elements=int(payload.get("vs", 1)),
        base_address=payload.get("addr"),
    )


def _open_for_read(path: Path) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def read_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written with :func:`~repro.trace.writer.write_trace`."""
    source = Path(path)
    if not source.exists():
        raise TraceError(f"trace file not found: {source}")
    with _open_for_read(source) as stream:
        header_line = stream.readline()
        if not header_line:
            raise TraceError(f"trace file is empty: {source}")
        header = json.loads(header_line)
        version = header.get("format_version")
        if version != TRACE_FORMAT_VERSION:
            raise TraceError(
                f"unsupported trace format version {version!r} in {source} "
                f"(expected {TRACE_FORMAT_VERSION})"
            )
        trace = Trace(
            name=header.get("name", source.stem),
            blocks_executed=int(header.get("blocks_executed", 0)),
            metadata=dict(header.get("metadata", {})),
        )
        for line_number, line in enumerate(stream, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                trace.append(record_from_json(json.loads(line)))
            except (KeyError, ValueError) as exc:
                raise TraceError(
                    f"malformed trace record at {source}:{line_number}: {exc}"
                ) from exc
    expected = header.get("records")
    if expected is not None and expected != len(trace.records):
        raise TraceError(
            f"trace {source} declares {expected} records but contains {len(trace.records)}"
        )
    trace.validate()
    return trace
