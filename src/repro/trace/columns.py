"""Columnar dynamic traces: the canonical in-memory trace representation.

A dynamic trace is billions of repetitions of a few hundred *static*
instructions, so storing one Python object per executed instruction wastes
both memory and time — every simulator pass pays attribute lookups and
property chains per dynamic record.  :class:`ColumnarTrace` stores the
dynamic stream as parallel machine-typed columns instead:

* ``insn``   — index into the (small) table of unique static instructions,
* ``kind``   — one byte per record: the instruction's :class:`OpcodeClass`,
* ``seq``    — the record's declared sequence number (normally its position),
* ``vl``     — vector length in effect,
* ``stride`` — vector stride in elements,
* ``addr``   — base byte address of memory references (:data:`NO_ADDRESS`
  for non-memory instructions),
* ``block``  — index into the table of basic-block labels.

Everything a simulator asks *per static instruction* — classification flags,
operand lists, which functional unit it needs — is precomputed once per
unique instruction into an :class:`InstructionInfo` and shared by every
dynamic occurrence, so hot loops read plain attributes off a table entry
plus integers off column slices.

The legacy one-object-per-record view (:class:`~repro.trace.record.DynamicInstruction`)
is still available through :meth:`ColumnarTrace.record` and
:meth:`ColumnarTrace.iter_records`; it is materialized on demand and never
stored.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import TraceError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpcodeClass
from repro.isa.registers import RegisterClass

#: Sentinel stored in the ``addr`` column for records without a memory address.
NO_ADDRESS = -1

#: One byte per :class:`OpcodeClass`, the dispatch code of the ``kind`` column.
KIND_SCALAR_COMPUTE = 0
KIND_SCALAR_MEMORY = 1
KIND_VECTOR_COMPUTE = 2
KIND_VECTOR_MEMORY = 3
KIND_VECTOR_CONTROL = 4
KIND_CONTROL = 5
KIND_QUEUE_MOVE = 6

_KIND_OF_CLASS = {
    OpcodeClass.SCALAR_COMPUTE: KIND_SCALAR_COMPUTE,
    OpcodeClass.SCALAR_MEMORY: KIND_SCALAR_MEMORY,
    OpcodeClass.VECTOR_COMPUTE: KIND_VECTOR_COMPUTE,
    OpcodeClass.VECTOR_MEMORY: KIND_VECTOR_MEMORY,
    OpcodeClass.VECTOR_CONTROL: KIND_VECTOR_CONTROL,
    OpcodeClass.CONTROL: KIND_CONTROL,
    OpcodeClass.QUEUE_MOVE: KIND_QUEUE_MOVE,
}

_CLASS_OF_KIND = {code: cls for cls, code in _KIND_OF_CLASS.items()}


def kind_of(instruction: Instruction) -> int:
    """The one-byte ``kind`` code of an instruction's opcode class."""
    return _KIND_OF_CLASS[instruction.opcode_class]


def opcode_class_of_kind(kind: int) -> OpcodeClass:
    """The :class:`OpcodeClass` a ``kind`` byte stands for."""
    return _CLASS_OF_KIND[kind]


class InstructionInfo:
    """Everything the simulators ask of one *static* instruction, precomputed.

    One :class:`InstructionInfo` exists per unique instruction of a trace and
    is shared by every dynamic occurrence, so the per-record cost of
    classification drops from a chain of property calls and set-membership
    tests to a single list index.  All attributes are plain data — reading
    them never executes code.
    """

    __slots__ = (
        "instruction",
        "opcode",
        "opcode_class",
        "kind",
        "is_vector",
        "is_memory",
        "is_load",
        "is_store",
        "is_vector_memory",
        "is_scalar_memory",
        "is_indexed",
        "is_spill",
        "is_branch",
        "is_conditional_branch",
        "is_queue_move",
        "requires_fu2",
        "may_chain",
        "sources",
        "destinations",
        "destination_flags",
        "vector_destinations",
        "scalar_destinations",
        "vector_sources",
        "scalar_sources",
        "data_sources",
        "immediate",
    )

    def __init__(self, instruction: Instruction) -> None:
        self.instruction = instruction
        self.opcode = instruction.opcode
        self.opcode_class = instruction.opcode_class
        self.kind = _KIND_OF_CLASS[self.opcode_class]
        self.is_vector = instruction.is_vector
        self.is_memory = instruction.is_memory
        self.is_load = instruction.is_load
        self.is_store = instruction.is_store
        self.is_vector_memory = instruction.is_vector_memory
        self.is_scalar_memory = instruction.is_scalar_memory
        self.is_indexed = instruction.memory is not None and instruction.memory.indexed
        self.is_spill = instruction.is_spill_access
        self.is_branch = instruction.is_branch
        self.is_conditional_branch = instruction.is_conditional_branch
        self.is_queue_move = instruction.is_queue_move
        self.requires_fu2 = instruction.requires_fu2
        # Flexible chaining targets (paper §2.1): vector arithmetic and
        # vector stores may start on a producer's first element.
        self.may_chain = (
            self.opcode_class is OpcodeClass.VECTOR_COMPUTE
            or (self.is_store and self.is_vector_memory)
        )
        self.sources = instruction.sources
        self.destinations = instruction.destinations
        # (register, is_vector) pairs: issue rules that chain vector results
        # but not scalar ones read the flag instead of a register property.
        self.destination_flags = tuple(
            (register, register.is_vector) for register in instruction.destinations
        )
        self.vector_destinations = instruction.vector_destinations()
        self.scalar_destinations = instruction.scalar_destinations()
        self.vector_sources = instruction.vector_sources()
        self.scalar_sources = instruction.scalar_sources()
        # Data sources as the VP sees them: everything except the implicit
        # VL/VS control registers, which the fetch processor resolves.
        self.data_sources = tuple(
            register
            for register in instruction.sources
            if register.register_class
            not in (RegisterClass.VECTOR_LENGTH, RegisterClass.VECTOR_STRIDE)
        )
        self.immediate = instruction.immediate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstructionInfo({self.instruction})"


class ColumnarTrace:
    """Parallel-column storage of one dynamic instruction stream.

    Appends validate the same invariants the legacy record constructor did
    (non-negative vector lengths, memory references carry an address), so a
    columnar trace can never hold a record its object form would have
    rejected.
    """

    __slots__ = (
        "instructions",
        "insn",
        "kind",
        "seq",
        "vl",
        "stride",
        "addr",
        "block",
        "block_labels",
        "annotations",
        "_intern",
        "_value_intern",
        "_block_intern",
        "_infos",
    )

    def __init__(self) -> None:
        self.instructions: List[Instruction] = []
        self.insn = array("q")
        self.kind = bytearray()
        self.seq = array("q")
        self.vl = array("q")
        self.stride = array("q")
        self.addr = array("q")
        self.block = array("q")
        self.block_labels: List[str] = []
        #: Scratch space for consumers to stash derived per-trace tables
        #: (e.g. the DVA's routing decisions); cleared on structural change.
        self.annotations: Dict[str, object] = {}
        self._intern: Dict[int, int] = {}
        self._value_intern: Dict[Instruction, int] = {}
        self._block_intern: Dict[str, int] = {}
        self._infos: Optional[List[InstructionInfo]] = None

    # -- construction ------------------------------------------------------------------

    def intern_instruction(self, instruction: Instruction) -> int:
        """Index of ``instruction`` in the static table, adding it on first use.

        Interning is by object identity first: trace generation replays the
        same static :class:`~repro.isa.instruction.Instruction` objects, so
        the id-keyed fast path avoids hashing instruction contents per
        record.  A distinct-but-equal object (e.g. one parsed per record
        from a legacy JSON-lines trace) falls back to value interning, so
        the table always holds one entry per *unique* instruction.
        """
        index = self._intern.get(id(instruction))
        if index is None:
            index = self._value_intern.get(instruction)
            if index is None:
                index = len(self.instructions)
                self.instructions.append(instruction)
                self._value_intern[instruction] = index
                # The id shortcut is only safe for objects the table keeps
                # alive: a transient equal object could be collected and its
                # id reused by an unrelated instruction.
                self._intern[id(instruction)] = index
                self._invalidate()
        return index

    def intern_block(self, label: str) -> int:
        """Index of ``label`` in the basic-block label table."""
        index = self._block_intern.get(label)
        if index is None:
            index = len(self.block_labels)
            self.block_labels.append(label)
            self._block_intern[label] = index
        return index

    def append(
        self,
        instruction: Instruction,
        sequence: int,
        block_label: str = "",
        vector_length: int = 1,
        stride_elements: int = 1,
        base_address: Optional[int] = None,
    ) -> None:
        """Append one dynamic record to the columns."""
        if vector_length < 0:
            raise TraceError("vector length cannot be negative")
        if instruction.is_memory and base_address is None:
            raise TraceError(
                f"memory instruction {instruction} traced without a base address"
            )
        index = self.intern_instruction(instruction)
        self.insn.append(index)
        self.kind.append(kind_of(instruction))
        self.seq.append(sequence)
        self.vl.append(vector_length)
        self.stride.append(stride_elements)
        self.addr.append(NO_ADDRESS if base_address is None else base_address)
        self.block.append(self.intern_block(block_label))

    def _invalidate(self) -> None:
        self._infos = None
        self.annotations.clear()

    # -- derived tables ----------------------------------------------------------------

    def instruction_infos(self) -> List[InstructionInfo]:
        """Per-unique-instruction precomputed metadata, aligned with ``instructions``.

        Computed once per trace and cached; every simulation of the trace —
        and, under ``fork``, every worker process — shares the same table.
        """
        infos = self._infos
        if infos is None or len(infos) != len(self.instructions):
            infos = [InstructionInfo(insn) for insn in self.instructions]
            self._infos = infos
        return infos

    # -- record views ------------------------------------------------------------------

    def record(self, index: int):
        """Materialize the legacy record view of one dynamic slot."""
        from repro.trace.record import DynamicInstruction

        address = self.addr[index]
        return DynamicInstruction(
            instruction=self.instructions[self.insn[index]],
            sequence=self.seq[index],
            block_label=self.block_labels[self.block[index]],
            vector_length=self.vl[index],
            stride_elements=self.stride[index],
            base_address=None if address == NO_ADDRESS else address,
        )

    def iter_records(self) -> Iterator["DynamicInstruction"]:  # noqa: F821
        """Yield legacy record views one at a time (never stored)."""
        from repro.trace.record import DynamicInstruction

        instructions = self.instructions
        labels = self.block_labels
        for index in range(len(self.insn)):
            address = self.addr[index]
            yield DynamicInstruction(
                instruction=instructions[self.insn[index]],
                sequence=self.seq[index],
                block_label=labels[self.block[index]],
                vector_length=self.vl[index],
                stride_elements=self.stride[index],
                base_address=None if address == NO_ADDRESS else address,
            )

    # -- introspection -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.insn)

    def validate(self, name: str = "") -> None:
        """Raise :class:`TraceError` unless sequence numbers count up from zero."""
        for expected, sequence in enumerate(self.seq):
            if sequence != expected:
                raise TraceError(
                    f"trace {name!r}: record {expected} carries sequence "
                    f"number {sequence}"
                )

    def counts_by_kind(self) -> Dict[int, int]:
        """How many dynamic records fall in each ``kind`` code."""
        counts: Dict[int, int] = {}
        for code in self.kind:
            counts[code] = counts.get(code, 0) + 1
        return counts

    def memory_bounds(self) -> Optional[Tuple[int, int]]:
        """Smallest and largest base address touched (``None`` without any)."""
        lowest: Optional[int] = None
        highest: Optional[int] = None
        for address in self.addr:
            if address == NO_ADDRESS:
                continue
            if lowest is None or address < lowest:
                lowest = address
            if highest is None or address > highest:
                highest = address
        if lowest is None or highest is None:
            return None
        return lowest, highest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarTrace(records={len(self.insn)}, "
            f"instructions={len(self.instructions)}, "
            f"blocks={len(self.block_labels)})"
        )
