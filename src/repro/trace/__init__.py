"""Dynamic instruction traces — the reproduction's substitute for Dixie.

The paper instruments Convex executables with *Dixie* to produce four traces
(basic blocks, vector-length register values, vector-stride register values
and memory reference addresses) which together describe the full dynamic
execution of a program.  Here the same information lives in a
:class:`~repro.trace.columns.ColumnarTrace`: parallel machine-typed arrays
(instruction-table index, opcode class, vector length, stride, base address,
basic-block id) over a small table of unique static instructions, with
per-instruction facts precomputed once into
:class:`~repro.trace.columns.InstructionInfo` entries.  The
record-at-a-time view — one
:class:`~repro.trace.record.DynamicInstruction` per executed instruction —
is materialized on demand for tools and tests.

Both simulators (:mod:`repro.refarch` and :mod:`repro.dva`) consume traces,
never static programs, exactly as in the paper; their hot loops read the
columns directly.
"""

from repro.trace.columns import ColumnarTrace, InstructionInfo
from repro.trace.record import DynamicInstruction, Trace
from repro.trace.generator import RegionAllocator, TraceBuilder
from repro.trace.reader import iter_trace_records, read_trace
from repro.trace.statistics import TraceStatistics, compute_statistics
from repro.trace.writer import write_trace

__all__ = [
    "ColumnarTrace",
    "DynamicInstruction",
    "InstructionInfo",
    "RegionAllocator",
    "Trace",
    "TraceBuilder",
    "TraceStatistics",
    "compute_statistics",
    "iter_trace_records",
    "read_trace",
    "write_trace",
]
