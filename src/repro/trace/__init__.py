"""Dynamic instruction traces — the reproduction's substitute for Dixie.

The paper instruments Convex executables with *Dixie* to produce four traces
(basic blocks, vector-length register values, vector-stride register values
and memory reference addresses) which together describe the full dynamic
execution of a program.  Here the same information is carried by a single
stream of :class:`~repro.trace.record.DynamicInstruction` records: each record
pairs a static instruction with the vector length, stride and base address in
effect when it executed.

Both simulators (:mod:`repro.refarch` and :mod:`repro.dva`) consume traces,
never static programs, exactly as in the paper.
"""

from repro.trace.record import DynamicInstruction, Trace
from repro.trace.generator import RegionAllocator, TraceBuilder
from repro.trace.reader import read_trace
from repro.trace.statistics import TraceStatistics, compute_statistics
from repro.trace.writer import write_trace

__all__ = [
    "DynamicInstruction",
    "RegionAllocator",
    "Trace",
    "TraceBuilder",
    "TraceStatistics",
    "compute_statistics",
    "read_trace",
    "write_trace",
]
