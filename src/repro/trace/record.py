"""Dynamic trace records.

A :class:`DynamicInstruction` is one executed instance of a static
:class:`~repro.isa.instruction.Instruction`, annotated with everything the
simulators need to reproduce its timing: the vector length and stride in
effect, and the base address of memory references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.common.errors import TraceError
from repro.isa.instruction import Instruction
from repro.isa.registers import ELEMENT_SIZE_BYTES


@dataclass(frozen=True)
class DynamicInstruction:
    """One executed instruction instance.

    Attributes:
        instruction: the static instruction that was executed.
        sequence: position of this record in the dynamic instruction stream.
        block_label: label of the basic block the instruction belongs to.
        vector_length: number of elements processed (1 for scalar work).
        stride_elements: vector stride, in elements, for vector memory accesses.
        base_address: byte address of the first element for memory accesses.
    """

    instruction: Instruction
    sequence: int
    block_label: str = ""
    vector_length: int = 1
    stride_elements: int = 1
    base_address: Optional[int] = None

    def __post_init__(self) -> None:
        if self.vector_length < 0:
            raise TraceError("vector length cannot be negative")
        if self.instruction.is_memory and self.base_address is None:
            raise TraceError(
                f"memory instruction {self.instruction} traced without a base address"
            )

    # -- delegated classification -------------------------------------------

    @property
    def opcode(self):
        return self.instruction.opcode

    @property
    def is_vector(self) -> bool:
        return self.instruction.is_vector

    @property
    def is_memory(self) -> bool:
        return self.instruction.is_memory

    @property
    def is_load(self) -> bool:
        return self.instruction.is_load

    @property
    def is_store(self) -> bool:
        return self.instruction.is_store

    @property
    def is_vector_memory(self) -> bool:
        return self.instruction.is_vector_memory

    @property
    def is_scalar_memory(self) -> bool:
        return self.instruction.is_scalar_memory

    @property
    def is_branch(self) -> bool:
        return self.instruction.is_branch

    @property
    def is_spill_access(self) -> bool:
        return self.instruction.is_spill_access

    @property
    def is_indexed_memory(self) -> bool:
        return self.instruction.memory is not None and self.instruction.memory.indexed

    # -- derived quantities ----------------------------------------------------

    @property
    def operations(self) -> int:
        """Number of element operations performed by this instruction.

        Vector instructions perform ``vector_length`` operations; everything
        else performs one (paper Table 1 distinguishes vector *instructions*
        from vector *operations* on exactly this basis).
        """
        return self.vector_length if self.is_vector else 1

    @property
    def effective_length(self) -> int:
        """Vector length for vector instructions, 1 for scalar instructions."""
        return self.vector_length if self.is_vector else 1

    @property
    def stride_bytes(self) -> int:
        return self.stride_elements * ELEMENT_SIZE_BYTES

    @property
    def bytes_accessed(self) -> int:
        """Total number of bytes moved to or from memory by this record."""
        if not self.is_memory:
            return 0
        return self.effective_length * ELEMENT_SIZE_BYTES

    def __str__(self) -> str:
        extra = []
        if self.is_vector:
            extra.append(f"vl={self.vector_length}")
        if self.is_memory:
            extra.append(f"addr=0x{self.base_address:x}")
            extra.append(f"stride={self.stride_elements}")
        suffix = f"  ({', '.join(extra)})" if extra else ""
        return f"[{self.sequence}] {self.instruction}{suffix}"


@dataclass
class Trace:
    """A full dynamic execution trace of one program."""

    name: str
    records: List[DynamicInstruction] = field(default_factory=list)
    blocks_executed: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    def append(self, record: DynamicInstruction) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DynamicInstruction]:
        return iter(self.records)

    def __getitem__(self, index: int) -> DynamicInstruction:
        return self.records[index]

    @property
    def vector_instruction_count(self) -> int:
        return sum(1 for record in self.records if record.is_vector)

    @property
    def scalar_instruction_count(self) -> int:
        return sum(1 for record in self.records if not record.is_vector)

    @property
    def vector_operation_count(self) -> int:
        return sum(record.operations for record in self.records if record.is_vector)

    @property
    def memory_instruction_count(self) -> int:
        return sum(1 for record in self.records if record.is_memory)

    def validate(self) -> None:
        """Check internal consistency of the trace.

        Raises :class:`~repro.common.errors.TraceError` when sequence numbers
        are not strictly increasing from zero.
        """
        for expected, record in enumerate(self.records):
            if record.sequence != expected:
                raise TraceError(
                    f"trace {self.name!r}: record {expected} carries sequence "
                    f"number {record.sequence}"
                )
