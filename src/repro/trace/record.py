"""Dynamic trace records.

A :class:`DynamicInstruction` is one executed instance of a static
:class:`~repro.isa.instruction.Instruction`, annotated with everything the
simulators need to reproduce its timing: the vector length and stride in
effect, and the base address of memory references.

Since the columnar refactor, :class:`Trace` no longer stores one
:class:`DynamicInstruction` object per executed instruction: the canonical
in-memory form is a :class:`~repro.trace.columns.ColumnarTrace` of parallel
machine-typed arrays, and record objects are materialized views created on
demand (iteration, indexing, the :attr:`Trace.records` property).  Code that
consumes traces record-by-record keeps working unchanged; code that cares
about throughput reads the columns directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro.common.errors import TraceError
from repro.isa.instruction import Instruction
from repro.isa.registers import ELEMENT_SIZE_BYTES
from repro.trace.columns import (
    KIND_SCALAR_MEMORY,
    KIND_VECTOR_COMPUTE,
    KIND_VECTOR_MEMORY,
    ColumnarTrace,
)


@dataclass(frozen=True)
class DynamicInstruction:
    """One executed instruction instance.

    Attributes:
        instruction: the static instruction that was executed.
        sequence: position of this record in the dynamic instruction stream.
        block_label: label of the basic block the instruction belongs to.
        vector_length: number of elements processed (1 for scalar work).
        stride_elements: vector stride, in elements, for vector memory accesses.
        base_address: byte address of the first element for memory accesses.
    """

    instruction: Instruction
    sequence: int
    block_label: str = ""
    vector_length: int = 1
    stride_elements: int = 1
    base_address: Optional[int] = None

    def __post_init__(self) -> None:
        if self.vector_length < 0:
            raise TraceError("vector length cannot be negative")
        if self.instruction.is_memory and self.base_address is None:
            raise TraceError(
                f"memory instruction {self.instruction} traced without a base address"
            )

    # -- delegated classification -------------------------------------------

    @property
    def opcode(self):
        return self.instruction.opcode

    @property
    def is_vector(self) -> bool:
        return self.instruction.is_vector

    @property
    def is_memory(self) -> bool:
        return self.instruction.is_memory

    @property
    def is_load(self) -> bool:
        return self.instruction.is_load

    @property
    def is_store(self) -> bool:
        return self.instruction.is_store

    @property
    def is_vector_memory(self) -> bool:
        return self.instruction.is_vector_memory

    @property
    def is_scalar_memory(self) -> bool:
        return self.instruction.is_scalar_memory

    @property
    def is_branch(self) -> bool:
        return self.instruction.is_branch

    @property
    def is_spill_access(self) -> bool:
        return self.instruction.is_spill_access

    @property
    def is_indexed_memory(self) -> bool:
        return self.instruction.memory is not None and self.instruction.memory.indexed

    # -- derived quantities ----------------------------------------------------

    @property
    def operations(self) -> int:
        """Number of element operations performed by this instruction.

        Vector instructions perform ``vector_length`` operations; everything
        else performs one (paper Table 1 distinguishes vector *instructions*
        from vector *operations* on exactly this basis).
        """
        return self.vector_length if self.is_vector else 1

    @property
    def effective_length(self) -> int:
        """Vector length for vector instructions, 1 for scalar instructions."""
        return self.vector_length if self.is_vector else 1

    @property
    def stride_bytes(self) -> int:
        return self.stride_elements * ELEMENT_SIZE_BYTES

    @property
    def bytes_accessed(self) -> int:
        """Total number of bytes moved to or from memory by this record."""
        if not self.is_memory:
            return 0
        return self.effective_length * ELEMENT_SIZE_BYTES

    def __str__(self) -> str:
        extra = []
        if self.is_vector:
            extra.append(f"vl={self.vector_length}")
        if self.is_memory:
            extra.append(f"addr=0x{self.base_address:x}")
            extra.append(f"stride={self.stride_elements}")
        suffix = f"  ({', '.join(extra)})" if extra else ""
        return f"[{self.sequence}] {self.instruction}{suffix}"


class Trace:
    """A full dynamic execution trace of one program.

    The dynamic stream lives in :attr:`columns`, a
    :class:`~repro.trace.columns.ColumnarTrace`.  Iteration, indexing and the
    :attr:`records` property materialize :class:`DynamicInstruction` views on
    demand, so record-consuming code is unaffected by the storage change;
    per-record appends are encoded straight into the columns.
    """

    __slots__ = ("name", "blocks_executed", "metadata", "columns")

    def __init__(
        self,
        name: str,
        records: Optional[Iterable[DynamicInstruction]] = None,
        blocks_executed: int = 0,
        metadata: Optional[Dict[str, object]] = None,
        columns: Optional[ColumnarTrace] = None,
    ) -> None:
        self.name = name
        self.blocks_executed = blocks_executed
        self.metadata: Dict[str, object] = metadata if metadata is not None else {}
        self.columns = columns if columns is not None else ColumnarTrace()
        if records is not None:
            for record in records:
                self.append(record)

    def append(self, record: DynamicInstruction) -> None:
        """Encode one record view into the columns."""
        self.columns.append(
            record.instruction,
            sequence=record.sequence,
            block_label=record.block_label,
            vector_length=record.vector_length,
            stride_elements=record.stride_elements,
            base_address=record.base_address,
        )

    @property
    def records(self) -> List[DynamicInstruction]:
        """A freshly materialized list of record views (not the storage).

        Mutating the returned list does not alter the trace; use
        :meth:`append` to grow it.  Hot paths should iterate
        ``self.columns`` instead of calling this per pass.
        """
        return list(self.columns.iter_records())

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[DynamicInstruction]:
        return self.columns.iter_records()

    def __getitem__(self, index: int) -> DynamicInstruction:
        return self.columns.record(index)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        if (
            self.name != other.name
            or self.blocks_executed != other.blocks_executed
            or self.metadata != other.metadata
            or len(self) != len(other)
        ):
            return False
        # Record views are compared streaming, pairwise — never materialized
        # as full lists — so equality of two large traces stays flat-memory
        # and exits on the first difference.
        return all(
            mine == theirs
            for mine, theirs in zip(
                self.columns.iter_records(), other.columns.iter_records()
            )
        )

    @property
    def vector_instruction_count(self) -> int:
        kinds = self.columns.kind
        return kinds.count(KIND_VECTOR_COMPUTE) + kinds.count(KIND_VECTOR_MEMORY)

    @property
    def scalar_instruction_count(self) -> int:
        return len(self.columns) - self.vector_instruction_count

    @property
    def vector_operation_count(self) -> int:
        kinds = self.columns.kind
        lengths = self.columns.vl
        return sum(
            lengths[index]
            for index, kind in enumerate(kinds)
            if kind == KIND_VECTOR_COMPUTE or kind == KIND_VECTOR_MEMORY
        )

    @property
    def memory_instruction_count(self) -> int:
        kinds = self.columns.kind
        return kinds.count(KIND_VECTOR_MEMORY) + kinds.count(KIND_SCALAR_MEMORY)

    def validate(self) -> None:
        """Check internal consistency of the trace.

        Raises :class:`~repro.common.errors.TraceError` when sequence numbers
        are not strictly increasing from zero.
        """
        self.columns.validate(self.name)
