"""The address processor's memory pipeline.

This module models everything that sits between the address processor and
main memory in the decoupled architecture (paper §4.2):

* the pipelined memory port (a :class:`~repro.engine.MemoryFabric` port pool,
  one unit in the paper's machine) with its shared address bus,
* the two-step store mechanism: store addresses wait in the VSAQ/SSAQ until
  the matching data arrives in the VADQ/SADQ, after which the store is
  performed "behind the back" of the AP,
* dynamic memory disambiguation: a load is checked against every queued
  store; on a conflict the store queues drain up to the youngest offending
  store before the load may access memory,
* the store→load bypass (§7): a load identical to a queued vector store is
  serviced by copying the data from the VADQ into the AVDQ in VL cycles,
  without using the memory port and without paying memory latency,
* the scalar cache that filters scalar references away from the port (wired
  inside the fabric, shared with the reference machine's wiring).

The interface speaks the columnar trace's language: every reference is
described by the scalars the simulator already holds in locals (base
address, vector length, stride, the indexed flag) plus an opaque ``key``
identifying the dynamic record, so no record objects flow through the
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import SimulationError
from repro.common.intervals import IntervalRecorder
from repro.dva.config import DecoupledConfig
from repro.dva.queues import TimedQueue
from repro.engine import MemoryFabric, ResourcePool
from repro.isa.registers import ELEMENT_SIZE_BYTES
from repro.memory.model import MemoryModel
from repro.memory.ranges import MemoryRange, access_range
from repro.memory.scalar_cache import ScalarCache


@dataclass
class PendingStore:
    """A store whose address sits in a store queue awaiting its data.

    The store is described entirely by scalars captured at enqueue time:
    ``key`` identifies the dynamic record (its trace position), ``length`` is
    the *effective* vector length (1 for scalar stores) and ``bus_cycles`` /
    ``traffic_bytes`` are the port occupancy and memory traffic the store
    will cost when it drains.
    """

    key: int
    base: int
    length: int
    stride_elements: int
    indexed: bool
    memory_range: MemoryRange
    is_vector: bool
    bus_cycles: int
    traffic_bytes: int
    address_queue_index: int
    address_ready: int
    data_queue_index: Optional[int] = None
    data_ready: Optional[int] = None
    drained: bool = False
    drain_end: int = 0
    bypassed_to_loads: int = 0

    @property
    def ready(self) -> int:
        """Cycle at which both address and data are available."""
        if self.data_ready is None:
            raise SimulationError(
                f"store #{self.key} has no data yet; the producing QMOV must "
                f"be simulated before the store can be performed"
            )
        return max(self.address_ready, self.data_ready)


@dataclass
class VectorLoadOutcome:
    """How one vector load was serviced."""

    start: int
    data_ready: int
    bypassed: bool


class MemoryPipeline:
    """Port, store queues, disambiguation and bypass of the decoupled AP."""

    def __init__(self, memory: MemoryModel, config: DecoupledConfig) -> None:
        self.memory = memory
        self.config = config
        self.fabric = MemoryFabric(
            memory,
            config.scalar_cache,
            ports=config.memory_ports,
            scalar_store_writes_through=config.scalar_store_writes_through,
        )

        queues = config.queues
        self.vsaq = TimedQueue("VSAQ", queues.effective_vector_store_address)
        self.ssaq = TimedQueue("SSAQ", queues.scalar_store_address)
        self.vadq = TimedQueue("VADQ", queues.vector_store_data)
        self.sadq = TimedQueue("SADQ", queues.scalar_data)
        self.avdq = TimedQueue("AVDQ", queues.vector_load_data)
        self.asdq = TimedQueue("ASDQ", queues.scalar_data)

        self.bypass = ResourcePool("BYPASS")

        self.pending_stores: List[PendingStore] = []
        self._next_undrained = 0

        self.bypassed_loads = 0
        self.bypassed_bytes = 0
        self.disambiguation_stalls = 0
        self.forced_drains = 0

    # -- fabric views ------------------------------------------------------------------

    @property
    def cache(self) -> ScalarCache:
        return self.fabric.cache

    @property
    def port(self) -> IntervalRecorder:
        return self.fabric.port_recorder()

    @property
    def port_free(self) -> int:
        """Earliest cycle the next reference could claim a port."""
        return self.fabric.port_free()

    @property
    def port_quiet(self) -> int:
        """Cycle at which every port has finished its last reference.

        Identical to :attr:`port_free` on a single-port machine; on a
        multi-port machine the wind-down must wait for the *slowest* port,
        not the first free one.
        """
        return self.fabric.port_quiet()

    @property
    def traffic_bytes(self) -> int:
        return self.fabric.traffic_bytes

    @property
    def bypass_unit(self) -> IntervalRecorder:
        return self.bypass.recorder()

    @property
    def bypass_free(self) -> int:
        return self.bypass.free_time()

    # -- store bookkeeping -------------------------------------------------------------

    def enqueue_vector_store(
        self,
        key: int,
        base: int,
        vector_length: int,
        stride_elements: int,
        indexed: bool,
        requested: int,
    ) -> int:
        """Put a vector store's address into the VSAQ; return the push cycle."""
        self._make_room(self.vsaq)
        push_time = self.vsaq.push(requested)
        self.pending_stores.append(
            PendingStore(
                key=key,
                base=base,
                length=vector_length,
                stride_elements=stride_elements,
                indexed=indexed,
                memory_range=access_range(
                    base, vector_length, stride_elements, indexed=indexed
                ),
                is_vector=True,
                bus_cycles=self.memory.vector_bus_cycles(vector_length),
                traffic_bytes=vector_length * ELEMENT_SIZE_BYTES,
                address_queue_index=self.vsaq.last_index,
                address_ready=push_time + 1,
            )
        )
        return push_time

    def enqueue_scalar_store(self, key: int, base: int, requested: int) -> int:
        """Put a scalar store's address into the SSAQ; return the push cycle."""
        self._make_room(self.ssaq)
        push_time = self.ssaq.push(requested)
        self.pending_stores.append(
            PendingStore(
                key=key,
                base=base,
                length=1,
                stride_elements=1,
                indexed=False,
                memory_range=MemoryRange(base, base + ELEMENT_SIZE_BYTES),
                is_vector=False,
                bus_cycles=self.memory.timings.scalar_bus_cycles,
                traffic_bytes=ELEMENT_SIZE_BYTES,
                address_queue_index=self.ssaq.last_index,
                address_ready=push_time + 1,
            )
        )
        return push_time

    def vector_store_data_slot_free(self) -> int:
        """Cycle the VADQ can accept another QMOV (forcing a drain when full).

        The request-independent half of :meth:`reserve_vector_store_data_slot`
        for the event core: the forced drain must still happen (it mutates the
        store queues and the port), but the resulting free cycle is registered
        as a wakeup instead of folded into a ``max``.
        """
        self._make_room(self.vadq)
        return self.vadq.slot_free_time()

    def reserve_vector_store_data_slot(self, requested: int) -> int:
        """Reserve a VADQ slot for a QMOV (forcing a drain when the queue is full)."""
        self._make_room(self.vadq)
        return self.vadq.earliest_push(requested)

    def attach_vector_store_data(self, key: int, push_time: int, data_ready: int) -> None:
        """Record that the VP has moved store ``key``'s data into the VADQ."""
        self.vadq.push(push_time, ready=data_ready)
        store = self._find_pending(key)
        store.data_queue_index = self.vadq.last_index
        store.data_ready = data_ready

    def attach_scalar_store_data(self, key: int, push_time: int, data_ready: int) -> None:
        """Record that the SP has moved store ``key``'s data into the SADQ."""
        self.sadq.push(push_time, ready=data_ready)
        store = self._find_pending(key)
        store.data_queue_index = self.sadq.last_index
        store.data_ready = data_ready

    def _find_pending(self, key: int) -> PendingStore:
        for store in reversed(self.pending_stores):
            if store.key == key:
                return store
        raise SimulationError(f"no pending store found for record #{key}")

    def _make_room(self, queue: TimedQueue) -> None:
        """Force-drain old stores until ``queue`` has a free slot."""
        while queue.outstanding >= queue.capacity:
            if self._next_undrained >= len(self.pending_stores):
                raise SimulationError(
                    f"queue {queue.name!r} is full but there is nothing left to drain"
                )
            self.forced_drains += 1
            self._drain_oldest()

    # -- load servicing -----------------------------------------------------------------

    def reserve_load_data_slot(self, requested: int) -> int:
        """Earliest cycle the AVDQ can accept another vector load."""
        return self.avdq.earliest_push(requested)

    def issue_vector_load(
        self,
        base: int,
        vector_length: int,
        stride_elements: int,
        indexed: bool,
        requested: int,
    ) -> VectorLoadOutcome:
        """Service a vector load: bypass it or send it to main memory.

        ``requested`` is the cycle at which the AP has the load ready to go
        (operands available, AVDQ slot reservable).  The returned outcome
        gives the cycle the load started and the cycle its last element is
        available in the AVDQ.
        """
        load_range = access_range(base, vector_length, stride_elements, indexed=indexed)
        conflict_index = self._youngest_conflict(load_range)

        if conflict_index is not None and self.config.enable_bypass:
            candidate = self.pending_stores[conflict_index]
            # The bypass requires the load to read exactly what the queued
            # store will write: same base, stride and length, both strided
            # vector accesses (paper §7).
            if (
                not candidate.drained
                and candidate.is_vector
                and not indexed
                and not candidate.indexed
                and base == candidate.base
                and stride_elements == candidate.stride_elements
                and vector_length == candidate.length
            ):
                return self._bypass_load(vector_length, requested, candidate)

        if conflict_index is not None:
            requested = max(requested, self._drain_through(conflict_index))
            self.disambiguation_stalls += 1

        return self._memory_load(vector_length, requested)

    def issue_scalar_load(self, base: int, requested: int) -> int:
        """Service a scalar load through the cache; return its data-ready cycle."""
        load_range = MemoryRange(base, base + ELEMENT_SIZE_BYTES)
        conflict_index = self._youngest_conflict(load_range)
        if conflict_index is not None:
            requested = max(requested, self._drain_through(conflict_index))
            self.disambiguation_stalls += 1

        access = self.fabric.scalar_access_at(base, False)
        if access.hit:
            return self.fabric.scalar_load_ready(access, requested)

        self._drain_ready_stores(requested)
        bus_start, _bus_end = self.fabric.occupy_bus(
            requested, self.memory.timings.scalar_bus_cycles, ELEMENT_SIZE_BYTES
        )
        return self.fabric.scalar_load_ready(access, bus_start)

    def _bypass_load(
        self, vector_length: int, requested: int, store: PendingStore
    ) -> VectorLoadOutcome:
        length = max(vector_length, 1)
        start, _unit = self.bypass.acquire(max(requested, store.ready), length)
        end = start + length
        self.bypassed_loads += 1
        self.bypassed_bytes += vector_length * ELEMENT_SIZE_BYTES
        store.bypassed_to_loads += 1
        return VectorLoadOutcome(start=start, data_ready=end, bypassed=True)

    def _memory_load(self, vector_length: int, requested: int) -> VectorLoadOutcome:
        self._drain_ready_stores(requested)
        bus_cycles = self.memory.vector_bus_cycles(vector_length)
        bus_start, _bus_end = self.fabric.occupy_bus(
            requested, bus_cycles, vector_length * ELEMENT_SIZE_BYTES
        )
        data_ready = self.memory.load_ready(bus_start, bus_cycles)
        return VectorLoadOutcome(start=bus_start, data_ready=data_ready, bypassed=False)

    # -- disambiguation and draining ------------------------------------------------------

    def _youngest_conflict(self, load_range: MemoryRange) -> Optional[int]:
        """Index of the youngest queued (undrained) store overlapping ``load_range``."""
        for index in range(len(self.pending_stores) - 1, self._next_undrained - 1, -1):
            store = self.pending_stores[index]
            if store.drained:
                continue
            if store.memory_range.overlaps(load_range):
                return index
        return None

    def _drain_through(self, last_index: int) -> int:
        """Perform every queued store up to and including ``last_index``."""
        finish = 0
        while self._next_undrained <= last_index:
            finish = self._drain_oldest()
        return finish

    def _drain_ready_stores(self, candidate_start: int) -> None:
        """Let stores that are already waiting use the port before a later load.

        Stores are performed behind the AP's back whenever both their address
        and data are present; when such a store would be ready no later than
        the load that is currently asking for the port, it goes first (stores
        among themselves always retire in program order).
        """
        while self._next_undrained < len(self.pending_stores):
            store = self.pending_stores[self._next_undrained]
            if store.data_ready is None:
                break
            port_free = self.port_free
            if max(port_free, store.ready) > max(port_free, candidate_start):
                break
            self._drain_oldest()

    def _drain_oldest(self) -> int:
        store = self.pending_stores[self._next_undrained]
        self._next_undrained += 1
        end = self._perform_store(store)
        return end

    def _perform_store(self, store: PendingStore) -> int:
        if store.drained:
            return store.drain_end
        ready = store.ready
        if store.is_vector:
            _bus_start, bus_end = self.fabric.occupy_bus(
                ready, store.bus_cycles, store.traffic_bytes
            )
            self.vsaq.pop(bus_end)
            self.vadq.pop(bus_end)
            store.drain_end = bus_end
        else:
            store.drain_end = self._perform_scalar_store(store, ready)
        store.drained = True
        return store.drain_end

    def _perform_scalar_store(self, store: PendingStore, ready: int) -> int:
        access = self.fabric.scalar_access_at(store.base, True)
        if access.uses_port:
            _bus_start, end = self.fabric.occupy_bus(
                ready, store.bus_cycles, store.traffic_bytes
            )
        else:
            end = ready + 1
        self.ssaq.pop(end)
        self.sadq.pop(end)
        return end

    # -- wind-down -------------------------------------------------------------------------

    def drain_all(self) -> int:
        """Perform every store still sitting in the queues; return the last cycle."""
        finish = self.port_quiet
        while self._next_undrained < len(self.pending_stores):
            finish = max(finish, self._drain_oldest())
        return finish

    @property
    def outstanding_stores(self) -> int:
        return len(self.pending_stores) - self._next_undrained
