"""Results produced by the decoupled architecture simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.intervals import IntervalRecorder, StateBreakdown, state_breakdown
from repro.common.stats import Histogram
from repro.common.timeline import OccupancyTimeline


@dataclass
class DecoupledResult:
    """Everything one decoupled-architecture run measures.

    In addition to the quantities the reference result exposes (total cycles,
    functional-unit and memory-port busy intervals, traffic), the decoupled
    result carries the queue occupancy timelines needed for Figure 6, the
    bypass statistics of Section 7 and per-processor instruction counts.
    """

    program: str
    latency: int
    total_cycles: int
    instructions: int
    bypass_enabled: bool

    fu1_busy: IntervalRecorder
    fu2_busy: IntervalRecorder
    port_busy: IntervalRecorder
    qmov_busy: List[IntervalRecorder]
    bypass_busy: IntervalRecorder

    avdq_occupancy: OccupancyTimeline
    vadq_occupancy: OccupancyTimeline
    instruction_queue_occupancy: Dict[str, OccupancyTimeline]

    instructions_per_processor: Dict[str, int] = field(default_factory=dict)
    memory_traffic_bytes: int = 0
    bypassed_loads: int = 0
    bypassed_bytes: int = 0
    disambiguation_stalls: int = 0
    fetch_stall_cycles: int = 0
    scalar_cache_hits: int = 0
    scalar_cache_misses: int = 0

    _breakdown: StateBreakdown | None = field(default=None, repr=False, compare=False)

    # -- unit-state analysis (Figures 1/4 style) ---------------------------------------

    def state_breakdown(self) -> StateBreakdown:
        """Cycles in each (FU2, FU1, LD) combination — comparable to the REF breakdown."""
        if self._breakdown is None:
            self._breakdown = state_breakdown(
                [self.fu2_busy, self.fu1_busy, self.port_busy], self.total_cycles
            )
        return self._breakdown

    @property
    def all_idle_cycles(self) -> int:
        """Cycles with FU2, FU1 and the memory port all idle (paper's ``( , , )``)."""
        return self.state_breakdown().cycles_all_idle()

    @property
    def port_idle_fraction(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return 1.0 - self.port_busy.busy_time() / self.total_cycles

    @property
    def port_busy_fraction(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.port_busy.busy_time() / self.total_cycles

    # -- queue analysis (Figure 6) -------------------------------------------------------

    def avdq_histogram(self) -> Histogram:
        """Cycles at each AVDQ occupancy level over the whole run."""
        return self.avdq_occupancy.occupancy_histogram(self.total_cycles)

    def max_avdq_occupancy(self) -> int:
        return self.avdq_occupancy.max_occupancy()

    def mean_avdq_occupancy(self) -> float:
        return self.avdq_occupancy.mean_occupancy(self.total_cycles)

    # -- bypass analysis (Section 7 / Figure 8) -------------------------------------------

    @property
    def bypass_fraction_of_loads(self) -> float:
        """Fraction of vector loads serviced by the bypass unit."""
        loads = self.instructions_per_processor.get("vector_loads", 0)
        if loads == 0:
            return 0.0
        return self.bypassed_loads / loads

    def summary(self) -> Dict[str, object]:
        """Headline numbers as a flat dictionary.

        The first eight keys are the *core key set* shared with
        :meth:`repro.refarch.result.ReferenceResult.summary`, so reports can
        mix results from both architectures without special-casing either.
        """
        return {
            "program": self.program,
            "latency": self.latency,
            "total_cycles": self.total_cycles,
            "instructions": self.instructions,
            "memory_traffic_bytes": self.memory_traffic_bytes,
            "scalar_cache_hits": self.scalar_cache_hits,
            "scalar_cache_misses": self.scalar_cache_misses,
            "all_idle_cycles": self.all_idle_cycles,
            "port_idle_fraction": round(self.port_idle_fraction, 4),
            "bypass": self.bypass_enabled,
            "bypassed_loads": self.bypassed_loads,
            "max_avdq_occupancy": self.max_avdq_occupancy(),
            "fetch_stall_cycles": self.fetch_stall_cycles,
        }

    def to_json(self) -> Dict[str, object]:
        """A JSON-serializable dictionary of everything reports consume.

        The returned value survives a ``json.dumps``/``json.loads`` round trip
        unchanged; :class:`repro.core.result.RunResult` embeds it verbatim.
        The AVDQ occupancy histogram is stored as sorted ``[level, cycles]``
        pairs because JSON objects cannot have integer keys.
        """
        return {
            **self.summary(),
            "bypassed_bytes": self.bypassed_bytes,
            "disambiguation_stalls": self.disambiguation_stalls,
            "instructions_per_processor": dict(self.instructions_per_processor),
            "mean_avdq_occupancy": round(self.mean_avdq_occupancy(), 4),
            "avdq_histogram": [
                [level, cycles] for level, cycles in self.avdq_histogram().items()
            ],
        }
