"""Timestamped bounded FIFO queues.

The decoupled simulator never steps cycles; instead every queue keeps, per
entry, the cycle at which the producer reserved the slot, the cycle at which
the entry's data became available, and the cycle at which the consumer
released the slot.  Because producers and consumers both work through the
program in order, the blocking behaviour of a bounded FIFO reduces to simple
timestamp arithmetic:

* a push must wait until the entry ``capacity`` positions earlier has been
  released, and
* a pop must wait until the entry at the head of the queue is ready.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import SimulationError
from repro.common.timeline import OccupancyTimeline


@dataclass
class QueueEntry:
    """Lifetime of one element of a timed queue."""

    push_time: int
    ready_time: int
    pop_time: Optional[int] = None
    payload: object = None


class TimedQueue:
    """A bounded FIFO described entirely by timestamps."""

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise SimulationError(f"queue {name!r} must have positive capacity")
        self.name = name
        self.capacity = capacity
        self.entries: List[QueueEntry] = []
        self._next_pop_index = 0
        self.push_stall_cycles = 0

    # -- producer side ---------------------------------------------------------------

    def earliest_push(self, requested: int) -> int:
        """Earliest cycle a new entry can be accepted, given the capacity."""
        index = len(self.entries)
        if index < self.capacity:
            return requested
        blocking = self.entries[index - self.capacity]
        if blocking.pop_time is None:
            raise SimulationError(
                f"queue {self.name!r}: entry {index - self.capacity} has not been "
                f"released yet; the consumer must be simulated first"
            )
        return max(requested, blocking.pop_time)

    def push(self, requested: int, ready: Optional[int] = None, payload: object = None) -> int:
        """Reserve a slot at the earliest legal cycle and return that cycle."""
        push_time = self.earliest_push(requested)
        self.push_stall_cycles += push_time - requested
        entry = QueueEntry(
            push_time=push_time,
            ready_time=ready if ready is not None else push_time,
            payload=payload,
        )
        self.entries.append(entry)
        return push_time

    def set_ready(self, index: int, ready: int) -> None:
        """Record when the data of entry ``index`` becomes available."""
        self.entries[index].ready_time = ready

    @property
    def last_index(self) -> int:
        if not self.entries:
            raise SimulationError(f"queue {self.name!r} is empty")
        return len(self.entries) - 1

    # -- consumer side ----------------------------------------------------------------

    def front_index(self) -> int:
        """Index of the entry the next pop will take."""
        if self._next_pop_index >= len(self.entries):
            raise SimulationError(f"queue {self.name!r}: pop with no outstanding entry")
        return self._next_pop_index

    def front(self) -> QueueEntry:
        return self.entries[self.front_index()]

    def pop(self, requested: int) -> QueueEntry:
        """Release the entry at the head of the queue at ``requested`` or later.

        The caller decides what "consuming" means (for instruction queues the
        pop time is the cycle the instruction issues; for data queues it is the
        cycle the last element has been drained) — this method only checks FIFO
        order and records the release time.
        """
        entry = self.front()
        if requested < entry.push_time:
            raise SimulationError(
                f"queue {self.name!r}: pop at {requested} precedes push at {entry.push_time}"
            )
        entry.pop_time = requested
        self._next_pop_index += 1
        return entry

    # -- statistics ----------------------------------------------------------------------

    @property
    def total_entries(self) -> int:
        return len(self.entries)

    @property
    def outstanding(self) -> int:
        return len(self.entries) - self._next_pop_index

    def occupancy_timeline(self, name: Optional[str] = None, horizon: int = 0) -> OccupancyTimeline:
        """Residency records of every entry (unreleased entries last to ``horizon``)."""
        timeline = OccupancyTimeline(name or self.name, capacity=self.capacity)
        for entry in self.entries:
            leave = entry.pop_time if entry.pop_time is not None else max(horizon, entry.push_time)
            timeline.record(entry.push_time, leave)
        return timeline

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimedQueue(name={self.name!r}, capacity={self.capacity}, "
            f"entries={len(self.entries)}, outstanding={self.outstanding})"
        )
