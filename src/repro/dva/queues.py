"""Timestamped bounded FIFO queues.

The decoupled simulator never steps cycles; instead every queue keeps, per
entry, the cycle at which the producer reserved the slot, the cycle at which
the entry's data became available, and the cycle at which the consumer
released the slot.  Because producers and consumers both work through the
program in order, the blocking behaviour of a bounded FIFO reduces to simple
timestamp arithmetic:

* a push must wait until the entry ``capacity`` positions earlier has been
  released, and
* a pop must wait until the entry at the head of the queue is ready.

Entry lifetimes are stored as three parallel timestamp lists rather than one
object per entry: the simulator pushes into these queues for every dynamic
instruction, so the columnar layout keeps the hot path to integer list
operations.  :class:`QueueEntry` remains as a materialized *view* of one
entry for callers that want named fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import SimulationError
from repro.common.timeline import OccupancyTimeline


@dataclass
class QueueEntry:
    """Lifetime of one element of a timed queue (a view, not the storage)."""

    push_time: int
    ready_time: int
    pop_time: Optional[int] = None


class TimedQueue:
    """A bounded FIFO described entirely by timestamps."""

    __slots__ = (
        "name",
        "capacity",
        "push_times",
        "ready_times",
        "pop_times",
        "_next_pop_index",
        "push_stall_cycles",
    )

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise SimulationError(f"queue {name!r} must have positive capacity")
        self.name = name
        self.capacity = capacity
        self.push_times: List[int] = []
        self.ready_times: List[int] = []
        self.pop_times: List[Optional[int]] = []
        self._next_pop_index = 0
        self.push_stall_cycles = 0

    # -- producer side ---------------------------------------------------------------

    def slot_free_time(self) -> int:
        """Cycle the next push's slot becomes free, independent of the push.

        Zero while the queue is under capacity; otherwise the *release* cycle
        of the entry ``capacity`` positions back — a slot is reusable on the
        very cycle its pop happens, not the cycle after (the same-cycle rule
        ``tests/engine/test_same_cycle_ordering.py`` pins).  This is the
        skip-ahead form of :meth:`earliest_push`: the blocking time with the
        request-dependent ``max`` left to the caller, so an event core can
        register it as a wakeup before it knows the requesting cycle.
        """
        index = len(self.push_times)
        if index < self.capacity:
            return 0
        blocking = self.pop_times[index - self.capacity]
        if blocking is None:
            raise SimulationError(
                f"queue {self.name!r}: entry {index - self.capacity} has not been "
                f"released yet; the consumer must be simulated first"
            )
        return blocking

    def earliest_push(self, requested: int) -> int:
        """Earliest cycle a new entry can be accepted, given the capacity."""
        blocking = self.slot_free_time()
        return blocking if blocking > requested else requested

    def push(self, requested: int, ready: Optional[int] = None) -> int:
        """Reserve a slot at the earliest legal cycle and return that cycle."""
        push_time = self.earliest_push(requested)
        self.push_stall_cycles += push_time - requested
        self.push_times.append(push_time)
        self.ready_times.append(ready if ready is not None else push_time)
        self.pop_times.append(None)
        return push_time

    def push_at(self, push_time: int, ready: int) -> int:
        """Append an entry at a cycle the caller has already legalized.

        The fast path for producers that called :meth:`earliest_push`
        themselves (the fetch processor computes one push cycle across
        several queues): no capacity re-check, no stall accounting — both
        are the caller's responsibility.  Returns the new entry's index.
        """
        self.push_times.append(push_time)
        self.ready_times.append(ready)
        self.pop_times.append(None)
        return len(self.push_times) - 1

    def set_ready(self, index: int, ready: int) -> None:
        """Record when the data of entry ``index`` becomes available."""
        self.ready_times[index] = ready

    @property
    def last_index(self) -> int:
        if not self.push_times:
            raise SimulationError(f"queue {self.name!r} is empty")
        return len(self.push_times) - 1

    # -- consumer side ----------------------------------------------------------------

    def front_index(self) -> int:
        """Index of the entry the next pop will take."""
        if self._next_pop_index >= len(self.push_times):
            raise SimulationError(f"queue {self.name!r}: pop with no outstanding entry")
        return self._next_pop_index

    def front_ready(self) -> int:
        """Ready cycle of the entry at the head of the queue."""
        return self.ready_times[self.front_index()]

    def front(self) -> QueueEntry:
        """A view of the entry at the head of the queue."""
        return self.entry(self.front_index())

    def entry(self, index: int) -> QueueEntry:
        """A view of entry ``index``."""
        return QueueEntry(
            push_time=self.push_times[index],
            ready_time=self.ready_times[index],
            pop_time=self.pop_times[index],
        )

    def pop(self, requested: int) -> None:
        """Release the entry at the head of the queue at ``requested`` or later.

        The caller decides what "consuming" means (for instruction queues the
        pop time is the cycle the instruction issues; for data queues it is the
        cycle the last element has been drained) — this method only checks FIFO
        order and records the release time.
        """
        index = self._next_pop_index
        if index >= len(self.push_times):
            raise SimulationError(f"queue {self.name!r}: pop with no outstanding entry")
        push_time = self.push_times[index]
        if requested < push_time:
            raise SimulationError(
                f"queue {self.name!r}: pop at {requested} precedes push at {push_time}"
            )
        self.pop_times[index] = requested
        self._next_pop_index += 1

    # -- statistics ----------------------------------------------------------------------

    @property
    def total_entries(self) -> int:
        return len(self.push_times)

    @property
    def outstanding(self) -> int:
        return len(self.push_times) - self._next_pop_index

    def occupancy_timeline(self, name: Optional[str] = None, horizon: int = 0) -> OccupancyTimeline:
        """Residency records of every entry (unreleased entries last to ``horizon``)."""
        timeline = OccupancyTimeline(name or self.name, capacity=self.capacity)
        for push_time, pop_time in zip(self.push_times, self.pop_times):
            leave = pop_time if pop_time is not None else max(horizon, push_time)
            timeline.record(push_time, leave)
        return timeline

    def __len__(self) -> int:
        return len(self.push_times)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimedQueue(name={self.name!r}, capacity={self.capacity}, "
            f"entries={len(self.push_times)}, outstanding={self.outstanding})"
        )
