"""Event-driven (skip-ahead) core of the decoupled-architecture simulator.

Each of the four processors gets its own :class:`~repro.engine.events.WakeupScheduler`:
before a processor issues an instruction it registers every cycle it might
have to wait for — the instruction-queue entry becoming ready, operands
releasing on the scoreboard, a data-queue slot draining, a functional or
queue-move unit freeing — and one jump from the processor's own issue
pointer lands on the issue cycle.  The per-tag spans of each scheduler are
then an exact per-resource breakdown of that processor's skipped cycles.

Equivalence with the tick core
(:class:`~repro.dva.simulator._DecoupledState`) holds because the shared
state is mutated by the same calls in the same order.  The discipline the
overrides follow:

* anything *stateful* (forced VADQ drains via
  :meth:`~repro.dva.address.MemoryPipeline.vector_store_data_slot_free`,
  scoreboard reads that materialize default entries) runs before the jump,
  exactly where the tick core computes the same value;
* anything *start-dependent* (``issue_vector_load``, store enqueues, queue
  pops, pool occupations) runs after the jump with the jumped cycle, which
  equals the tick core's folded ``max`` by construction;
* unit selection is peeked with the pool's own ``least_loaded()`` rule,
  which never depends on the request cycle.

Result assembly (:meth:`finish`) is inherited outright.
"""

from __future__ import annotations

from repro.common.errors import SimulationError
from repro.dva.fetch import Processor
from repro.dva.simulator import (
    _PRIMARY_ADDRESS,
    _PRIMARY_SCALAR,
    _PRIMARY_VECTOR,
    _QMOV_NONE,
    _QMOV_S_LOAD,
    _QMOV_V_LOAD,
    _QMOV_V_STORE,
    _DecoupledState,
    _routing_table,
)
from repro.dva.vector import _FU2
from repro.engine import occupancy_cycles
from repro.engine.events import WakeupScheduler
from repro.trace.columns import InstructionInfo
from repro.trace.record import Trace


class _EventDecoupledState(_DecoupledState):
    """The four decoupled processors driven by per-processor wakeup schedulers."""

    def __init__(self, memory, config) -> None:
        super().__init__(memory, config)
        self.fetch_scheduler = WakeupScheduler()
        self.ap_scheduler = WakeupScheduler()
        self.vp_scheduler = WakeupScheduler()
        self.sp_scheduler = WakeupScheduler()

    # -- main loop ------------------------------------------------------------------------

    def consume(self, trace: Trace) -> None:
        """Fetch, execute and queue-move every traced instruction in order."""
        columns = trace.columns
        infos = columns.instruction_infos()
        routes = _routing_table(columns)
        insn = columns.insn
        lengths = columns.vl
        strides = columns.stride
        addresses = columns.addr

        core = self.core
        iqs = self._iqs
        fp_free = self.fp.free
        fetch_stall = core.stalls.stall
        fetch_scheduler = self.fetch_scheduler
        address_execute = self._event_address_execute
        vector_compute = self._event_vector_compute
        scalar_execute = self._event_scalar_execute

        vector_loads = 0
        vector_stores = 0

        for index in range(len(insn)):
            table_index = insn[index]
            info = infos[table_index]
            primary, qmov, targets = routes[table_index]

            # Fetch: every target queue's slot-free cycle is a wakeup; the
            # jump from the FP's issue pointer is the push cycle.
            requested = fp_free[0]
            for queue_id in targets:
                fetch_scheduler.wake(
                    iqs[queue_id].slot_free_time(), "instruction-queue"
                )
            push_time = fetch_scheduler.jump(requested)
            if push_time > requested:
                fetch_stall("fetch", push_time - requested)
            primary_entry = qmov_entry = -1
            for queue_id in targets:
                entry = iqs[queue_id].push_at(push_time, push_time + 1)
                if primary_entry < 0:
                    primary_entry = entry
                else:
                    qmov_entry = entry
            fp_free[0] = push_time + 1
            if push_time + 1 > core.horizon:
                core.horizon = push_time + 1

            if primary == _PRIMARY_ADDRESS:
                if info.is_vector_memory:
                    if info.is_load:
                        vector_loads += 1
                    else:
                        vector_stores += 1
                address_execute(
                    info, index, lengths[index], strides[index],
                    addresses[index], primary_entry,
                )
            elif primary == _PRIMARY_VECTOR:
                vector_compute(info, lengths[index], primary_entry)
            elif primary == _PRIMARY_SCALAR:
                scalar_execute(info, primary_entry)
            # _PRIMARY_FETCH: consumed during translation, nothing further.

            if qmov == _QMOV_NONE:
                continue
            if qmov == _QMOV_V_LOAD:
                self._event_vector_qmov_load(info, lengths[index], qmov_entry)
            elif qmov == _QMOV_V_STORE:
                self._event_vector_qmov_store(info, index, lengths[index], qmov_entry)
            elif qmov == _QMOV_S_LOAD:
                self._event_scalar_qmov_load(info, qmov_entry)
            else:
                self._event_scalar_qmov_store(info, index, qmov_entry)

        self.fp_count += len(insn)
        self.vector_loads += vector_loads
        self.vector_stores += vector_stores

    # -- address processor --------------------------------------------------------------------------

    def _event_address_execute(
        self,
        info: InstructionInfo,
        index: int,
        vector_length: int,
        stride_elements: int,
        address: int,
        entry_index: int,
    ) -> None:
        self.ap_count += 1
        scheduler = self.ap_scheduler
        scheduler.wake(self.apiq.ready_times[entry_index], "instruction-queue")
        for register in info.scalar_sources:
            scheduler.wake(
                self._operand_time(register, Processor.ADDRESS), "operand"
            )

        memory = self.memory
        is_vector_load = info.is_vector_memory and info.is_load
        if is_vector_load:
            scheduler.wake(memory.avdq.slot_free_time(), "load-data-queue")
        start = scheduler.jump(self.ap.free[0])

        if info.is_vector_memory:
            if is_vector_load:
                outcome = memory.issue_vector_load(
                    address, vector_length, stride_elements, info.is_indexed, start
                )
                memory.avdq.push(start, ready=outcome.data_ready)
                self.core.bump(outcome.data_ready)
                finish = start + 1
            else:
                push_time = memory.enqueue_vector_store(
                    index, address, vector_length, stride_elements,
                    info.is_indexed, start,
                )
                finish = max(start, push_time) + 1
        elif info.is_scalar_memory:
            if info.is_load:
                data_ready = memory.issue_scalar_load(address, start)
                memory.asdq.push(start, ready=data_ready)
                self.core.bump(data_ready)
                finish = start + 1
            else:
                push_time = memory.enqueue_scalar_store(index, address, start)
                finish = max(start, push_time) + 1
        else:
            finish = start + 1
            for register in info.destinations:
                self._set_register(register, Processor.ADDRESS, finish)

        self.apiq.pop(start)
        self.ap.occupy(start, finish)
        self.core.bump(finish)

    # -- vector processor -----------------------------------------------------------------------------

    def _event_vector_compute(
        self, info: InstructionInfo, vector_length: int, entry_index: int
    ) -> None:
        self.vp_count += 1
        scheduler = self.vp_scheduler
        scheduler.wake(self.vpiq.ready_times[entry_index], "instruction-queue")
        for register in info.data_sources:
            scheduler.wake(
                self._operand_time(register, Processor.VECTOR, allow_chain=True),
                "operand",
            )

        length = vector_length if vector_length > 1 else 1
        fus = self.resources.fus
        busy = occupancy_cycles(length, self.resources.lanes)
        unit = _FU2 if info.requires_fu2 else fus.least_loaded()
        scheduler.wake(fus.free[unit], "functional-unit")
        start = scheduler.jump(self.vp.free[0])
        fus.occupy(start, start + busy, unit)
        self.vpiq.pop(start)
        self.vp.occupy(start, start + 1)

        startup = self.config.functional_unit_startup
        completion = start + startup + busy
        for register, is_vector in info.destination_flags:
            chain = start + startup if is_vector else None
            self._set_register(register, Processor.VECTOR, completion, chain)
        self.core.bump(completion)

    def _event_vector_qmov_load(
        self, info: InstructionInfo, vector_length: int, entry_index: int
    ) -> None:
        self.vp_count += 1
        scheduler = self.vp_scheduler
        scheduler.wake(self.vpiq.ready_times[entry_index], "instruction-queue")
        scheduler.wake(self.memory.avdq.front_ready(), "load-data-queue")

        length = vector_length if vector_length > 1 else 1
        qmovs = self.resources.qmovs
        unit = qmovs.least_loaded()
        scheduler.wake(qmovs.free[unit], "queue-move-unit")
        start = scheduler.jump(self.vp.free[0])
        qmovs.occupy(start, start + length, unit)
        self.vpiq.pop(start)
        self.vp.occupy(start, start + 1)

        end = start + length
        self.memory.avdq.pop(end)
        startup = self.config.queue_move_startup
        completion = start + startup + length
        destinations = info.vector_destinations
        if not destinations:
            raise SimulationError(
                f"vector load without a vector destination: {info.instruction}"
            )
        self._set_register(
            destinations[0], Processor.VECTOR, completion, chain_start=start + startup
        )
        self.core.bump(completion)

    def _event_vector_qmov_store(
        self, info: InstructionInfo, index: int, vector_length: int, entry_index: int
    ) -> None:
        self.vp_count += 1
        sources = info.vector_sources
        if not sources:
            raise SimulationError(
                f"vector store without a vector data register: {info.instruction}"
            )
        scheduler = self.vp_scheduler
        scheduler.wake(self.vpiq.ready_times[entry_index], "instruction-queue")
        scheduler.wake(
            self._operand_time(sources[0], Processor.VECTOR, allow_chain=True),
            "operand",
        )
        scheduler.wake(self.memory.vector_store_data_slot_free(), "store-data-queue")

        length = vector_length if vector_length > 1 else 1
        qmovs = self.resources.qmovs
        unit = qmovs.least_loaded()
        scheduler.wake(qmovs.free[unit], "queue-move-unit")
        start = scheduler.jump(self.vp.free[0])
        qmovs.occupy(start, start + length, unit)
        self.vpiq.pop(start)
        self.vp.occupy(start, start + 1)

        data_ready = start + length
        self.memory.attach_vector_store_data(index, push_time=start, data_ready=data_ready)
        self.core.bump(data_ready)

    # -- scalar processor ----------------------------------------------------------------------------------

    def _event_scalar_execute(self, info: InstructionInfo, entry_index: int) -> None:
        self.sp_count += 1
        scheduler = self.sp_scheduler
        scheduler.wake(self.spiq.ready_times[entry_index], "instruction-queue")
        for register in info.sources:
            scheduler.wake(
                self._operand_time(register, Processor.SCALAR), "operand"
            )
        start = scheduler.jump(self.sp.free[0])

        self.spiq.pop(start)
        self.sp.occupy(start, start + 1)
        completion = start + 1
        for register in info.destinations:
            self._set_register(register, Processor.SCALAR, completion)
        self.core.bump(completion)

    def _event_scalar_qmov_load(self, info: InstructionInfo, entry_index: int) -> None:
        self.sp_count += 1
        scheduler = self.sp_scheduler
        scheduler.wake(self.spiq.ready_times[entry_index], "instruction-queue")
        scheduler.wake(self.memory.asdq.front_ready(), "scalar-data-queue")
        start = scheduler.jump(self.sp.free[0])

        self.spiq.pop(start)
        self.sp.occupy(start, start + 1)
        self.memory.asdq.pop(start + 1)
        completion = start + 1
        destinations = info.scalar_destinations
        if destinations:
            self._set_register(destinations[0], Processor.SCALAR, completion)
        self.core.bump(completion)

    def _event_scalar_qmov_store(
        self, info: InstructionInfo, index: int, entry_index: int
    ) -> None:
        self.sp_count += 1
        scheduler = self.sp_scheduler
        scheduler.wake(self.spiq.ready_times[entry_index], "instruction-queue")
        sources = info.scalar_sources
        if sources:
            scheduler.wake(
                self._operand_time(sources[0], Processor.SCALAR), "operand"
            )
        start = scheduler.jump(self.sp.free[0])

        self.spiq.pop(start)
        self.sp.occupy(start, start + 1)
        self.memory.attach_scalar_store_data(index, push_time=start, data_ready=start + 1)
        self.core.bump(start + 1)
