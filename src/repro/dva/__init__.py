"""The decoupled vector architecture (DVA) simulator.

This package models the architecture of paper §4: the instruction stream is
split by a fetch processor (FP) into three streams executed by an address
processor (AP), a vector processor (VP) and a scalar processor (SP), connected
through architectural queues:

* instruction queues (APIQ, VPIQ, SPIQ — 16 entries each by default),
* the vector load data queue AVDQ (AP → VP, 256 vector-register slots),
* the vector store data queue VADQ (VP → AP, 16 slots),
* scalar data queues (AP ↔ SP, 256 slots),
* store *address* queues (VSAQ for vector stores, SSAQ for scalar stores) used
  by the two-step store mechanism and by dynamic memory disambiguation.

Stores are performed "behind the back" of the AP once both their address and
their data have reached the queues; loads are disambiguated against every
queued store and force the conflicting prefix of the store queues to drain
before they may access memory.  Optionally, a load that is *identical* to a
queued store is serviced by the bypass unit (§7), which copies the data from
the VADQ to the AVDQ without touching main memory.

Like the reference simulator, the implementation is event driven: the dynamic
trace is processed once, in program order, and each processor/queue keeps the
timestamps at which its resources become free.  Per-cycle statistics (queue
occupancy histograms, unit state breakdowns) are reconstructed from the
recorded intervals.
"""

from repro.dva.config import DecoupledConfig, QueueSizes
from repro.dva.result import DecoupledResult
from repro.dva.simulator import DecoupledSimulator, simulate_decoupled

__all__ = [
    "DecoupledConfig",
    "DecoupledResult",
    "DecoupledSimulator",
    "QueueSizes",
    "simulate_decoupled",
]
