"""Configuration of the decoupled vector architecture.

This is the *mechanism* layer: frozen blocks of every decoupled-machine
parameter, consumed by :class:`~repro.dva.simulator.DecoupledSimulator`.
The declarative layer above it — :class:`~repro.core.machine.MachineSpec`
with family ``"dva"`` — pins fields onto these blocks via
:meth:`~repro.core.machine.MachineSpec.apply_decoupled`; prefer describing
machines there (``"dva@ports=2,avdq=4,bypass=off"``) over constructing
variant blocks by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigurationError
from repro.memory.scalar_cache import ScalarCacheConfig


@dataclass(frozen=True)
class QueueSizes:
    """Capacities of the architectural queues (paper §5 defaults).

    Attributes:
        instruction_queue: slots in each of APIQ, VPIQ and SPIQ.
        vector_load_data: slots in the AVDQ; each slot holds one whole vector
            register (the paper's default study uses 256, the bypass study
            reduces it to 4).
        vector_store_data: slots in the VADQ (16 in all paper experiments).
        vector_store_address: slots in the VSAQ; the paper treats the "store
            queue length" as a single parameter, so this defaults to the same
            value as ``vector_store_data``.
        scalar_store_address: slots in the SSAQ.
        scalar_data: slots in the scalar data queues between AP and SP.
    """

    instruction_queue: int = 16
    vector_load_data: int = 256
    vector_store_data: int = 16
    vector_store_address: int | None = None
    scalar_store_address: int = 16
    scalar_data: int = 256

    def __post_init__(self) -> None:
        for name in ("instruction_queue", "vector_load_data", "vector_store_data",
                     "scalar_store_address", "scalar_data"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"queue size {name!r} must be positive")
        if self.vector_store_address is not None and self.vector_store_address <= 0:
            raise ConfigurationError("queue size 'vector_store_address' must be positive")

    @property
    def effective_vector_store_address(self) -> int:
        """VSAQ size: defaults to the VADQ size unless overridden."""
        if self.vector_store_address is not None:
            return self.vector_store_address
        return self.vector_store_data


@dataclass(frozen=True)
class DecoupledConfig:
    """Architectural parameters of the decoupled machine.

    Attributes:
        queues: capacities of the architectural queues.
        enable_bypass: service loads identical to a queued store from the
            VADQ→AVDQ bypass path instead of main memory (paper §7).
        qmov_units: number of queue-move units in the VP (the paper uses two).
        functional_unit_startup: pipeline depth of the vector functional units.
        queue_move_startup: cycles before the first element moved by a QMOV
            becomes available for chaining.
        fetch_per_cycle: instructions the FP can translate and distribute per
            cycle.
        cross_processor_delay: cycles to move a scalar value between
            processors through the (large) scalar queues.
        scalar_cache: geometry of the scalar cache in front of the AP.
        scalar_store_writes_through: when ``True`` scalar stores always use
            the memory port.
        lanes: parallel lanes per vector functional unit; a length-VL
            operation occupies its unit for ``ceil(VL / lanes)`` cycles.
        memory_ports: identical memory-port units sharing the address bus;
            references pick the least-loaded port.
    """

    queues: QueueSizes = field(default_factory=QueueSizes)
    enable_bypass: bool = False
    qmov_units: int = 2
    functional_unit_startup: int = 4
    queue_move_startup: int = 1
    fetch_per_cycle: int = 1
    cross_processor_delay: int = 1
    scalar_cache: ScalarCacheConfig = field(default_factory=ScalarCacheConfig)
    scalar_store_writes_through: bool = False
    lanes: int = 1
    memory_ports: int = 1

    def __post_init__(self) -> None:
        if self.qmov_units <= 0:
            raise ConfigurationError("the VP needs at least one queue-move unit")
        if self.functional_unit_startup < 0 or self.queue_move_startup < 0:
            raise ConfigurationError("pipeline startup cannot be negative")
        if self.fetch_per_cycle <= 0:
            raise ConfigurationError("fetch width must be positive")
        if self.cross_processor_delay < 0:
            raise ConfigurationError("cross-processor delay cannot be negative")
        if self.lanes <= 0:
            raise ConfigurationError("a vector unit needs at least one lane")
        if self.memory_ports <= 0:
            raise ConfigurationError("the machine needs at least one memory port")

    # -- convenience constructors --------------------------------------------------

    def with_bypass(self, enabled: bool = True) -> "DecoupledConfig":
        """A copy of this configuration with bypassing switched on or off."""
        return replace(self, enable_bypass=enabled)

    def with_variant(self, lanes: int, memory_ports: int) -> "DecoupledConfig":
        """A copy of this configuration with different lane/port counts."""
        return replace(self, lanes=lanes, memory_ports=memory_ports)

    def with_queue_sizes(
        self,
        load_slots: int | None = None,
        store_slots: int | None = None,
        instruction_slots: int | None = None,
    ) -> "DecoupledConfig":
        """A copy with different AVDQ / store-queue / instruction-queue sizes."""
        queues = QueueSizes(
            instruction_queue=(
                instruction_slots if instruction_slots is not None else self.queues.instruction_queue
            ),
            vector_load_data=(
                load_slots if load_slots is not None else self.queues.vector_load_data
            ),
            vector_store_data=(
                store_slots if store_slots is not None else self.queues.vector_store_data
            ),
            vector_store_address=None,
            scalar_store_address=self.queues.scalar_store_address,
            scalar_data=self.queues.scalar_data,
        )
        return replace(self, queues=queues)


def bypass_configuration(load_slots: int, store_slots: int) -> DecoupledConfig:
    """The paper's ``BYP <load>/<store>`` configurations (Figure 7)."""
    return DecoupledConfig(enable_bypass=True).with_queue_sizes(
        load_slots=load_slots, store_slots=store_slots
    )
