"""Execution resources of the decoupled vector processor.

The VP is almost exactly the vector half of the reference architecture
(paper §4.3): the same two functional units with the same chaining rules, plus
two queue-move (QMOV) units that transfer whole vector registers between the
architectural queues and the register file.  Both groups are
:class:`~repro.engine.ResourcePool`\\ s from the shared engine kernel; the
functional units honour the machine's lane count.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.intervals import IntervalRecorder
from repro.engine import ResourcePool, occupancy_cycles

_FU1 = 0
_FU2 = 1


class VectorExecutionResources:
    """Busy-time bookkeeping for FU1, FU2 and the QMOV units."""

    def __init__(self, qmov_unit_count: int = 2, lanes: int = 1) -> None:
        self.lanes = lanes
        self.fus = ResourcePool("FU", count=2, unit_names=("FU1", "FU2"))
        self.qmovs = ResourcePool(
            "QMOV",
            count=qmov_unit_count,
            unit_names=[f"QMOV{i}" for i in range(qmov_unit_count)],
        )

    # -- functional units -------------------------------------------------------------

    def acquire_functional_unit(
        self, earliest: int, length: int, requires_fu2: bool
    ) -> Tuple[int, int]:
        """Reserve a functional unit; return ``(start_cycle, busy_cycles)``.

        FU2 executes everything, FU1 only what does not require FU2; among
        eligible units the least-loaded wins, FU1 taking ties.  ``busy_cycles``
        is the unit occupancy after lane division — the caller derives the
        completion cycle from it.
        """
        busy = occupancy_cycles(length, self.lanes)
        unit = _FU2 if requires_fu2 else None
        start, _unit = self.fus.acquire(earliest, busy, unit=unit)
        return start, busy

    # -- queue-move units ---------------------------------------------------------------

    def acquire_qmov_unit(self, earliest: int, length: int) -> Tuple[int, int]:
        """Reserve the earliest-free QMOV unit; return (start_cycle, unit_index)."""
        return self.qmovs.acquire(earliest, length)

    def earliest_qmov_free(self) -> int:
        return self.qmovs.earliest_free()

    # -- statistics -----------------------------------------------------------------------

    @property
    def fu1(self) -> IntervalRecorder:
        return self.fus.recorder(_FU1)

    @property
    def fu2(self) -> IntervalRecorder:
        return self.fus.recorder(_FU2)

    @property
    def qmov_units(self) -> List[IntervalRecorder]:
        return list(self.qmovs.recorders or ())

    def qmov_busy_time(self) -> int:
        return self.qmovs.busy_time()

    def functional_unit_busy_time(self) -> int:
        return self.fus.busy_time()
