"""Execution resources of the decoupled vector processor.

The VP is almost exactly the vector half of the reference architecture
(paper §4.3): the same two functional units with the same chaining rules, plus
two queue-move (QMOV) units that transfer whole vector registers between the
architectural queues and the register file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.common.errors import ConfigurationError
from repro.common.intervals import IntervalRecorder


@dataclass
class VectorExecutionResources:
    """Busy-time bookkeeping for FU1, FU2 and the QMOV units."""

    qmov_unit_count: int = 2
    fu1: IntervalRecorder = field(default_factory=lambda: IntervalRecorder("FU1"))
    fu2: IntervalRecorder = field(default_factory=lambda: IntervalRecorder("FU2"))
    qmov_units: List[IntervalRecorder] = field(default_factory=list)
    fu1_free: int = 0
    fu2_free: int = 0
    qmov_free: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.qmov_unit_count <= 0:
            raise ConfigurationError("the VP needs at least one QMOV unit")
        if not self.qmov_units:
            self.qmov_units = [
                IntervalRecorder(f"QMOV{i}") for i in range(self.qmov_unit_count)
            ]
        if not self.qmov_free:
            self.qmov_free = [0] * self.qmov_unit_count

    # -- functional units -------------------------------------------------------------

    def acquire_functional_unit(
        self, earliest: int, length: int, requires_fu2: bool
    ) -> Tuple[int, str]:
        """Reserve a functional unit; return (start_cycle, unit_name)."""
        if requires_fu2:
            start = max(earliest, self.fu2_free)
            self.fu2.record(start, start + length)
            self.fu2_free = start + length
            return start, "FU2"
        if self.fu1_free <= self.fu2_free:
            start = max(earliest, self.fu1_free)
            self.fu1.record(start, start + length)
            self.fu1_free = start + length
            return start, "FU1"
        start = max(earliest, self.fu2_free)
        self.fu2.record(start, start + length)
        self.fu2_free = start + length
        return start, "FU2"

    # -- queue-move units ---------------------------------------------------------------

    def acquire_qmov_unit(self, earliest: int, length: int) -> Tuple[int, int]:
        """Reserve the earliest-free QMOV unit; return (start_cycle, unit_index)."""
        unit_index = min(range(self.qmov_unit_count), key=lambda i: self.qmov_free[i])
        start = max(earliest, self.qmov_free[unit_index])
        self.qmov_units[unit_index].record(start, start + length)
        self.qmov_free[unit_index] = start + length
        return start, unit_index

    def earliest_qmov_free(self) -> int:
        return min(self.qmov_free)

    # -- statistics -----------------------------------------------------------------------

    def qmov_busy_time(self) -> int:
        return sum(unit.busy_time() for unit in self.qmov_units)

    def functional_unit_busy_time(self) -> int:
        return self.fu1.busy_time() + self.fu2.busy_time()
