"""Event-driven simulator of the decoupled vector architecture.

The simulator performs a single pass over the dynamic trace in program order.
For every traced instruction it advances, in this order, the fetch processor
(which translates and distributes the instruction), the processor that
executes the instruction itself, and the processor that executes the hidden
QMOV companion the fetch processor generated for it.  Because every processor
works through its stream in order and all queues are FIFO, the blocking
behaviour of the bounded queues reduces to timestamp arithmetic handled by
:class:`~repro.dva.queues.TimedQueue`, and a single pass reproduces the timing
a cycle-stepped simulation would give.

The timing machinery — the owner-aware register scoreboard, the per-processor
issue pointers, the functional-unit/QMOV/port pools, fetch-stall accounting
and the completion horizon — is the shared :mod:`repro.engine` kernel; this
module contributes only the issue rules of the four processors.  The main
loop runs over the trace's columns: routing decisions and operand lists are
precomputed per unique static instruction (cached on the trace via
:meth:`~repro.trace.columns.ColumnarTrace.instruction_infos` and the
``dva_routes`` annotation), and the dynamic facts — vector length, stride,
base address — are integer column reads held in locals.  The decoupling (and
its limits) emerge from the timestamps: the address processor is free to run
ahead of the vector processor because nothing it does waits for vector
computation — until it meets a full queue, a memory hazard against a queued
store, or a scalar value that the slower side has not produced yet (the
DYFESM lockstep case of paper §5).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.dva.address import MemoryPipeline
from repro.dva.config import DecoupledConfig
from repro.dva.fetch import Processor, route_instruction
from repro.dva.queues import TimedQueue
from repro.dva.result import DecoupledResult
from repro.dva.vector import VectorExecutionResources
from repro.engine import TimingCore, validate_core
from repro.isa.opcodes import Opcode
from repro.isa.registers import Register, RegisterClass
from repro.memory.model import MemoryModel
from repro.trace.columns import ColumnarTrace, InstructionInfo
from repro.trace.record import Trace

#: Queue-move dispatch codes precomputed per unique instruction.
_QMOV_NONE = 0
_QMOV_V_LOAD = 1
_QMOV_V_STORE = 2
_QMOV_S_LOAD = 3
_QMOV_S_STORE = 4

_QMOV_CODES = {
    None: _QMOV_NONE,
    Opcode.QMOV_V_LOAD: _QMOV_V_LOAD,
    Opcode.QMOV_V_STORE: _QMOV_V_STORE,
    Opcode.QMOV_S_LOAD: _QMOV_S_LOAD,
    Opcode.QMOV_S_STORE: _QMOV_S_STORE,
}

#: Primary-processor dispatch codes (also the instruction-queue ids of the
#: three queue-backed processors, in ``(APIQ, VPIQ, SPIQ)`` order).
_PRIMARY_ADDRESS = 0
_PRIMARY_VECTOR = 1
_PRIMARY_SCALAR = 2
_PRIMARY_FETCH = 3

_PRIMARY_CODES = {
    Processor.ADDRESS: _PRIMARY_ADDRESS,
    Processor.VECTOR: _PRIMARY_VECTOR,
    Processor.SCALAR: _PRIMARY_SCALAR,
    Processor.FETCH: _PRIMARY_FETCH,
}

#: One routing entry per unique instruction: (primary dispatch code, QMOV
#: dispatch code, instruction-queue ids receiving an entry).
RouteEntry = Tuple[int, int, Tuple[int, ...]]


def _routing_table(columns: ColumnarTrace) -> List[RouteEntry]:
    """The fetch processor's decisions for every unique instruction.

    Entries are plain integer codes (not enums or objects) so the main loop
    dispatches on them without hashing.  Cached on the trace's annotation
    dict, so repeated simulations of the same trace (every latency and
    machine variant of a sweep) share it.
    """
    infos = columns.instruction_infos()
    table = columns.annotations.get("dva_routes")
    if isinstance(table, list) and len(table) == len(infos):
        return table
    table = []
    for info in infos:
        decision = route_instruction(info.instruction)
        table.append(
            (
                _PRIMARY_CODES[decision.primary],
                _QMOV_CODES[decision.queue_move],
                tuple(_PRIMARY_CODES[target] for target in decision.targets()),
            )
        )
    columns.annotations["dva_routes"] = table
    return table


def _default_owner(register: Register) -> Processor:
    if register.register_class is RegisterClass.ADDRESS:
        return Processor.ADDRESS
    if register.register_class is RegisterClass.SCALAR:
        return Processor.SCALAR
    if register.register_class is RegisterClass.VECTOR:
        return Processor.VECTOR
    return Processor.FETCH


class DecoupledSimulator:
    """Simulates one trace on the decoupled vector architecture.

    ``core`` selects the control flow driving the shared engine primitives:
    ``"tick"`` (the default oracle) folds issue constraints into a running
    ``max``; ``"event"`` (:mod:`repro.dva.event_core`) gives every processor
    a wakeup scheduler and jumps between registered wakeups.  Results are
    cycle-identical by contract — the differential fuzz suite pins it.
    """

    def __init__(
        self,
        memory: MemoryModel,
        config: Optional[DecoupledConfig] = None,
        core: str = "tick",
    ) -> None:
        self.memory_model = memory
        self.config = config if config is not None else DecoupledConfig()
        self.core = validate_core(core)

    def run(self, trace: Trace) -> DecoupledResult:
        if self.core == "event":
            from repro.dva.event_core import _EventDecoupledState

            state = _EventDecoupledState(self.memory_model, self.config)
        else:
            state = _DecoupledState(self.memory_model, self.config)
        state.consume(trace)
        return state.finish(trace)


def simulate_decoupled(
    trace: Trace,
    latency: int,
    config: Optional[DecoupledConfig] = None,
    core: str = "tick",
) -> DecoupledResult:
    """Convenience wrapper: simulate ``trace`` on the DVA at a given latency."""
    simulator = DecoupledSimulator(MemoryModel(latency=latency), config=config, core=core)
    return simulator.run(trace)


class _DecoupledState:
    """Issue rules of the four decoupled processors over a :class:`TimingCore`."""

    def __init__(self, memory: MemoryModel, config: DecoupledConfig) -> None:
        self.config = config
        self.core = TimingCore(default_owner=_default_owner)
        self.memory = MemoryPipeline(memory, config)
        self.resources = VectorExecutionResources(
            qmov_unit_count=config.qmov_units, lanes=config.lanes
        )

        queue_size = config.queues.instruction_queue
        self.apiq = TimedQueue("APIQ", queue_size)
        self.vpiq = TimedQueue("VPIQ", queue_size)
        self.spiq = TimedQueue("SPIQ", queue_size)
        # Indexed by the routing table's integer queue ids.
        self._iqs = (self.apiq, self.vpiq, self.spiq)

        # Per-processor issue pointers: each processor is a one-unit pool
        # whose free time is the cycle it will look at its next instruction
        # (no busy intervals are recorded — nothing reads them).
        self.fp = self.core.add_pool("FP", record=False)
        self.ap = self.core.add_pool("AP", record=False)
        self.vp = self.core.add_pool("VP", record=False)
        self.sp = self.core.add_pool("SP", record=False)

        # Per-processor instruction counters; folded into the result's
        # ``instructions_per_processor`` dict at wind-down (plain int
        # attributes keep the hot loop free of dict writes).
        self.fp_count = 0
        self.ap_count = 0
        self.vp_count = 0
        self.sp_count = 0
        self.vector_loads = 0
        self.vector_stores = 0

    # -- register bookkeeping ----------------------------------------------------------

    def _operand_time(
        self, register: Register, consumer: Processor, allow_chain: bool = False
    ) -> int:
        """Cycle at which ``consumer`` may use ``register``.

        Values produced on another processor travel through the (large) scalar
        data queues and arrive ``cross_processor_delay`` cycles after they were
        produced; chaining is only possible inside the vector processor.
        """
        return self.core.scoreboard.read(
            register,
            consumer=consumer,
            allow_chain=allow_chain,
            cross_delay=self.config.cross_processor_delay,
        )

    def _set_register(
        self,
        register: Register,
        owner: Processor,
        ready: int,
        chain_start: Optional[int] = None,
    ) -> None:
        self.core.scoreboard.write(
            register, ready, chain_start=chain_start, owner=owner
        )

    # -- main loop ------------------------------------------------------------------------

    def consume(self, trace: Trace) -> None:
        """Fetch, execute and queue-move every traced instruction in order.

        One pass over the columns: static facts come from the shared
        instruction-info and routing tables, dynamic facts (VL, stride, base
        address) are integer column reads held in locals.
        """
        columns = trace.columns
        infos = columns.instruction_infos()
        routes = _routing_table(columns)
        insn = columns.insn
        lengths = columns.vl
        strides = columns.stride
        addresses = columns.addr

        core = self.core
        iqs = self._iqs
        fp_free = self.fp.free
        fetch_stall = core.stalls.stall
        address_execute = self._address_execute
        vector_compute = self._vector_compute
        scalar_execute = self._scalar_execute

        vector_loads = 0
        vector_stores = 0

        for index in range(len(insn)):
            table_index = insn[index]
            info = infos[table_index]
            primary, qmov, targets = routes[table_index]

            # Fetch: translate and distribute.  The push cycle is the first
            # cycle every target queue can accept an entry; the entry indices
            # are remembered for the executing processors (primary first,
            # QMOV second — push order matters for queue state).
            push_time = requested = fp_free[0]
            for queue_id in targets:
                earliest = iqs[queue_id].earliest_push(requested)
                if earliest > push_time:
                    push_time = earliest
            if push_time > requested:
                fetch_stall("fetch", push_time - requested)
            primary_entry = qmov_entry = -1
            for queue_id in targets:
                entry = iqs[queue_id].push_at(push_time, push_time + 1)
                if primary_entry < 0:
                    primary_entry = entry
                else:
                    qmov_entry = entry
            fp_free[0] = push_time + 1
            if push_time + 1 > core.horizon:
                core.horizon = push_time + 1

            if primary == _PRIMARY_ADDRESS:
                if info.is_vector_memory:
                    if info.is_load:
                        vector_loads += 1
                    else:
                        vector_stores += 1
                address_execute(
                    info, index, lengths[index], strides[index],
                    addresses[index], primary_entry,
                )
            elif primary == _PRIMARY_VECTOR:
                vector_compute(info, lengths[index], primary_entry)
            elif primary == _PRIMARY_SCALAR:
                scalar_execute(info, primary_entry)
            # _PRIMARY_FETCH: consumed during translation, nothing further.

            if qmov == _QMOV_NONE:
                continue
            if qmov == _QMOV_V_LOAD:
                self._vector_qmov_load(info, lengths[index], qmov_entry)
            elif qmov == _QMOV_V_STORE:
                self._vector_qmov_store(info, index, lengths[index], qmov_entry)
            elif qmov == _QMOV_S_LOAD:
                self._scalar_qmov_load(info, qmov_entry)
            else:
                self._scalar_qmov_store(info, index, qmov_entry)

        self.fp_count += len(insn)
        self.vector_loads += vector_loads
        self.vector_stores += vector_stores

    # -- address processor --------------------------------------------------------------------------

    def _address_execute(
        self,
        info: InstructionInfo,
        index: int,
        vector_length: int,
        stride_elements: int,
        address: int,
        entry_index: int,
    ) -> None:
        self.ap_count += 1
        ready = self.apiq.ready_times[entry_index]
        free = self.ap.free[0]
        start = free if free > ready else ready
        # The AP only waits for scalar operands (addresses, lengths); the data
        # registers of vector accesses belong to the VP and travel through the
        # queues instead.
        for register in info.scalar_sources:
            operand = self._operand_time(register, Processor.ADDRESS)
            if operand > start:
                start = operand

        memory = self.memory
        if info.is_vector_memory:
            if info.is_load:
                slot = memory.reserve_load_data_slot(start)
                if slot > start:
                    start = slot
                outcome = memory.issue_vector_load(
                    address, vector_length, stride_elements, info.is_indexed, start
                )
                memory.avdq.push(start, ready=outcome.data_ready)
                self.core.bump(outcome.data_ready)
                finish = start + 1
            else:
                push_time = memory.enqueue_vector_store(
                    index, address, vector_length, stride_elements,
                    info.is_indexed, start,
                )
                finish = max(start, push_time) + 1
        elif info.is_scalar_memory:
            if info.is_load:
                data_ready = memory.issue_scalar_load(address, start)
                memory.asdq.push(start, ready=data_ready)
                self.core.bump(data_ready)
                finish = start + 1
            else:
                push_time = memory.enqueue_scalar_store(index, address, start)
                finish = max(start, push_time) + 1
        else:
            # Address arithmetic and AP-resolved branches take one cycle.
            finish = start + 1
            for register in info.destinations:
                self._set_register(register, Processor.ADDRESS, finish)

        self.apiq.pop(start)
        self.ap.occupy(start, finish)
        self.core.bump(finish)

    # -- vector processor -----------------------------------------------------------------------------

    def _vector_compute(
        self, info: InstructionInfo, vector_length: int, entry_index: int
    ) -> None:
        self.vp_count += 1
        ready = self.vpiq.ready_times[entry_index]
        free = self.vp.free[0]
        start = free if free > ready else ready
        for register in info.data_sources:
            operand = self._operand_time(register, Processor.VECTOR, allow_chain=True)
            if operand > start:
                start = operand

        length = vector_length if vector_length > 1 else 1
        start, busy = self.resources.acquire_functional_unit(
            start, length, info.requires_fu2
        )
        self.vpiq.pop(start)
        self.vp.occupy(start, start + 1)

        startup = self.config.functional_unit_startup
        completion = start + startup + busy
        for register, is_vector in info.destination_flags:
            chain = start + startup if is_vector else None
            self._set_register(register, Processor.VECTOR, completion, chain)
        self.core.bump(completion)

    def _vector_qmov_load(
        self, info: InstructionInfo, vector_length: int, entry_index: int
    ) -> None:
        self.vp_count += 1
        ready = self.vpiq.ready_times[entry_index]
        free = self.vp.free[0]
        start = free if free > ready else ready
        front_ready = self.memory.avdq.front_ready()
        if front_ready > start:
            start = front_ready

        length = vector_length if vector_length > 1 else 1
        start, _unit = self.resources.acquire_qmov_unit(start, length)
        self.vpiq.pop(start)
        self.vp.occupy(start, start + 1)

        end = start + length
        self.memory.avdq.pop(end)
        startup = self.config.queue_move_startup
        completion = start + startup + length
        destinations = info.vector_destinations
        if not destinations:
            raise SimulationError(
                f"vector load without a vector destination: {info.instruction}"
            )
        self._set_register(
            destinations[0], Processor.VECTOR, completion, chain_start=start + startup
        )
        self.core.bump(completion)

    def _vector_qmov_store(
        self, info: InstructionInfo, index: int, vector_length: int, entry_index: int
    ) -> None:
        self.vp_count += 1
        ready = self.vpiq.ready_times[entry_index]
        free = self.vp.free[0]
        start = free if free > ready else ready
        sources = info.vector_sources
        if not sources:
            raise SimulationError(
                f"vector store without a vector data register: {info.instruction}"
            )
        operand = self._operand_time(sources[0], Processor.VECTOR, allow_chain=True)
        if operand > start:
            start = operand
        slot = self.memory.reserve_vector_store_data_slot(start)
        if slot > start:
            start = slot

        length = vector_length if vector_length > 1 else 1
        start, _unit = self.resources.acquire_qmov_unit(start, length)
        self.vpiq.pop(start)
        self.vp.occupy(start, start + 1)

        data_ready = start + length
        self.memory.attach_vector_store_data(index, push_time=start, data_ready=data_ready)
        self.core.bump(data_ready)

    # -- scalar processor ----------------------------------------------------------------------------------

    def _scalar_execute(self, info: InstructionInfo, entry_index: int) -> None:
        self.sp_count += 1
        ready = self.spiq.ready_times[entry_index]
        free = self.sp.free[0]
        start = free if free > ready else ready
        for register in info.sources:
            operand = self._operand_time(register, Processor.SCALAR)
            if operand > start:
                start = operand

        self.spiq.pop(start)
        self.sp.occupy(start, start + 1)
        completion = start + 1
        for register in info.destinations:
            self._set_register(register, Processor.SCALAR, completion)
        self.core.bump(completion)

    def _scalar_qmov_load(self, info: InstructionInfo, entry_index: int) -> None:
        self.sp_count += 1
        ready = self.spiq.ready_times[entry_index]
        front_ready = self.memory.asdq.front_ready()
        start = max(self.sp.free[0], ready, front_ready)

        self.spiq.pop(start)
        self.sp.occupy(start, start + 1)
        self.memory.asdq.pop(start + 1)
        completion = start + 1
        destinations = info.scalar_destinations
        if destinations:
            self._set_register(destinations[0], Processor.SCALAR, completion)
        self.core.bump(completion)

    def _scalar_qmov_store(
        self, info: InstructionInfo, index: int, entry_index: int
    ) -> None:
        self.sp_count += 1
        ready = self.spiq.ready_times[entry_index]
        free = self.sp.free[0]
        start = free if free > ready else ready
        sources = info.scalar_sources
        if sources:
            operand = self._operand_time(sources[0], Processor.SCALAR)
            if operand > start:
                start = operand

        self.spiq.pop(start)
        self.sp.occupy(start, start + 1)
        self.memory.attach_scalar_store_data(index, push_time=start, data_ready=start + 1)
        self.core.bump(start + 1)

    # -- wind-down ------------------------------------------------------------------------------------------

    def finish(self, trace: Trace) -> DecoupledResult:
        drain_end = self.memory.drain_all()
        total_cycles = self.core.finish_time(
            self.fp.free_time(),
            self.ap.free_time(),
            self.vp.free_time(),
            self.sp.free_time(),
            self.memory.port_quiet,
            self.memory.bypass_free,
            drain_end,
        )
        if not len(trace):
            total_cycles = 0

        instruction_queue_occupancy = {
            "APIQ": self.apiq.occupancy_timeline(horizon=total_cycles),
            "VPIQ": self.vpiq.occupancy_timeline(horizon=total_cycles),
            "SPIQ": self.spiq.occupancy_timeline(horizon=total_cycles),
        }
        counts = {
            "FP": self.fp_count,
            "AP": self.ap_count,
            "VP": self.vp_count,
            "SP": self.sp_count,
            "vector_loads": self.vector_loads,
            "vector_stores": self.vector_stores,
        }
        return DecoupledResult(
            program=trace.name,
            latency=self.memory.memory.latency,
            total_cycles=total_cycles,
            instructions=len(trace),
            bypass_enabled=self.config.enable_bypass,
            fu1_busy=self.resources.fu1,
            fu2_busy=self.resources.fu2,
            port_busy=self.memory.port,
            qmov_busy=list(self.resources.qmov_units),
            bypass_busy=self.memory.bypass_unit,
            avdq_occupancy=self.memory.avdq.occupancy_timeline("AVDQ", horizon=total_cycles),
            vadq_occupancy=self.memory.vadq.occupancy_timeline("VADQ", horizon=total_cycles),
            instruction_queue_occupancy=instruction_queue_occupancy,
            instructions_per_processor=counts,
            memory_traffic_bytes=self.memory.traffic_bytes,
            bypassed_loads=self.memory.bypassed_loads,
            bypassed_bytes=self.memory.bypassed_bytes,
            disambiguation_stalls=self.memory.disambiguation_stalls,
            fetch_stall_cycles=self.core.stalls.stalls("fetch"),
            scalar_cache_hits=self.memory.cache.hits,
            scalar_cache_misses=self.memory.cache.misses,
        )
