"""Event-driven simulator of the decoupled vector architecture.

The simulator performs a single pass over the dynamic trace in program order.
For every traced instruction it advances, in this order, the fetch processor
(which translates and distributes the instruction), the processor that
executes the instruction itself, and the processor that executes the hidden
QMOV companion the fetch processor generated for it.  Because every processor
works through its stream in order and all queues are FIFO, the blocking
behaviour of the bounded queues reduces to timestamp arithmetic handled by
:class:`~repro.dva.queues.TimedQueue`, and a single pass reproduces the timing
a cycle-stepped simulation would give.

The timing machinery — the owner-aware register scoreboard, the per-processor
issue pointers, the functional-unit/QMOV/port pools, fetch-stall accounting
and the completion horizon — is the shared :mod:`repro.engine` kernel; this
module contributes only the issue rules of the four processors.  The
decoupling (and its limits) emerge from the timestamps: the address processor
is free to run ahead of the vector processor because nothing it does waits
for vector computation — until it meets a full queue, a memory hazard against
a queued store, or a scalar value that the slower side has not produced yet
(the DYFESM lockstep case of paper §5).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import SimulationError
from repro.dva.address import MemoryPipeline
from repro.dva.config import DecoupledConfig
from repro.dva.fetch import Processor, RoutingDecision, route
from repro.dva.queues import TimedQueue
from repro.dva.result import DecoupledResult
from repro.dva.vector import VectorExecutionResources
from repro.engine import TimingCore
from repro.isa.opcodes import Opcode
from repro.isa.registers import Register, RegisterClass
from repro.memory.model import MemoryModel
from repro.trace.record import DynamicInstruction, Trace


def _default_owner(register: Register) -> Processor:
    if register.register_class is RegisterClass.ADDRESS:
        return Processor.ADDRESS
    if register.register_class is RegisterClass.SCALAR:
        return Processor.SCALAR
    if register.register_class is RegisterClass.VECTOR:
        return Processor.VECTOR
    return Processor.FETCH


class DecoupledSimulator:
    """Simulates one trace on the decoupled vector architecture."""

    def __init__(
        self,
        memory: MemoryModel,
        config: Optional[DecoupledConfig] = None,
    ) -> None:
        self.memory_model = memory
        self.config = config if config is not None else DecoupledConfig()

    def run(self, trace: Trace) -> DecoupledResult:
        state = _DecoupledState(self.memory_model, self.config)
        for record in trace.records:
            state.step(record)
        return state.finish(trace)


def simulate_decoupled(
    trace: Trace,
    latency: int,
    config: Optional[DecoupledConfig] = None,
) -> DecoupledResult:
    """Convenience wrapper: simulate ``trace`` on the DVA at a given latency."""
    simulator = DecoupledSimulator(MemoryModel(latency=latency), config=config)
    return simulator.run(trace)


class _DecoupledState:
    """Issue rules of the four decoupled processors over a :class:`TimingCore`."""

    def __init__(self, memory: MemoryModel, config: DecoupledConfig) -> None:
        self.config = config
        self.core = TimingCore(default_owner=_default_owner)
        self.memory = MemoryPipeline(memory, config)
        self.resources = VectorExecutionResources(
            qmov_unit_count=config.qmov_units, lanes=config.lanes
        )

        queue_size = config.queues.instruction_queue
        self.apiq = TimedQueue("APIQ", queue_size)
        self.vpiq = TimedQueue("VPIQ", queue_size)
        self.spiq = TimedQueue("SPIQ", queue_size)

        # Per-processor issue pointers: each processor is a one-unit pool
        # whose free time is the cycle it will look at its next instruction
        # (no busy intervals are recorded — nothing reads them).
        self.fp = self.core.add_pool("FP", record=False)
        self.ap = self.core.add_pool("AP", record=False)
        self.vp = self.core.add_pool("VP", record=False)
        self.sp = self.core.add_pool("SP", record=False)

        self.counts: Dict[str, int] = {
            "FP": 0,
            "AP": 0,
            "VP": 0,
            "SP": 0,
            "vector_loads": 0,
            "vector_stores": 0,
        }

    # -- register bookkeeping ----------------------------------------------------------

    def _operand_time(
        self, register: Register, consumer: Processor, allow_chain: bool = False
    ) -> int:
        """Cycle at which ``consumer`` may use ``register``.

        Values produced on another processor travel through the (large) scalar
        data queues and arrive ``cross_processor_delay`` cycles after they were
        produced; chaining is only possible inside the vector processor.
        """
        return self.core.scoreboard.read(
            register,
            consumer=consumer,
            allow_chain=allow_chain,
            cross_delay=self.config.cross_processor_delay,
        )

    def _set_register(
        self,
        register: Register,
        owner: Processor,
        ready: int,
        chain_start: Optional[int] = None,
    ) -> None:
        self.core.scoreboard.write(
            register, ready, chain_start=chain_start, owner=owner
        )

    # -- main step ------------------------------------------------------------------------

    def step(self, record: DynamicInstruction) -> None:
        decision = route(record)
        self.counts["FP"] += 1
        if record.instruction.is_vector_memory:
            key = "vector_loads" if record.is_load else "vector_stores"
            self.counts[key] += 1

        entries = self._fetch(record, decision)
        self._execute_primary(record, decision, entries)
        self._execute_queue_move(record, decision, entries)

    # -- fetch processor ---------------------------------------------------------------------

    def _instruction_queue(self, processor: Processor) -> TimedQueue:
        if processor is Processor.ADDRESS:
            return self.apiq
        if processor is Processor.VECTOR:
            return self.vpiq
        if processor is Processor.SCALAR:
            return self.spiq
        raise SimulationError(f"processor {processor} has no instruction queue")

    def _fetch(
        self, record: DynamicInstruction, decision: RoutingDecision
    ) -> Dict[Processor, int]:
        """Translate and distribute one instruction; return the IQ entry indices."""
        targets = decision.targets()
        requested = self.fp.free_time()
        push_time = requested
        for processor in targets:
            push_time = max(push_time, self._instruction_queue(processor).earliest_push(requested))
        self.core.stalls.stall("fetch", push_time - requested)

        entries: Dict[Processor, int] = {}
        for processor in targets:
            queue = self._instruction_queue(processor)
            queue.push(push_time, ready=push_time + 1)
            entries[processor] = queue.last_index
        self.fp.occupy(push_time, push_time + 1)
        self.core.bump(push_time + 1)
        return entries

    # -- primary execution -----------------------------------------------------------------------

    def _execute_primary(
        self,
        record: DynamicInstruction,
        decision: RoutingDecision,
        entries: Dict[Processor, int],
    ) -> None:
        if decision.primary is Processor.ADDRESS:
            self._address_execute(record, entries[Processor.ADDRESS])
        elif decision.primary is Processor.VECTOR:
            self._vector_compute(record, entries[Processor.VECTOR])
        elif decision.primary is Processor.SCALAR:
            self._scalar_execute(record, entries[Processor.SCALAR])
        # Processor.FETCH: consumed during translation, nothing further to do.

    def _execute_queue_move(
        self,
        record: DynamicInstruction,
        decision: RoutingDecision,
        entries: Dict[Processor, int],
    ) -> None:
        queue_move = decision.queue_move
        if queue_move is None:
            return
        if queue_move is Opcode.QMOV_V_LOAD:
            self._vector_qmov_load(record, entries[Processor.VECTOR])
        elif queue_move is Opcode.QMOV_V_STORE:
            self._vector_qmov_store(record, entries[Processor.VECTOR])
        elif queue_move is Opcode.QMOV_S_LOAD:
            self._scalar_qmov_load(record, entries[Processor.SCALAR])
        elif queue_move is Opcode.QMOV_S_STORE:
            self._scalar_qmov_store(record, entries[Processor.SCALAR])

    # -- address processor --------------------------------------------------------------------------

    def _address_execute(self, record: DynamicInstruction, entry_index: int) -> None:
        self.counts["AP"] += 1
        instruction = record.instruction
        ready = self.apiq.entries[entry_index].ready_time
        start = max(self.ap.free_time(), ready)
        # The AP only waits for scalar operands (addresses, lengths); the data
        # registers of vector accesses belong to the VP and travel through the
        # queues instead.
        for register in instruction.scalar_sources():
            start = max(start, self._operand_time(register, Processor.ADDRESS))

        if instruction.is_vector_memory and instruction.is_load:
            start = max(start, self.memory.reserve_load_data_slot(start))
            outcome = self.memory.issue_vector_load(record, start)
            self.memory.avdq.push(start, ready=outcome.data_ready)
            self.core.bump(outcome.data_ready)
            finish = start + 1
        elif instruction.is_vector_memory:
            push_time = self.memory.enqueue_vector_store(record, start)
            finish = max(start, push_time) + 1
        elif instruction.is_scalar_memory and instruction.is_load:
            data_ready = self.memory.issue_scalar_load(record, start)
            self.memory.asdq.push(start, ready=data_ready)
            self.core.bump(data_ready)
            finish = start + 1
        elif instruction.is_scalar_memory:
            push_time = self.memory.enqueue_scalar_store(record, start)
            finish = max(start, push_time) + 1
        else:
            # Address arithmetic and AP-resolved branches take one cycle.
            finish = start + 1
            for register in instruction.destinations:
                self._set_register(register, Processor.ADDRESS, finish)

        self.apiq.pop(start)
        self.ap.occupy(start, finish)
        self.core.bump(finish)

    # -- vector processor -----------------------------------------------------------------------------

    def _vector_compute(self, record: DynamicInstruction, entry_index: int) -> None:
        self.counts["VP"] += 1
        instruction = record.instruction
        ready = self.vpiq.entries[entry_index].ready_time
        start = max(self.vp.free_time(), ready)
        for register in instruction.sources:
            if register.register_class in (RegisterClass.VECTOR_LENGTH, RegisterClass.VECTOR_STRIDE):
                continue
            start = max(
                start, self._operand_time(register, Processor.VECTOR, allow_chain=True)
            )

        length = max(record.vector_length, 1)
        start, busy = self.resources.acquire_functional_unit(
            start, length, instruction.requires_fu2
        )
        self.vpiq.pop(start)
        self.vp.occupy(start, start + 1)

        startup = self.config.functional_unit_startup
        completion = start + startup + busy
        for register in instruction.destinations:
            chain = start + startup if register.is_vector else None
            self._set_register(register, Processor.VECTOR, completion, chain)
        self.core.bump(completion)

    def _vector_qmov_load(self, record: DynamicInstruction, entry_index: int) -> None:
        self.counts["VP"] += 1
        ready = self.vpiq.entries[entry_index].ready_time
        start = max(self.vp.free_time(), ready)
        front = self.memory.avdq.front()
        start = max(start, front.ready_time)

        length = max(record.vector_length, 1)
        start, _unit = self.resources.acquire_qmov_unit(start, length)
        self.vpiq.pop(start)
        self.vp.occupy(start, start + 1)

        end = start + length
        self.memory.avdq.pop(end)
        startup = self.config.queue_move_startup
        completion = start + startup + length
        destinations = record.instruction.vector_destinations()
        if not destinations:
            raise SimulationError(f"vector load without a vector destination: {record}")
        self._set_register(
            destinations[0], Processor.VECTOR, completion, chain_start=start + startup
        )
        self.core.bump(completion)

    def _vector_qmov_store(self, record: DynamicInstruction, entry_index: int) -> None:
        self.counts["VP"] += 1
        ready = self.vpiq.entries[entry_index].ready_time
        start = max(self.vp.free_time(), ready)
        sources = record.instruction.vector_sources()
        if not sources:
            raise SimulationError(f"vector store without a vector data register: {record}")
        start = max(
            start, self._operand_time(sources[0], Processor.VECTOR, allow_chain=True)
        )
        start = max(start, self.memory.reserve_vector_store_data_slot(start))

        length = max(record.vector_length, 1)
        start, _unit = self.resources.acquire_qmov_unit(start, length)
        self.vpiq.pop(start)
        self.vp.occupy(start, start + 1)

        data_ready = start + length
        self.memory.attach_vector_store_data(record, push_time=start, data_ready=data_ready)
        self.core.bump(data_ready)

    # -- scalar processor ----------------------------------------------------------------------------------

    def _scalar_execute(self, record: DynamicInstruction, entry_index: int) -> None:
        self.counts["SP"] += 1
        instruction = record.instruction
        ready = self.spiq.entries[entry_index].ready_time
        start = max(self.sp.free_time(), ready)
        for register in instruction.sources:
            start = max(start, self._operand_time(register, Processor.SCALAR))

        self.spiq.pop(start)
        self.sp.occupy(start, start + 1)
        completion = start + 1
        for register in instruction.destinations:
            self._set_register(register, Processor.SCALAR, completion)
        self.core.bump(completion)

    def _scalar_qmov_load(self, record: DynamicInstruction, entry_index: int) -> None:
        self.counts["SP"] += 1
        ready = self.spiq.entries[entry_index].ready_time
        front = self.memory.asdq.front()
        start = max(self.sp.free_time(), ready, front.ready_time)

        self.spiq.pop(start)
        self.sp.occupy(start, start + 1)
        self.memory.asdq.pop(start + 1)
        completion = start + 1
        destinations = record.instruction.scalar_destinations()
        if destinations:
            self._set_register(destinations[0], Processor.SCALAR, completion)
        self.core.bump(completion)

    def _scalar_qmov_store(self, record: DynamicInstruction, entry_index: int) -> None:
        self.counts["SP"] += 1
        ready = self.spiq.entries[entry_index].ready_time
        start = max(self.sp.free_time(), ready)
        sources = record.instruction.scalar_sources()
        if sources:
            start = max(start, self._operand_time(sources[0], Processor.SCALAR))

        self.spiq.pop(start)
        self.sp.occupy(start, start + 1)
        self.memory.attach_scalar_store_data(record, push_time=start, data_ready=start + 1)
        self.core.bump(start + 1)

    # -- wind-down ------------------------------------------------------------------------------------------

    def finish(self, trace: Trace) -> DecoupledResult:
        drain_end = self.memory.drain_all()
        total_cycles = self.core.finish_time(
            self.fp.free_time(),
            self.ap.free_time(),
            self.vp.free_time(),
            self.sp.free_time(),
            self.memory.port_quiet,
            self.memory.bypass_free,
            drain_end,
        )
        if not trace.records:
            total_cycles = 0

        instruction_queue_occupancy = {
            "APIQ": self.apiq.occupancy_timeline(horizon=total_cycles),
            "VPIQ": self.vpiq.occupancy_timeline(horizon=total_cycles),
            "SPIQ": self.spiq.occupancy_timeline(horizon=total_cycles),
        }
        counts = dict(self.counts)
        return DecoupledResult(
            program=trace.name,
            latency=self.memory.memory.latency,
            total_cycles=total_cycles,
            instructions=len(trace.records),
            bypass_enabled=self.config.enable_bypass,
            fu1_busy=self.resources.fu1,
            fu2_busy=self.resources.fu2,
            port_busy=self.memory.port,
            qmov_busy=list(self.resources.qmov_units),
            bypass_busy=self.memory.bypass_unit,
            avdq_occupancy=self.memory.avdq.occupancy_timeline("AVDQ", horizon=total_cycles),
            vadq_occupancy=self.memory.vadq.occupancy_timeline("VADQ", horizon=total_cycles),
            instruction_queue_occupancy=instruction_queue_occupancy,
            instructions_per_processor=counts,
            memory_traffic_bytes=self.memory.traffic_bytes,
            bypassed_loads=self.memory.bypassed_loads,
            bypassed_bytes=self.memory.bypassed_bytes,
            disambiguation_stalls=self.memory.disambiguation_stalls,
            fetch_stall_cycles=self.core.stalls.stalls("fetch"),
            scalar_cache_hits=self.memory.cache.hits,
            scalar_cache_misses=self.memory.cache.misses,
        )
