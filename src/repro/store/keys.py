"""Content-addressed cache keys for simulation results.

A sweep cell is fully determined by its inputs: the program model and trace
scale (which fix the dynamic instruction stream), the memory latency, and the
resolved machine the cell runs on.  :func:`cell_key` hashes exactly that
description — nothing less, nothing more — so two cells share a key if and
only if the simulators would produce identical results:

* the canonical :class:`~repro.core.machine.MachineSpec` string *and* the
  fully-resolved per-family configuration block (a spec field left unpinned
  inherits from the :class:`~repro.core.config.RunConfig`, so the spec string
  alone would under-identify the machine);
* the architecture label, because it travels on the result as provenance and
  a cache hit must restore the result byte-for-byte, label included;
* :data:`~repro.trace.generator.TRACE_GENERATOR_VERSION`, so changing how
  traces are generated invalidates every persisted result;
* :data:`~repro.engine.TIMING_MODEL_VERSION`, so changing what the
  simulators compute for an unchanged input invalidates them too; and
* :data:`KEY_SCHEME_VERSION`, so changing *this* hashing scheme does too.

The timing-core selector (``core=tick|event``) is deliberately *excluded*:
the cores are cycle-identical by contract (the differential fuzz suite and
the golden suite pin it), so a result computed on either core is a valid hit
for both.  :func:`cell_key` strips a core pin from the spec and from the
architecture label before hashing, which keeps every pre-existing key
byte-identical and makes tick- and event-computed cells interchangeable in
the store.

Only spec-backed simulators (:class:`~repro.core.registry.SpecArchitecture`
and anything else exposing a ``spec`` attribute holding a
:class:`~repro.core.machine.MachineSpec`) are keyable; a hand-written
simulator's behaviour is opaque code, not data, so :func:`cell_key` returns
``None`` for it and the runner simply never caches those cells.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, replace
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.core.config import RunConfig
from repro.core.machine import MachineSpec, format_override, parse_assignments
from repro.engine import TIMING_MODEL_VERSION
from repro.trace.generator import TRACE_GENERATOR_VERSION

#: Version of the key derivation itself.  Bump when the payload layout or the
#: hashing below changes, so old store entries can never be misread as hits.
KEY_SCHEME_VERSION = 1


def core_invariant_label(label: str) -> str:
    """``label`` with any ``core=...`` assignment removed from its @-clause.

    Labels that are not parseable spec strings (hand-written simulator names
    may contain anything) are returned unchanged — they key exactly as they
    always did.
    """
    prefix, at, clause = label.partition("@")
    if not at:
        return label
    try:
        assignments = parse_assignments(clause, label)
    except ConfigurationError:
        return label
    assignments.pop("core", None)
    if not assignments:
        return prefix
    parts = [format_override(key, value) for key, value in assignments.items()]
    return f"{prefix}@{','.join(parts)}"


def cell_key(
    program: str,
    scale: float,
    latency: int,
    simulator: object,
    config: RunConfig,
) -> Optional[str]:
    """The content-addressed key of one sweep cell, or ``None`` if uncacheable.

    Args:
        program: benchmark program name (case-insensitive).
        scale: trace scale factor.
        latency: memory latency in cycles.
        simulator: the resolved simulator the cell runs on; must expose a
            ``name`` label and a ``spec`` :class:`MachineSpec` to be keyable.
        config: the sweep-wide run configuration the spec resolves against.

    Returns:
        A 64-character SHA-256 hex digest, stable across processes and
        Python versions, or ``None`` when the simulator is not spec-backed.
    """
    spec = getattr(simulator, "spec", None)
    if not isinstance(spec, MachineSpec):
        return None
    if spec.core is not None:
        spec = replace(spec, core=None)
    if spec.family == "ref":
        machine = asdict(spec.apply_reference(config.reference))
    else:
        machine = asdict(spec.apply_decoupled(config.decoupled))
    payload = {
        "scheme": KEY_SCHEME_VERSION,
        "trace_generator": TRACE_GENERATOR_VERSION,
        "timing_model": TIMING_MODEL_VERSION,
        "program": str(program).upper(),
        "scale": float(scale),
        "latency": int(latency),
        "architecture": core_invariant_label(
            str(getattr(simulator, "name", spec.to_string()))
        ),
        "spec": spec.to_string(),
        "machine": machine,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
