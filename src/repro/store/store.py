"""The persistent, content-addressed result store.

A :class:`ResultStore` maps the cache key of a sweep cell (see
:mod:`repro.store.keys`) to the cell's serialized
:class:`~repro.core.result.RunResult`.  Entries live as individual JSON
files under a versioned directory tree::

    <root>/v1/objects/<key[:2]>/<key>.json    one file per result
    <root>/v1/index.json                      rebuildable summary index

``<root>`` defaults to ``~/.cache/repro`` (respecting ``XDG_CACHE_HOME``)
and is overridable with the ``REPRO_CACHE_DIR`` environment variable or the
CLI's ``--store-dir``.  Every object file is self-describing — it carries
the store format version, its own key and a small metadata block — so the
index is pure convenience: it can always be rebuilt by scanning the object
tree, and :meth:`ResultStore.write_index` does exactly that.

Writes are atomic (temp file + ``os.replace`` in the same directory), so a
killed sweep never leaves a torn entry, and concurrent pool workers writing
the same key simply race to an identical file.  Reads treat anything
unreadable — missing, torn by an unrelated tool, or written by a different
format version — as a miss, which the next write repairs.

The advisory index is the one file several writers *merge into* rather than
replace wholesale, so its read-modify-write cycle is serialized by a
cooperative lockfile (``index.lock``, created with ``O_CREAT | O_EXCL``):
without it, two concurrent sweeps — service requests, parallel CI jobs, or
two hosts sharing the store directory — could each read the same index,
merge their own cells, and have the second ``os.replace`` silently drop the
first writer's entries.  The lock is advisory like the index itself: a
writer that cannot acquire it within :attr:`ResultStore.index_lock_timeout`
skips the merge (objects are already on disk; the next full rebuild picks
them up), and a lockfile older than
:attr:`ResultStore.index_lock_stale_after` is broken, so a killed process
can never wedge the store.

The store is deliberately *provenance-only*: a loaded result differs from a
freshly simulated one solely in its ``cached`` flag (and both carry the
same ``store_key``), and those fields are excluded from equality, so cached
and fresh results compare equal and the golden suite cannot tell them
apart.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.common.errors import ConfigurationError
from repro.core.result import RunResult

#: Version of the on-disk layout.  Entries are stored under ``v<N>/``; a
#: bump strands the old tree, which ``gc`` and ``clear`` then reclaim.
STORE_FORMAT_VERSION = 1

_ENV_ROOT = "REPRO_CACHE_DIR"


def default_store_root() -> Path:
    """The store location used when none is given explicitly.

    Resolution order: ``$REPRO_CACHE_DIR``, then ``$XDG_CACHE_HOME/repro``,
    then ``~/.cache/repro``.
    """
    env = os.environ.get(_ENV_ROOT)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg).expanduser() / "repro"
    return Path.home() / ".cache" / "repro"


@dataclass(frozen=True)
class StoreEntry:
    """One persisted result, as listed by :meth:`ResultStore.entries`.

    Attributes:
        key: the entry's content-addressed cache key.
        program / architecture / latency / scale: the cell coordinates, from
            the entry's metadata block (for human listings; the key is what
            identifies the entry).
        size_bytes: size of the entry's file on disk.
        mtime: the file's modification time (seconds since the epoch) —
            the write time, which ``gc --max-age-days`` evicts by.
    """

    key: str
    program: str
    architecture: str
    latency: int
    scale: float
    size_bytes: int
    mtime: float


class ResultStore:
    """A content-addressed, crash-safe store of :class:`RunResult` payloads.

    Args:
        root: directory to keep the store under; defaults to
            :func:`default_store_root`.  Created lazily on first write, so
            constructing a store (e.g. in every pool worker) is free.

    The per-instance :attr:`hits`, :attr:`misses`, :attr:`writes`,
    :attr:`index_merges` and :attr:`index_merges_skipped` counters track
    this process's traffic only; they exist for reporting ("sweep: 30
    cached, 6 simulated", the service's ``/v1/stats``), not for accounting
    across processes.  :meth:`counters` returns them as one dictionary.
    """

    #: How long :meth:`update_index` waits for the index lock before giving
    #: the merge up (the index is advisory; the object files are already on
    #: disk and the next full rebuild finds them).
    index_lock_timeout: float = 10.0
    #: A lockfile older than this is treated as left behind by a killed
    #: process and broken.  Merges hold the lock for milliseconds, so a
    #: minute-old lock can only be an orphan.
    index_lock_stale_after: float = 60.0

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root).expanduser() if root is not None else default_store_root()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.index_merges = 0
        self.index_merges_skipped = 0

    def counters(self) -> Dict[str, int]:
        """This process's store traffic, as one dictionary (for reporting)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "index_merges": self.index_merges,
            "index_merges_skipped": self.index_merges_skipped,
        }

    # -- paths -----------------------------------------------------------------------

    @property
    def version_dir(self) -> Path:
        """The directory of the current on-disk format (``<root>/v1``)."""
        return self.root / f"v{STORE_FORMAT_VERSION}"

    @property
    def objects_dir(self) -> Path:
        return self.version_dir / "objects"

    @property
    def index_path(self) -> Path:
        return self.version_dir / "index.json"

    @property
    def index_lock_path(self) -> Path:
        return self.version_dir / "index.lock"

    def object_path(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists yet)."""
        self._check_key(key)
        return self.objects_dir / key[:2] / f"{key}.json"

    @staticmethod
    def _check_key(key: str) -> None:
        if len(key) < 3 or not all(c in "0123456789abcdef" for c in key):
            raise ConfigurationError(f"malformed store key {key!r}")

    # -- read / write ----------------------------------------------------------------

    def get(self, key: str) -> Optional[RunResult]:
        """Load the result stored under ``key``, or ``None`` on a miss.

        The returned result is marked ``cached=True`` and carries ``key`` as
        its ``store_key``.  Unreadable entries (torn files, foreign formats)
        count as misses.
        """
        path = self.object_path(key)
        try:
            with path.open() as handle:
                payload = json.load(handle)
            if payload.get("format") != STORE_FORMAT_VERSION or payload.get("key") != key:
                raise ValueError("foreign or mislabelled store entry")
            result = RunResult.from_json(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return replace(result, cached=True, store_key=key)

    def put(self, key: str, result: RunResult, scale: float = 1.0) -> None:
        """Persist ``result`` under ``key``, atomically.

        ``scale`` is the trace scale the cell ran at — part of the key
        already, recorded in the metadata block only so listings can show it.
        Concurrent writers of the same key race benignly: the key determines
        the content, so whichever ``os.replace`` lands last installs an
        identical payload.
        """
        path = self.object_path(key)
        payload = {
            "format": STORE_FORMAT_VERSION,
            "key": key,
            "meta": {
                "program": result.program,
                "architecture": result.architecture,
                "latency": result.latency,
                "scale": float(scale),
                "created_unix": round(time.time(), 3),
            },
            "result": replace(result, cached=False, store_key=key).to_json(),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1

    def __contains__(self, key: str) -> bool:
        return self.object_path(key).exists()

    # -- the index lock ----------------------------------------------------------------

    def _try_create_lock(self) -> bool:
        """One ``O_CREAT | O_EXCL`` attempt at the lockfile (the atomic step)."""
        try:
            fd = os.open(self.index_lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, f"pid={os.getpid()} created={round(time.time(), 3)}\n".encode())
        finally:
            os.close(fd)
        return True

    def _acquire_index_lock(self, timeout: Optional[float] = None) -> bool:
        """Acquire the cooperative index lock, or give up after ``timeout``.

        Contention is retried with a short sleep; a lockfile whose mtime is
        older than :attr:`index_lock_stale_after` is unlinked and the
        acquisition retried (two breakers racing is fine: the second unlink
        fails silently and exactly one ``O_EXCL`` create wins).
        """
        if timeout is None:
            timeout = self.index_lock_timeout
        self.version_dir.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + timeout
        while True:
            if self._try_create_lock():
                return True
            try:
                age = time.time() - self.index_lock_path.stat().st_mtime
            except OSError:
                continue  # holder released between attempts; retry at once
            if age > self.index_lock_stale_after:
                try:
                    self.index_lock_path.unlink()
                except OSError:
                    pass
                continue
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.005)

    def _release_index_lock(self) -> None:
        try:
            self.index_lock_path.unlink()
        except OSError:
            pass

    @contextmanager
    def _index_lock(self, timeout: Optional[float] = None) -> Iterator[bool]:
        """Hold the index lock for the block; yields whether it was acquired."""
        acquired = self._acquire_index_lock(timeout)
        try:
            yield acquired
        finally:
            if acquired:
                self._release_index_lock()

    # -- listing and the index ---------------------------------------------------------

    def _object_files(self) -> Iterator[Path]:
        if not self.objects_dir.is_dir():
            return
        for bucket in sorted(self.objects_dir.iterdir()):
            if not bucket.is_dir():
                continue
            yield from sorted(bucket.glob("*.json"))

    def entries(self) -> List[StoreEntry]:
        """Every readable entry in the store, sorted oldest write first."""
        entries: List[StoreEntry] = []
        for path in self._object_files():
            try:
                stat = path.stat()
                with path.open() as handle:
                    payload = json.load(handle)
                if payload.get("format") != STORE_FORMAT_VERSION:
                    continue
                meta = payload.get("meta", {})
                entries.append(
                    StoreEntry(
                        key=str(payload["key"]),
                        program=str(meta.get("program", "?")),
                        architecture=str(meta.get("architecture", "?")),
                        latency=int(meta.get("latency", -1)),
                        scale=float(meta.get("scale", 1.0)),
                        size_bytes=stat.st_size,
                        mtime=stat.st_mtime,
                    )
                )
            except (OSError, ValueError, KeyError, TypeError):
                continue
        entries.sort(key=lambda entry: (entry.mtime, entry.key))
        return entries

    def __len__(self) -> int:
        return sum(1 for _ in self._object_files())

    def write_index(self, entries: Optional[List[StoreEntry]] = None) -> Path:
        """Rebuild ``index.json`` from the object tree and write it atomically.

        The index is a human/tooling convenience (``repro cache stats`` reads
        it back); correctness never depends on it being fresh.  Callers that
        just scanned may pass their ``entries`` to avoid a second walk.

        The write itself takes the index lock so it cannot interleave with a
        concurrent :meth:`update_index` merge, but a full rebuild is an
        explicit maintenance operation and proceeds even when the lock
        cannot be acquired — it is authoritative for what the scan saw.
        """
        if entries is None:
            entries = self.entries()
        payload = {
            entry.key: {
                "program": entry.program,
                "architecture": entry.architecture,
                "latency": entry.latency,
                "scale": entry.scale,
                "bytes": entry.size_bytes,
                "mtime": round(entry.mtime, 3),
            }
            for entry in entries
        }
        with self._index_lock():
            return self._write_index_payload(payload)

    def _write_index_payload(self, entries: Dict[str, Dict[str, object]]) -> Path:
        payload = {
            "format": STORE_FORMAT_VERSION,
            "updated_unix": round(time.time(), 3),
            "entry_count": len(entries),
            "total_bytes": sum(int(entry.get("bytes", 0)) for entry in entries.values()),  # type: ignore[arg-type]
            "entries": entries,
        }
        self.version_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.version_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=2)
            os.replace(tmp_name, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return self.index_path

    def update_index(
        self, written: Sequence[Tuple[str, RunResult]], scale: float = 1.0
    ) -> bool:
        """Merge just-written entries into ``index.json`` without a full scan.

        The sweep runner calls this once per sweep with the cells it wrote:
        cost is O(cells written), not O(store size), so a small incremental
        sweep against a large long-lived store stays cheap.  The existing
        index is taken as-is (an unreadable or foreign one is discarded and
        the merge starts from this sweep's entries); entries for keys some
        other process evicted meanwhile linger until the next full rebuild —
        the index is advisory, and ``cache stats``/``gc`` rebuild it exactly.

        The whole read-merge-write cycle holds the index lock, so concurrent
        mergers (service requests, parallel sweeps, other hosts on a shared
        store) serialize instead of overwriting each other's entries.  When
        the lock cannot be acquired within :attr:`index_lock_timeout` the
        merge is *skipped* — never half-done — and ``False`` is returned;
        the objects themselves are already on disk and the next merge or
        full rebuild indexes them.
        """
        if not written:
            return True
        with self._index_lock() as acquired:
            if not acquired:
                self.index_merges_skipped += 1
                return False
            try:
                with self.index_path.open() as handle:
                    payload = json.load(handle)
                entries = (
                    payload["entries"]
                    if payload.get("format") == STORE_FORMAT_VERSION
                    else {}
                )
                if not isinstance(entries, dict):
                    entries = {}
            except (OSError, ValueError, KeyError):
                entries = {}
            changed = False
            for key, result in written:
                try:
                    stat = self.object_path(key).stat()
                except OSError:
                    continue
                entries[key] = {
                    "program": result.program,
                    "architecture": result.architecture,
                    "latency": result.latency,
                    "scale": float(scale),
                    "bytes": stat.st_size,
                    "mtime": round(stat.st_mtime, 3),
                }
                changed = True
            if changed:
                self._write_index_payload(entries)
                self.index_merges += 1
        return True

    def stats(self, refresh_index: bool = False) -> Dict[str, object]:
        """Aggregate numbers for ``repro cache stats`` (always a fresh scan).

        With ``refresh_index=True`` the same scan is also written out as
        ``index.json`` — including when the scan came back empty, so an
        index left behind by a since-evicted tree never goes stale.  A store
        that does not exist on disk at all is left untouched.
        """
        entries = self.entries()
        if refresh_index and (entries or self.version_dir.is_dir()):
            self.write_index(entries)
        by_architecture: Dict[str, int] = {}
        for entry in entries:
            by_architecture[entry.architecture] = (
                by_architecture.get(entry.architecture, 0) + 1
            )
        stale = [
            path.name
            for path in sorted(self.root.glob("v*"))
            if path.is_dir() and path != self.version_dir
        ]
        return {
            "root": str(self.root),
            "format": STORE_FORMAT_VERSION,
            "entry_count": len(entries),
            "total_bytes": sum(entry.size_bytes for entry in entries),
            "by_architecture": by_architecture,
            "stale_version_dirs": stale,
            "process_counters": self.counters(),
        }

    # -- eviction --------------------------------------------------------------------

    def gc(
        self,
        max_age_days: Optional[float] = None,
        max_bytes: Optional[int] = None,
        dry_run: bool = False,
    ) -> Dict[str, object]:
        """Evict entries and reclaim space; returns a report of what happened.

        Three policies compose, all optional:

        * stale version directories (``v0``, ``v2``, ... — any tree not of
          the current :data:`STORE_FORMAT_VERSION`) are always removed: no
          current reader can ever hit them — as are ``*.tmp`` files older
          than an hour, orphaned by writers that were killed between
          ``mkstemp`` and ``os.replace`` (entries never see them, so only
          ``gc`` can reclaim that space);
        * ``max_age_days`` evicts entries written longer ago than that;
        * ``max_bytes`` then evicts oldest-written-first until the current
          tree fits the budget.

        Dead cluster-coordination state is reaped alongside: claim files
        whose lease expired over an hour ago (their sweeps have no live
        workers) and fully-drained sweep directories untouched for an hour
        (their results live in the store; the scaffolding is disposable).
        See :func:`repro.cluster.coordinator.reap_cluster`.

        With ``dry_run=True`` nothing is deleted; the report shows what
        would be.  The index is rewritten after a real collection.
        """
        if max_age_days is not None and max_age_days < 0:
            raise ConfigurationError("--max-age-days cannot be negative")
        if max_bytes is not None and max_bytes < 0:
            raise ConfigurationError("--max-bytes cannot be negative")

        stale_dirs = [
            path
            for path in sorted(self.root.glob("v*"))
            if path.is_dir() and path != self.version_dir
        ]
        # Tmp files a writer was killed over — object writes land next to
        # their target, index writes in the version dir: any in-flight write
        # finishes in milliseconds, so an hour-old tmp can only be an orphan.
        orphan_cutoff = time.time() - 3600.0
        orphaned_tmp = []
        tmp_globs = [(self.version_dir, "*.tmp"), (self.objects_dir, "*/*.tmp")]
        for base, pattern in tmp_globs:
            if not base.is_dir():
                continue
            for path in sorted(base.glob(pattern)):
                try:
                    if path.stat().st_mtime < orphan_cutoff:
                        orphaned_tmp.append(path)
                except OSError:
                    continue
        entries = self.entries()
        evicted: List[StoreEntry] = []
        kept: List[StoreEntry] = []
        cutoff = (
            time.time() - max_age_days * 86400.0 if max_age_days is not None else None
        )
        for entry in entries:
            if cutoff is not None and entry.mtime < cutoff:
                evicted.append(entry)
            else:
                kept.append(entry)
        if max_bytes is not None:
            total = sum(entry.size_bytes for entry in kept)
            survivors: List[StoreEntry] = []
            for index, entry in enumerate(kept):  # oldest first
                if total > max_bytes:
                    evicted.append(entry)
                    total -= entry.size_bytes
                else:
                    survivors.extend(kept[index:])
                    break
            kept = survivors

        if not dry_run:
            for path in stale_dirs:
                shutil.rmtree(path, ignore_errors=True)
            for path in orphaned_tmp:
                try:
                    path.unlink()
                except OSError:
                    pass
            for entry in evicted:
                try:
                    self.object_path(entry.key).unlink()
                except OSError:
                    pass
            if self.version_dir.is_dir():
                self.write_index(kept)

        # Imported lazily: the cluster layer sits above the store (workers
        # and coordinators are store clients), so a module-level import here
        # would be circular.
        from repro.cluster.coordinator import reap_cluster

        cluster_report = reap_cluster(self, dry_run=dry_run)
        return {
            "dry_run": dry_run,
            "stale_version_dirs_removed": [path.name for path in stale_dirs],
            "orphaned_tmp_files": len(orphaned_tmp),
            "evicted": len(evicted),
            "evicted_bytes": sum(entry.size_bytes for entry in evicted),
            "kept": len(kept),
            "kept_bytes": sum(entry.size_bytes for entry in kept),
            "cluster_claims_reaped": cluster_report["claims_reaped"],
            "cluster_sweeps_reaped": cluster_report["sweeps_reaped"],
        }

    def clear(self) -> int:
        """Delete every entry (all format versions); returns entries removed.

        The count covers stale-version trees too — anything that is not an
        index file — so it matches what actually left the disk.
        """
        removed = 0
        for version_dir in sorted(self.root.glob("v*")):
            if not version_dir.is_dir():
                continue
            removed += sum(
                1
                for path in version_dir.rglob("*.json")
                if path.name != "index.json"
            )
            shutil.rmtree(version_dir, ignore_errors=True)
        return removed
