"""Persistent, content-addressed caching of simulation results.

The paper's experiments are grids, and :class:`~repro.core.experiment.SweepSpec`
makes those grids combinatorially large — yet every cell is a pure function
of its inputs (program model, trace scale, memory latency, resolved
machine).  This package exploits that purity: :func:`cell_key` derives a
stable content hash of exactly those inputs, and :class:`ResultStore` maps
the hash to the cell's persisted :class:`~repro.core.result.RunResult`.

The :class:`~repro.core.experiment.Runner` threads the store through a
sweep: it consults the store before dispatching cells and writes each
freshly simulated cell back the moment it completes, so

* a sweep killed mid-run and restarted re-simulates only unfinished cells,
* an identical warm re-run simulates nothing at all, and
* the store stays *provenance-only* — a cache hit is equal to a fresh
  simulation in every comparable field (``cached``/``store_key`` are
  excluded from equality), so enabling it can never change a result.

Manage the store from the command line with ``repro cache stats``,
``repro cache gc`` and ``repro cache clear``; see :mod:`repro.store.store`
for the on-disk layout.
"""

from repro.store.keys import KEY_SCHEME_VERSION, cell_key
from repro.store.store import (
    STORE_FORMAT_VERSION,
    ResultStore,
    StoreEntry,
    default_store_root,
)

__all__ = [
    "KEY_SCHEME_VERSION",
    "STORE_FORMAT_VERSION",
    "ResultStore",
    "StoreEntry",
    "cell_key",
    "default_store_root",
]
