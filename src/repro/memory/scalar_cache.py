"""The scalar cache in front of the memory port.

The decoupled architecture routes scalar memory accesses through a cache that
holds only scalar data (paper §4.2); vector accesses bypass it entirely.  The
paper also counts the scalar cache as one of the five resources of its lower
bound model (§5), so the reference architecture is given the same cache.

The cache is a small direct-mapped, write-through design tracked at line
granularity.  Only addresses are modelled — no data is stored — because the
simulators only need to know whether an access hits (serviced locally in one
cycle) or misses (must use the memory port and pay main-memory latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class ScalarCacheConfig:
    """Geometry and timing of the scalar cache."""

    line_bytes: int = 32
    lines: int = 1024
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigurationError("cache line size must be a positive power of two")
        if self.lines <= 0:
            raise ConfigurationError("cache must have at least one line")
        if self.hit_latency < 0:
            raise ConfigurationError("hit latency cannot be negative")

    @property
    def capacity_bytes(self) -> int:
        return self.line_bytes * self.lines


class ScalarCache:
    """A direct-mapped, write-allocate, address-only scalar cache."""

    def __init__(self, config: Optional[ScalarCacheConfig] = None) -> None:
        self.config = config if config is not None else ScalarCacheConfig()
        self._tags: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    def _line_index_and_tag(self, address: int) -> tuple[int, int]:
        line_number = address // self.config.line_bytes
        return line_number % self.config.lines, line_number

    def access(self, address: int) -> bool:
        """Perform one scalar access; return ``True`` on a hit.

        Both loads and stores allocate the line: the cache is a filter in
        front of the port, not a coherence model, so the distinction does not
        affect timing beyond hit/miss.
        """
        index, tag = self._line_index_and_tag(address)
        if self._tags.get(index) == tag:
            self.hits += 1
            return True
        self._tags[index] = tag
        self.misses += 1
        return False

    def probe(self, address: int) -> bool:
        """Check for a hit without updating cache state or statistics."""
        index, tag = self._line_index_and_tag(address)
        return self._tags.get(index) == tag

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Invalidate all lines and clear statistics."""
        self._tags.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScalarCache(lines={self.config.lines}, line_bytes={self.config.line_bytes}, "
            f"hit_rate={self.hit_rate:.2f})"
        )
