"""Memory ranges and the disambiguation rule of the address processor.

The paper (§4.2) defines the memory range accessed by a vector reference with
base address ``BA``, vector length ``VL``, stride ``VS`` (in bytes) and access
granularity ``S`` as all locations between ``BA`` and ``BA + (VL-1)*VS + S``
(with the two terms inverted for negative strides).  Two references conflict
when their ranges overlap in at least one byte.  Gathers and scatters cannot
be characterised by a range, so they are treated as covering all of memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SimulationError
from repro.isa.registers import ELEMENT_SIZE_BYTES
from repro.trace.record import DynamicInstruction


@dataclass(frozen=True)
class MemoryRange:
    """A half-open byte range ``[start, end)``; ``full`` covers all memory."""

    start: int = 0
    end: int = 0
    full: bool = False

    def __post_init__(self) -> None:
        if not self.full and self.end < self.start:
            raise SimulationError(
                f"memory range end ({self.end}) precedes start ({self.start})"
            )

    @property
    def size(self) -> int:
        """Number of bytes covered (meaningless for the full range)."""
        if self.full:
            raise SimulationError("the full-memory range has no finite size")
        return self.end - self.start

    def overlaps(self, other: "MemoryRange") -> bool:
        """True when the two ranges share at least one byte."""
        if self.full or other.full:
            # A range that covers all of memory conflicts with everything,
            # including an empty range: the conservative assumption the paper
            # makes for scatters and gathers.
            return True
        return self.start < other.end and other.start < self.end

    def contains(self, address: int) -> bool:
        """True when ``address`` falls inside the range."""
        if self.full:
            return True
        return self.start <= address < self.end

    def __str__(self) -> str:
        if self.full:
            return "[all memory]"
        return f"[0x{self.start:x}, 0x{self.end:x})"


#: Sentinel range used for gathers and scatters.
FULL_RANGE = MemoryRange(full=True)


def access_range(
    base: int,
    vector_length: int,
    stride_elements: int,
    *,
    is_scalar: bool = False,
    indexed: bool = False,
) -> MemoryRange:
    """The memory range of one access, from its scalar description.

    This is the hot-loop form of :func:`range_of_access`: the simulators read
    base/length/stride straight off trace columns instead of a record object.
    Scalar references cover one element; strided vector references follow the
    paper's formula; indexed references (gathers/scatters) return
    :data:`FULL_RANGE`.
    """
    if indexed:
        return FULL_RANGE
    if is_scalar:
        return MemoryRange(base, base + ELEMENT_SIZE_BYTES)
    if vector_length == 0:
        # A zero-length vector reference touches no memory at all.
        return MemoryRange(base, base)
    span = (vector_length - 1) * stride_elements * ELEMENT_SIZE_BYTES
    if span >= 0:
        return MemoryRange(base, base + span + ELEMENT_SIZE_BYTES)
    return MemoryRange(base + span, base + ELEMENT_SIZE_BYTES)


def range_of_access(record: DynamicInstruction) -> MemoryRange:
    """The memory range accessed by one traced memory instruction."""
    if not record.is_memory:
        raise SimulationError(f"{record} is not a memory access")
    if record.is_indexed_memory:
        return FULL_RANGE
    base = record.base_address
    if base is None:
        raise SimulationError(f"{record} carries no base address")
    return access_range(
        base,
        record.vector_length,
        record.stride_elements,
        is_scalar=record.is_scalar_memory,
        indexed=False,
    )


def ranges_conflict(first: MemoryRange, second: MemoryRange) -> bool:
    """True when two ranges overlap in at least one byte (paper's hazard rule)."""
    return first.overlaps(second)


def accesses_identical(load: DynamicInstruction, store: DynamicInstruction) -> bool:
    """True when a load would read exactly what a queued store will write.

    This is the condition under which the bypass of Section 7 may forward the
    store data straight into the load queue: same base address, same stride,
    same vector length, and neither access is indexed.
    """
    if not (load.is_load and store.is_store):
        return False
    if load.is_indexed_memory or store.is_indexed_memory:
        return False
    if load.is_scalar_memory != store.is_scalar_memory:
        return False
    return (
        load.base_address == store.base_address
        and load.stride_elements == store.stride_elements
        and load.effective_length == store.effective_length
    )
