"""Memory-system substrate shared by both simulated architectures.

This package models the parts of the memory system the paper's timing
arguments depend on:

* a single pipelined memory port with a shared address bus — a vector
  reference of length VL occupies the bus for exactly VL cycles (paper §4.2),
* a configurable main-memory latency seen by loads (stores never expose
  latency to the processor because the data path for stores is separate),
* a small scalar cache that services scalar references without using the
  memory port when they hit (paper §4.2 and the five-resource lower bound of
  §5),
* memory ranges and the dynamic disambiguation rule used by the decoupled
  architecture's address processor (gathers and scatters conservatively cover
  all of memory).
"""

from repro.memory.model import MemoryModel, MemoryTimings
from repro.memory.ranges import (
    FULL_RANGE,
    MemoryRange,
    accesses_identical,
    range_of_access,
    ranges_conflict,
)
from repro.memory.scalar_cache import ScalarCache, ScalarCacheConfig

__all__ = [
    "FULL_RANGE",
    "MemoryModel",
    "MemoryRange",
    "MemoryTimings",
    "ScalarCache",
    "ScalarCacheConfig",
    "accesses_identical",
    "range_of_access",
    "ranges_conflict",
]
