"""Configuration of the reference vector architecture.

This is the *mechanism* layer: a frozen block of every reference-machine
parameter, consumed by :class:`~repro.refarch.simulator.ReferenceSimulator`.
The declarative layer above it — :class:`~repro.core.machine.MachineSpec`
with family ``"ref"`` — pins fields onto this block via
:meth:`~repro.core.machine.MachineSpec.apply_reference`; prefer describing
machines there (``"ref@lanes=2,chaining=on"``) over constructing variant
blocks by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigurationError
from repro.memory.scalar_cache import ScalarCacheConfig


@dataclass(frozen=True)
class ReferenceConfig:
    """Architectural parameters of the reference (non-decoupled) machine.

    Attributes:
        functional_unit_startup: pipeline depth of the vector functional
            units; the first element of a result becomes available (for
            chaining) this many cycles after the instruction starts.
        allow_load_chaining: when ``True`` consumers may chain off vector
            loads.  The Convex C34 (and the Cray-2/3) do not support this —
            the paper keeps it off — but the flag enables the ablation study
            of that design choice.
        scalar_cache: geometry of the scalar data cache.
        scalar_store_writes_through: when ``True`` scalar stores always use
            the memory port; when ``False`` (default) store hits are absorbed
            by the cache, which is how the paper can count the scalar cache as
            a resource separate from the memory port.
        lanes: parallel lanes per vector functional unit (the classic
            Cray/NEC scaling axis).  A length-VL operation occupies its unit
            for ``ceil(VL / lanes)`` cycles; the paper's machine has one lane.
        memory_ports: identical memory-port units sharing the address bus;
            references pick the least-loaded port.  The paper's machine has
            one.
    """

    functional_unit_startup: int = 4
    allow_load_chaining: bool = False
    scalar_cache: ScalarCacheConfig = field(default_factory=ScalarCacheConfig)
    scalar_store_writes_through: bool = False
    lanes: int = 1
    memory_ports: int = 1

    def __post_init__(self) -> None:
        if self.functional_unit_startup < 0:
            raise ConfigurationError("functional unit startup cannot be negative")
        if self.lanes <= 0:
            raise ConfigurationError("a vector unit needs at least one lane")
        if self.memory_ports <= 0:
            raise ConfigurationError("the machine needs at least one memory port")

    def with_variant(self, lanes: int, memory_ports: int) -> "ReferenceConfig":
        """A copy of this configuration with different lane/port counts."""
        return replace(self, lanes=lanes, memory_ports=memory_ports)
