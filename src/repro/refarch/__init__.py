"""The reference (non-decoupled) vector architecture simulator.

This models the machine of paper §2.1: a close relative of the Convex C3400
with a scalar part that issues at most one instruction per cycle, two vector
functional units (FU1 restricted, FU2 general purpose), a single memory port,
eight 128-element vector registers, flexible chaining between functional units
and into stores, and **no** chaining after vector loads.

The simulator is event driven: it processes the dynamic trace once, in program
order, computing for every instruction the cycle at which the in-order
dispatcher can issue it and the intervals during which it occupies its
functional unit or the memory port.  Per-cycle quantities such as the
eight-state execution breakdown of Figure 1 are reconstructed from those
intervals afterwards.
"""

from repro.refarch.config import ReferenceConfig
from repro.refarch.result import ReferenceResult
from repro.refarch.simulator import ReferenceSimulator, simulate_reference

__all__ = [
    "ReferenceConfig",
    "ReferenceResult",
    "ReferenceSimulator",
    "simulate_reference",
]
