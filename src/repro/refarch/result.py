"""Results produced by the reference architecture simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.intervals import IntervalRecorder, StateBreakdown, state_breakdown


@dataclass
class ReferenceResult:
    """Everything the reference simulator measures in one run.

    The three functional units are named the way the paper names them:
    ``FU2`` (general purpose), ``FU1`` (restricted) and ``LD`` (the memory
    port).  The eight-state breakdown of Figure 1 is the partition of total
    execution time by which subset of these three units is busy.
    """

    program: str
    latency: int
    total_cycles: int
    instructions: int
    vector_instructions: int
    scalar_instructions: int
    fu1_busy: IntervalRecorder
    fu2_busy: IntervalRecorder
    port_busy: IntervalRecorder
    memory_traffic_bytes: int = 0
    scalar_cache_hits: int = 0
    scalar_cache_misses: int = 0
    dispatch_stall_cycles: int = 0
    category_cycles: Dict[str, int] = field(default_factory=dict)

    _breakdown: StateBreakdown | None = field(default=None, repr=False, compare=False)

    # -- derived quantities ----------------------------------------------------

    def state_breakdown(self) -> StateBreakdown:
        """Cycles spent in each (FU2, FU1, LD) busy/idle combination."""
        if self._breakdown is None:
            self._breakdown = state_breakdown(
                [self.fu2_busy, self.fu1_busy, self.port_busy], self.total_cycles
            )
        return self._breakdown

    @property
    def all_idle_cycles(self) -> int:
        """Cycles in the paper's ``( , , )`` state: every vector unit idle."""
        return self.state_breakdown().cycles_all_idle()

    @property
    def port_idle_cycles(self) -> int:
        """Cycles during which the memory port performs no useful work."""
        return self.total_cycles - self.port_busy.busy_time()

    @property
    def port_idle_fraction(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.port_idle_cycles / self.total_cycles

    @property
    def port_busy_fraction(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.port_busy.busy_time() / self.total_cycles

    @property
    def peak_state_cycles(self) -> int:
        """Cycles with both functional units busy (the paper's peak FP states)."""
        breakdown = self.state_breakdown()
        return breakdown.cycles_in(True, True, True) + breakdown.cycles_in(True, True, False)

    @property
    def scalar_cache_accesses(self) -> int:
        return self.scalar_cache_hits + self.scalar_cache_misses

    @property
    def scalar_cache_hit_rate(self) -> float:
        accesses = self.scalar_cache_accesses
        if accesses == 0:
            return 0.0
        return self.scalar_cache_hits / accesses

    def summary(self) -> Dict[str, object]:
        """A flat dictionary of headline numbers, convenient for reports.

        The first eight keys are the *core key set* shared with
        :meth:`repro.dva.result.DecoupledResult.summary`, so reports can mix
        results from both architectures without special-casing either.
        """
        return {
            "program": self.program,
            "latency": self.latency,
            "total_cycles": self.total_cycles,
            "instructions": self.instructions,
            "memory_traffic_bytes": self.memory_traffic_bytes,
            "scalar_cache_hits": self.scalar_cache_hits,
            "scalar_cache_misses": self.scalar_cache_misses,
            "all_idle_cycles": self.all_idle_cycles,
            "port_idle_fraction": round(self.port_idle_fraction, 4),
            "scalar_cache_hit_rate": round(self.scalar_cache_hit_rate, 4),
        }

    def to_json(self) -> Dict[str, object]:
        """A JSON-serializable dictionary of everything reports consume.

        The returned value survives a ``json.dumps``/``json.loads`` round trip
        unchanged; :class:`repro.core.result.RunResult` embeds it verbatim.
        """
        return {
            **self.summary(),
            "vector_instructions": self.vector_instructions,
            "scalar_instructions": self.scalar_instructions,
            "dispatch_stall_cycles": self.dispatch_stall_cycles,
            "category_cycles": dict(self.category_cycles),
        }
