"""Event-driven (skip-ahead) core of the reference-architecture simulator.

Same issue rules, inverted control flow: where the tick core
(:class:`~repro.refarch.simulator._SimulationState`) folds every constraint
on an instruction's issue cycle into a running ``max``, this core registers
each constraint — operand scoreboard releases, the pinned or least-loaded
functional unit freeing, the memory port freeing — as a wakeup on a
:class:`~repro.engine.events.WakeupScheduler` and jumps the dispatcher's
clock straight to the last one.  Each jump starts at ``dispatch_free``, so
the scheduler's per-tag spans are an exact breakdown of the machine's
dispatch stalls by blocking resource (their sum equals the result's
``dispatch_stall_cycles``; the differential fuzz suite asserts this).

Equivalence with the tick core is by construction, not coincidence: the
shared engine state is mutated by the same calls in the same order — the
scalar cache is probed before the jump (its hit/miss outcome is
time-independent but stateful), the unit choice is peeked with the pool's
own ``least_loaded()`` rule (which never depends on the request cycle), and
occupation/scoreboard/stall writes reuse the inherited helpers.  Result
assembly is inherited outright.
"""

from __future__ import annotations

from repro.common.errors import SimulationError
from repro.engine import occupancy_cycles
from repro.engine.events import WakeupScheduler
from repro.isa.registers import ELEMENT_SIZE_BYTES
from repro.refarch.simulator import _FU2, _SimulationState
from repro.trace.columns import (
    KIND_QUEUE_MOVE,
    KIND_SCALAR_MEMORY,
    KIND_VECTOR_COMPUTE,
    KIND_VECTOR_MEMORY,
)
from repro.trace.record import Trace


class _EventReferenceState(_SimulationState):
    """The reference machine's issue rules driven by a wakeup scheduler."""

    def __init__(self, memory, config) -> None:
        super().__init__(memory, config)
        self.scheduler = WakeupScheduler()

    # -- main issue loop ---------------------------------------------------------------

    def consume(self, trace: Trace) -> None:
        """Issue every dynamic instruction by jumping between wakeups."""
        columns = trace.columns
        infos = columns.instruction_infos()
        insn = columns.insn
        lengths = columns.vl
        addresses = columns.addr
        read = self.core.scoreboard.read
        wake = self.scheduler.wake

        vector_instructions = 0
        for index in range(len(insn)):
            info = infos[insn[index]]
            may_chain = info.may_chain
            for register in info.sources:
                wake(read(register, allow_chain=may_chain), "operand")

            kind = info.kind
            if kind == KIND_VECTOR_COMPUTE:
                vector_instructions += 1
                self._event_vector_compute(info, lengths[index])
            elif kind == KIND_VECTOR_MEMORY:
                vector_instructions += 1
                self._event_vector_memory(info, lengths[index])
            elif kind == KIND_SCALAR_MEMORY:
                self._event_scalar_memory(info, addresses[index])
            elif kind == KIND_QUEUE_MOVE:
                raise SimulationError(
                    "queue-move opcodes are internal to the decoupled architecture "
                    "and cannot appear in a reference-architecture trace"
                )
            else:
                self._event_scalar(info)

        self.instructions = len(insn)
        self.vector_instructions = vector_instructions
        self.scalar_instructions = len(insn) - vector_instructions

    # -- per-class issue rules -----------------------------------------------------------

    def _event_scalar(self, info) -> None:
        issue_time = self.scheduler.jump(self.dispatch_free)
        self._advance_dispatch(issue_time)
        completion = issue_time + 1
        for register in info.destinations:
            self.core.scoreboard.write(register, completion)
        self.core.bump(completion)
        self.core.stalls.account("scalar", 1)

    def _event_vector_compute(self, info, vector_length: int) -> None:
        busy = occupancy_cycles(vector_length, self.config.lanes)
        fus = self.fus
        unit = _FU2 if info.requires_fu2 else fus.least_loaded()
        scheduler = self.scheduler
        scheduler.wake(fus.free[unit], "functional-unit")
        issue_time = scheduler.jump(self.dispatch_free)
        fus.occupy(issue_time, issue_time + busy, unit)
        self._advance_dispatch(issue_time)

        startup = self.config.functional_unit_startup
        first_element = issue_time + startup
        completion = issue_time + startup + busy
        write = self.core.scoreboard.write
        for register, is_vector in info.destination_flags:
            write(
                register,
                completion,
                chain_start=first_element if is_vector else None,
            )
        self.core.bump(completion)
        self.core.stalls.account("vector_compute", busy)

    def _event_vector_memory(self, info, vector_length: int) -> None:
        memory = self.memory
        bus_cycles = memory.vector_bus_cycles(vector_length)
        ports = self.fabric.ports
        unit = ports.least_loaded()
        scheduler = self.scheduler
        scheduler.wake(ports.free[unit], "memory-port")
        issue_time = scheduler.jump(self.dispatch_free)
        ports.occupy(issue_time, issue_time + bus_cycles, unit)
        self.fabric.traffic_bytes += vector_length * ELEMENT_SIZE_BYTES
        bus_end = issue_time + bus_cycles
        self._advance_dispatch(issue_time)

        if info.is_load:
            completion = memory.load_ready(issue_time, bus_cycles)
            chain_start = (
                memory.first_element_arrival(issue_time)
                if self.config.allow_load_chaining
                else None
            )
            write = self.core.scoreboard.write
            for register in info.destinations:
                write(register, completion, chain_start=chain_start)
            self.core.bump(completion)
        else:
            completion = issue_time + bus_cycles
            self.core.bump(completion)
        self.core.stalls.account("vector_memory", bus_end - issue_time)

    def _event_scalar_memory(self, info, address: int) -> None:
        fabric = self.fabric
        is_store = info.is_store
        access = fabric.scalar_access_at(address, is_store)
        scheduler = self.scheduler

        if access.uses_port:
            ports = fabric.ports
            unit = ports.least_loaded()
            scheduler.wake(ports.free[unit], "memory-port")
            issue_time = scheduler.jump(self.dispatch_free)
            ports.occupy(
                issue_time,
                issue_time + self.memory.timings.scalar_bus_cycles,
                unit,
            )
            fabric.traffic_bytes += ELEMENT_SIZE_BYTES
        else:
            issue_time = scheduler.jump(self.dispatch_free)
        self._advance_dispatch(issue_time)

        if not is_store:
            completion = fabric.scalar_load_ready(access, issue_time)
            write = self.core.scoreboard.write
            for register in info.destinations:
                write(register, completion)
        else:
            completion = issue_time + 1
        self.core.bump(completion)
        self.core.stalls.account("scalar_memory", 1)
