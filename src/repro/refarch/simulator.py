"""Event-driven simulator of the reference vector architecture.

The machine is in-order and issue-blocking: the dispatcher looks at one
instruction at a time and cannot move past it until the instruction has
started executing.  An instruction starts executing when

* the dispatcher has reached it (at most one instruction per cycle),
* its source operands are available — fully written for most producers, or
  merely *started* when flexible chaining applies (functional unit to
  functional unit and functional unit to store; never after a vector load),
* and its execution resource is free (FU1/FU2 for vector arithmetic, the
  memory port for vector memory and scalar-cache misses).

The timing machinery — the register scoreboard, the functional-unit and
memory-port pools, stall accounting and the completion horizon — is the
shared :mod:`repro.engine` kernel; this module contributes only the issue
rules of the reference machine.  The issue loop runs over the trace's
columns: per dynamic instruction it reads the precomputed
:class:`~repro.trace.columns.InstructionInfo` of the static instruction plus
the vector-length and address columns into locals, so the per-record cost is
integer indexing rather than attribute access on record objects.  Processing
the trace once in program order yields exactly the timing a cycle-by-cycle
simulation would produce, at a small fraction of the cost.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import SimulationError
from repro.engine import MemoryFabric, TimingCore, occupancy_cycles, validate_core
from repro.isa.registers import ELEMENT_SIZE_BYTES
from repro.memory.model import MemoryModel
from repro.refarch.config import ReferenceConfig
from repro.refarch.result import ReferenceResult
from repro.trace.columns import (
    KIND_QUEUE_MOVE,
    KIND_SCALAR_MEMORY,
    KIND_VECTOR_COMPUTE,
    KIND_VECTOR_MEMORY,
)
from repro.trace.record import Trace

_FU1 = 0
_FU2 = 1


class ReferenceSimulator:
    """Simulates one trace on the reference architecture.

    ``core`` selects the control flow driving the shared engine primitives:
    ``"tick"`` (the default oracle) folds issue constraints into a running
    ``max``; ``"event"`` (:mod:`repro.refarch.event_core`) jumps between
    registered wakeups.  Results are cycle-identical by contract — the
    differential fuzz suite pins it — so the selection never changes what a
    run measures, only how the stalls are attributed internally.
    """

    def __init__(
        self,
        memory: MemoryModel,
        config: Optional[ReferenceConfig] = None,
        core: str = "tick",
    ) -> None:
        self.memory = memory
        self.config = config if config is not None else ReferenceConfig()
        self.core = validate_core(core)

    # -- public API ----------------------------------------------------------------

    def run(self, trace: Trace) -> ReferenceResult:
        """Simulate ``trace`` and return the measured result."""
        if self.core == "event":
            from repro.refarch.event_core import _EventReferenceState

            state = _EventReferenceState(self.memory, self.config)
        else:
            state = _SimulationState(self.memory, self.config)
        state.consume(trace)
        return state.finish(trace)


def simulate_reference(
    trace: Trace,
    latency: int,
    config: Optional[ReferenceConfig] = None,
    core: str = "tick",
) -> ReferenceResult:
    """Convenience wrapper: simulate ``trace`` at the given memory latency."""
    simulator = ReferenceSimulator(MemoryModel(latency=latency), config=config, core=core)
    return simulator.run(trace)


class _SimulationState:
    """Issue rules of the reference machine over a :class:`TimingCore`."""

    def __init__(self, memory: MemoryModel, config: ReferenceConfig) -> None:
        self.memory = memory
        self.config = config
        self.core = TimingCore()
        self.fus = self.core.add_pool("FU", count=2, unit_names=("FU1", "FU2"))
        self.fabric = MemoryFabric(
            memory,
            config.scalar_cache,
            ports=config.memory_ports,
            scalar_store_writes_through=config.scalar_store_writes_through,
        )

        self.dispatch_free = 0
        self.instructions = 0
        self.vector_instructions = 0
        self.scalar_instructions = 0

    # -- main issue loop ---------------------------------------------------------------

    def consume(self, trace: Trace) -> None:
        """Issue every dynamic instruction of the trace, in program order.

        One pass over the columns with per-field locals: the static facts of
        each instruction come from the shared
        :class:`~repro.trace.columns.InstructionInfo` table, the dynamic
        facts (VL, base address) from integer column reads.
        """
        columns = trace.columns
        infos = columns.instruction_infos()
        insn = columns.insn
        lengths = columns.vl
        addresses = columns.addr
        read = self.core.scoreboard.read

        vector_instructions = 0
        for index in range(len(insn)):
            info = infos[insn[index]]
            may_chain = info.may_chain
            earliest = self.dispatch_free
            for register in info.sources:
                ready = read(register, allow_chain=may_chain)
                if ready > earliest:
                    earliest = ready

            kind = info.kind
            if kind == KIND_VECTOR_COMPUTE:
                vector_instructions += 1
                self._issue_vector_compute(info, lengths[index], earliest)
            elif kind == KIND_VECTOR_MEMORY:
                vector_instructions += 1
                self._issue_vector_memory(info, lengths[index], addresses[index], earliest)
            elif kind == KIND_SCALAR_MEMORY:
                self._issue_scalar_memory(info, addresses[index], earliest)
            elif kind == KIND_QUEUE_MOVE:
                raise SimulationError(
                    "queue-move opcodes are internal to the decoupled architecture "
                    "and cannot appear in a reference-architecture trace"
                )
            else:
                self._issue_scalar(info, earliest)

        self.instructions = len(insn)
        self.vector_instructions = vector_instructions
        self.scalar_instructions = len(insn) - vector_instructions

    # -- per-class issue rules -----------------------------------------------------------

    def _advance_dispatch(self, issue_time: int) -> None:
        self.core.stalls.stall("dispatch", issue_time - self.dispatch_free)
        self.dispatch_free = issue_time + 1

    def _issue_scalar(self, info, earliest: int) -> None:
        issue_time = earliest
        self._advance_dispatch(issue_time)
        completion = issue_time + 1
        for register in info.destinations:
            self.core.scoreboard.write(register, completion)
        self.core.bump(completion)
        self.core.stalls.account("scalar", 1)

    def _issue_vector_compute(self, info, vector_length: int, earliest: int) -> None:
        busy = occupancy_cycles(vector_length, self.config.lanes)

        unit = _FU2 if info.requires_fu2 else None
        issue_time, _unit = self.fus.acquire(earliest, busy, unit=unit)
        self._advance_dispatch(issue_time)

        startup = self.config.functional_unit_startup
        first_element = issue_time + startup
        completion = issue_time + startup + busy
        write = self.core.scoreboard.write
        for register, is_vector in info.destination_flags:
            # Scalar results of reductions are not chainable; vector results are.
            write(
                register,
                completion,
                chain_start=first_element if is_vector else None,
            )
        self.core.bump(completion)
        self.core.stalls.account("vector_compute", busy)

    def _issue_vector_memory(
        self, info, vector_length: int, address: int, earliest: int
    ) -> None:
        memory = self.memory
        bus_cycles = memory.vector_bus_cycles(vector_length)
        traffic = vector_length * ELEMENT_SIZE_BYTES
        issue_time, bus_end = self.fabric.occupy_bus(earliest, bus_cycles, traffic)
        self._advance_dispatch(issue_time)

        if info.is_load:
            completion = memory.load_ready(issue_time, bus_cycles)
            chain_start = (
                memory.first_element_arrival(issue_time)
                if self.config.allow_load_chaining
                else None
            )
            write = self.core.scoreboard.write
            for register in info.destinations:
                write(register, completion, chain_start=chain_start)
            self.core.bump(completion)
        else:
            completion = issue_time + bus_cycles
            self.core.bump(completion)
        self.core.stalls.account("vector_memory", bus_end - issue_time)

    def _issue_scalar_memory(self, info, address: int, earliest: int) -> None:
        fabric = self.fabric
        is_store = info.is_store
        access = fabric.scalar_access_at(address, is_store)

        if access.uses_port:
            issue_time, _bus_end = fabric.occupy_bus(
                earliest, self.memory.timings.scalar_bus_cycles, ELEMENT_SIZE_BYTES
            )
        else:
            issue_time = earliest
        self._advance_dispatch(issue_time)

        if not is_store:
            completion = fabric.scalar_load_ready(access, issue_time)
            write = self.core.scoreboard.write
            for register in info.destinations:
                write(register, completion)
        else:
            completion = issue_time + 1
        self.core.bump(completion)
        self.core.stalls.account("scalar_memory", 1)

    # -- wind-down -------------------------------------------------------------------------

    def finish(self, trace: Trace) -> ReferenceResult:
        total_cycles = self.core.finish_time(self.dispatch_free)
        return ReferenceResult(
            program=trace.name,
            latency=self.memory.latency,
            total_cycles=total_cycles,
            instructions=self.instructions,
            vector_instructions=self.vector_instructions,
            scalar_instructions=self.scalar_instructions,
            fu1_busy=self.fus.recorder(_FU1),
            fu2_busy=self.fus.recorder(_FU2),
            port_busy=self.fabric.port_recorder(),
            memory_traffic_bytes=self.fabric.traffic_bytes,
            scalar_cache_hits=self.fabric.cache.hits,
            scalar_cache_misses=self.fabric.cache.misses,
            dispatch_stall_cycles=self.core.stalls.stalls("dispatch"),
            category_cycles=self.core.stalls.categories(),
        )
