"""Event-driven simulator of the reference vector architecture.

The machine is in-order and issue-blocking: the dispatcher looks at one
instruction at a time and cannot move past it until the instruction has
started executing.  An instruction starts executing when

* the dispatcher has reached it (at most one instruction per cycle),
* its source operands are available — fully written for most producers, or
  merely *started* when flexible chaining applies (functional unit to
  functional unit and functional unit to store; never after a vector load),
* and its execution resource is free (FU1/FU2 for vector arithmetic, the
  single memory port for vector memory and scalar-cache misses).

Processing the trace once in program order and keeping, for every register
and resource, the cycle at which it next becomes available yields exactly the
timing a cycle-by-cycle simulation of this in-order machine would produce,
at a small fraction of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import SimulationError
from repro.common.intervals import IntervalRecorder
from repro.isa.opcodes import Opcode, OpcodeClass
from repro.isa.registers import Register
from repro.memory.model import MemoryModel
from repro.memory.scalar_cache import ScalarCache
from repro.refarch.config import ReferenceConfig
from repro.refarch.result import ReferenceResult
from repro.trace.record import DynamicInstruction, Trace


@dataclass
class _RegisterState:
    """Availability of one architectural register."""

    ready: int = 0
    chain_start: Optional[int] = None  # first-element availability, if chainable


class ReferenceSimulator:
    """Simulates one trace on the reference architecture."""

    def __init__(
        self,
        memory: MemoryModel,
        config: Optional[ReferenceConfig] = None,
    ) -> None:
        self.memory = memory
        self.config = config if config is not None else ReferenceConfig()

    # -- public API ----------------------------------------------------------------

    def run(self, trace: Trace) -> ReferenceResult:
        """Simulate ``trace`` and return the measured result."""
        state = _SimulationState(self.memory, self.config)
        for record in trace.records:
            state.issue(record)
        return state.finish(trace)


def simulate_reference(
    trace: Trace,
    latency: int,
    config: Optional[ReferenceConfig] = None,
) -> ReferenceResult:
    """Convenience wrapper: simulate ``trace`` at the given memory latency."""
    simulator = ReferenceSimulator(MemoryModel(latency=latency), config=config)
    return simulator.run(trace)


class _SimulationState:
    """Mutable state of one reference-architecture simulation."""

    def __init__(self, memory: MemoryModel, config: ReferenceConfig) -> None:
        self.memory = memory
        self.config = config
        self.cache = ScalarCache(config.scalar_cache)

        self.dispatch_free = 0
        self.fu1 = IntervalRecorder("FU1")
        self.fu2 = IntervalRecorder("FU2")
        self.port = IntervalRecorder("LD")
        self.fu1_free = 0
        self.fu2_free = 0
        self.port_free = 0

        self.registers: Dict[Register, _RegisterState] = {}
        self.completion_horizon = 0
        self.traffic_bytes = 0
        self.dispatch_stall_cycles = 0
        self.category_cycles: Dict[str, int] = {}

        self.instructions = 0
        self.vector_instructions = 0
        self.scalar_instructions = 0

    # -- register helpers ------------------------------------------------------------

    def _register_state(self, register: Register) -> _RegisterState:
        return self.registers.setdefault(register, _RegisterState())

    def _operand_ready(self, record: DynamicInstruction, register: Register) -> int:
        """Cycle at which ``record`` may start as far as ``register`` is concerned."""
        state = self._register_state(register)
        if state.chain_start is not None and self._consumer_may_chain(record):
            return state.chain_start
        return state.ready

    def _consumer_may_chain(self, record: DynamicInstruction) -> bool:
        """Chaining targets: vector arithmetic and vector stores (paper §2.1)."""
        instruction = record.instruction
        if instruction.opcode_class is OpcodeClass.VECTOR_COMPUTE:
            return True
        return instruction.is_store and instruction.is_vector_memory

    # -- main issue routine ------------------------------------------------------------

    def issue(self, record: DynamicInstruction) -> None:
        instruction = record.instruction
        self.instructions += 1
        if record.is_vector:
            self.vector_instructions += 1
        else:
            self.scalar_instructions += 1

        earliest = self.dispatch_free
        for register in instruction.sources:
            earliest = max(earliest, self._operand_ready(record, register))

        if instruction.is_vector_memory:
            self._issue_vector_memory(record, earliest)
        elif instruction.is_scalar_memory:
            self._issue_scalar_memory(record, earliest)
        elif instruction.opcode_class is OpcodeClass.VECTOR_COMPUTE:
            self._issue_vector_compute(record, earliest)
        elif instruction.is_queue_move:
            raise SimulationError(
                "queue-move opcodes are internal to the decoupled architecture "
                "and cannot appear in a reference-architecture trace"
            )
        else:
            self._issue_scalar(record, earliest)

    # -- per-class issue rules -----------------------------------------------------------

    def _advance_dispatch(self, issue_time: int) -> None:
        self.dispatch_stall_cycles += max(0, issue_time - self.dispatch_free)
        self.dispatch_free = issue_time + 1

    def _account(self, category: str, cycles: int) -> None:
        self.category_cycles[category] = self.category_cycles.get(category, 0) + cycles

    def _issue_scalar(self, record: DynamicInstruction, earliest: int) -> None:
        issue_time = earliest
        self._advance_dispatch(issue_time)
        completion = issue_time + 1
        for register in record.instruction.destinations:
            state = self._register_state(register)
            state.ready = completion
            state.chain_start = None
        self._bump_horizon(completion)
        self._account("scalar", 1)

    def _issue_vector_compute(self, record: DynamicInstruction, earliest: int) -> None:
        instruction = record.instruction
        length = max(record.vector_length, 1)

        if instruction.requires_fu2:
            unit_free, unit, unit_attr = self.fu2_free, self.fu2, "fu2_free"
        elif self.fu1_free <= self.fu2_free:
            unit_free, unit, unit_attr = self.fu1_free, self.fu1, "fu1_free"
        else:
            unit_free, unit, unit_attr = self.fu2_free, self.fu2, "fu2_free"

        issue_time = max(earliest, unit_free)
        self._advance_dispatch(issue_time)

        busy_until = issue_time + length
        unit.record(issue_time, busy_until)
        setattr(self, unit_attr, busy_until)

        startup = self.config.functional_unit_startup
        first_element = issue_time + startup
        completion = issue_time + startup + length
        for register in instruction.destinations:
            state = self._register_state(register)
            state.ready = completion
            # Scalar results of reductions are not chainable; vector results are.
            state.chain_start = first_element if register.is_vector else None
        self._bump_horizon(completion)
        self._account("vector_compute", length)

    def _issue_vector_memory(self, record: DynamicInstruction, earliest: int) -> None:
        instruction = record.instruction
        issue_time = max(earliest, self.port_free)
        self._advance_dispatch(issue_time)

        bus_cycles = self.memory.bus_occupancy(record)
        bus_end = issue_time + bus_cycles
        self.port.record(issue_time, bus_end)
        self.port_free = bus_end
        self.traffic_bytes += self.memory.traffic_bytes(record)

        if instruction.is_load:
            completion = self.memory.load_complete(record, issue_time)
            for register in instruction.destinations:
                state = self._register_state(register)
                state.ready = completion
                if self.config.allow_load_chaining:
                    state.chain_start = self.memory.first_element_arrival(issue_time)
                else:
                    state.chain_start = None
            self._bump_horizon(completion)
        else:
            completion = self.memory.store_complete(record, issue_time)
            self._bump_horizon(completion)
        self._account("vector_memory", bus_cycles)

    def _issue_scalar_memory(self, record: DynamicInstruction, earliest: int) -> None:
        instruction = record.instruction
        if record.base_address is None:
            raise SimulationError(f"scalar memory access without address: {record}")
        hit = self.cache.access(record.base_address)

        uses_port = not hit
        if instruction.is_store and self.config.scalar_store_writes_through:
            uses_port = True

        if uses_port:
            issue_time = max(earliest, self.port_free)
        else:
            issue_time = earliest
        self._advance_dispatch(issue_time)

        if uses_port:
            bus_end = issue_time + self.memory.timings.scalar_bus_cycles
            self.port.record(issue_time, bus_end)
            self.port_free = bus_end
            self.traffic_bytes += self.memory.traffic_bytes(record)

        if instruction.is_load:
            if hit:
                completion = issue_time + self.config.scalar_cache.hit_latency
            else:
                completion = issue_time + 1 + self.memory.latency
            for register in instruction.destinations:
                state = self._register_state(register)
                state.ready = completion
                state.chain_start = None
        else:
            completion = issue_time + 1
        self._bump_horizon(completion)
        self._account("scalar_memory", 1)

    # -- bookkeeping -------------------------------------------------------------------------

    def _bump_horizon(self, completion: int) -> None:
        if completion > self.completion_horizon:
            self.completion_horizon = completion

    def finish(self, trace: Trace) -> ReferenceResult:
        total_cycles = max(self.completion_horizon, self.dispatch_free)
        return ReferenceResult(
            program=trace.name,
            latency=self.memory.latency,
            total_cycles=total_cycles,
            instructions=self.instructions,
            vector_instructions=self.vector_instructions,
            scalar_instructions=self.scalar_instructions,
            fu1_busy=self.fu1,
            fu2_busy=self.fu2,
            port_busy=self.port,
            memory_traffic_bytes=self.traffic_bytes,
            scalar_cache_hits=self.cache.hits,
            scalar_cache_misses=self.cache.misses,
            dispatch_stall_cycles=self.dispatch_stall_cycles,
            category_cycles=dict(self.category_cycles),
        )
