"""Event-driven simulator of the reference vector architecture.

The machine is in-order and issue-blocking: the dispatcher looks at one
instruction at a time and cannot move past it until the instruction has
started executing.  An instruction starts executing when

* the dispatcher has reached it (at most one instruction per cycle),
* its source operands are available — fully written for most producers, or
  merely *started* when flexible chaining applies (functional unit to
  functional unit and functional unit to store; never after a vector load),
* and its execution resource is free (FU1/FU2 for vector arithmetic, the
  memory port for vector memory and scalar-cache misses).

The timing machinery — the register scoreboard, the functional-unit and
memory-port pools, stall accounting and the completion horizon — is the
shared :mod:`repro.engine` kernel; this module contributes only the issue
rules of the reference machine.  Processing the trace once in program order
yields exactly the timing a cycle-by-cycle simulation would produce, at a
small fraction of the cost.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import SimulationError
from repro.engine import MemoryFabric, TimingCore, occupancy_cycles
from repro.isa.opcodes import OpcodeClass
from repro.isa.registers import Register
from repro.memory.model import MemoryModel
from repro.refarch.config import ReferenceConfig
from repro.refarch.result import ReferenceResult
from repro.trace.record import DynamicInstruction, Trace

_FU1 = 0
_FU2 = 1


class ReferenceSimulator:
    """Simulates one trace on the reference architecture."""

    def __init__(
        self,
        memory: MemoryModel,
        config: Optional[ReferenceConfig] = None,
    ) -> None:
        self.memory = memory
        self.config = config if config is not None else ReferenceConfig()

    # -- public API ----------------------------------------------------------------

    def run(self, trace: Trace) -> ReferenceResult:
        """Simulate ``trace`` and return the measured result."""
        state = _SimulationState(self.memory, self.config)
        for record in trace.records:
            state.issue(record)
        return state.finish(trace)


def simulate_reference(
    trace: Trace,
    latency: int,
    config: Optional[ReferenceConfig] = None,
) -> ReferenceResult:
    """Convenience wrapper: simulate ``trace`` at the given memory latency."""
    simulator = ReferenceSimulator(MemoryModel(latency=latency), config=config)
    return simulator.run(trace)


class _SimulationState:
    """Issue rules of the reference machine over a :class:`TimingCore`."""

    def __init__(self, memory: MemoryModel, config: ReferenceConfig) -> None:
        self.memory = memory
        self.config = config
        self.core = TimingCore()
        self.fus = self.core.add_pool("FU", count=2, unit_names=("FU1", "FU2"))
        self.fabric = MemoryFabric(
            memory,
            config.scalar_cache,
            ports=config.memory_ports,
            scalar_store_writes_through=config.scalar_store_writes_through,
        )

        self.dispatch_free = 0
        self.instructions = 0
        self.vector_instructions = 0
        self.scalar_instructions = 0

    # -- register helpers ------------------------------------------------------------

    def _operand_ready(self, record: DynamicInstruction, register: Register) -> int:
        """Cycle at which ``record`` may start as far as ``register`` is concerned."""
        return self.core.scoreboard.read(
            register, allow_chain=self._consumer_may_chain(record)
        )

    def _consumer_may_chain(self, record: DynamicInstruction) -> bool:
        """Chaining targets: vector arithmetic and vector stores (paper §2.1)."""
        instruction = record.instruction
        if instruction.opcode_class is OpcodeClass.VECTOR_COMPUTE:
            return True
        return instruction.is_store and instruction.is_vector_memory

    # -- main issue routine ------------------------------------------------------------

    def issue(self, record: DynamicInstruction) -> None:
        instruction = record.instruction
        self.instructions += 1
        if record.is_vector:
            self.vector_instructions += 1
        else:
            self.scalar_instructions += 1

        earliest = self.dispatch_free
        for register in instruction.sources:
            earliest = max(earliest, self._operand_ready(record, register))

        if instruction.is_vector_memory:
            self._issue_vector_memory(record, earliest)
        elif instruction.is_scalar_memory:
            self._issue_scalar_memory(record, earliest)
        elif instruction.opcode_class is OpcodeClass.VECTOR_COMPUTE:
            self._issue_vector_compute(record, earliest)
        elif instruction.is_queue_move:
            raise SimulationError(
                "queue-move opcodes are internal to the decoupled architecture "
                "and cannot appear in a reference-architecture trace"
            )
        else:
            self._issue_scalar(record, earliest)

    # -- per-class issue rules -----------------------------------------------------------

    def _advance_dispatch(self, issue_time: int) -> None:
        self.core.stalls.stall("dispatch", issue_time - self.dispatch_free)
        self.dispatch_free = issue_time + 1

    def _issue_scalar(self, record: DynamicInstruction, earliest: int) -> None:
        issue_time = earliest
        self._advance_dispatch(issue_time)
        completion = issue_time + 1
        for register in record.instruction.destinations:
            self.core.scoreboard.write(register, completion)
        self.core.bump(completion)
        self.core.stalls.account("scalar", 1)

    def _issue_vector_compute(self, record: DynamicInstruction, earliest: int) -> None:
        instruction = record.instruction
        busy = occupancy_cycles(record.vector_length, self.config.lanes)

        unit = _FU2 if instruction.requires_fu2 else None
        issue_time, _unit = self.fus.acquire(earliest, busy, unit=unit)
        self._advance_dispatch(issue_time)

        startup = self.config.functional_unit_startup
        first_element = issue_time + startup
        completion = issue_time + startup + busy
        for register in instruction.destinations:
            # Scalar results of reductions are not chainable; vector results are.
            self.core.scoreboard.write(
                register,
                completion,
                chain_start=first_element if register.is_vector else None,
            )
        self.core.bump(completion)
        self.core.stalls.account("vector_compute", busy)

    def _issue_vector_memory(self, record: DynamicInstruction, earliest: int) -> None:
        instruction = record.instruction
        issue_time, bus_end = self.fabric.occupy_vector_bus(earliest, record)
        self._advance_dispatch(issue_time)

        if instruction.is_load:
            completion = self.memory.load_complete(record, issue_time)
            for register in instruction.destinations:
                chain_start = (
                    self.memory.first_element_arrival(issue_time)
                    if self.config.allow_load_chaining
                    else None
                )
                self.core.scoreboard.write(register, completion, chain_start=chain_start)
            self.core.bump(completion)
        else:
            completion = self.memory.store_complete(record, issue_time)
            self.core.bump(completion)
        self.core.stalls.account("vector_memory", bus_end - issue_time)

    def _issue_scalar_memory(self, record: DynamicInstruction, earliest: int) -> None:
        instruction = record.instruction
        access = self.fabric.scalar_access(record)

        if access.uses_port:
            issue_time, _bus_end = self.fabric.occupy_scalar_bus(earliest, record)
        else:
            issue_time = earliest
        self._advance_dispatch(issue_time)

        if instruction.is_load:
            completion = self.fabric.scalar_load_ready(access, issue_time)
            for register in instruction.destinations:
                self.core.scoreboard.write(register, completion)
        else:
            completion = issue_time + 1
        self.core.bump(completion)
        self.core.stalls.account("scalar_memory", 1)

    # -- wind-down -------------------------------------------------------------------------

    def finish(self, trace: Trace) -> ReferenceResult:
        total_cycles = self.core.finish_time(self.dispatch_free)
        return ReferenceResult(
            program=trace.name,
            latency=self.memory.latency,
            total_cycles=total_cycles,
            instructions=self.instructions,
            vector_instructions=self.vector_instructions,
            scalar_instructions=self.scalar_instructions,
            fu1_busy=self.fus.recorder(_FU1),
            fu2_busy=self.fus.recorder(_FU2),
            port_busy=self.fabric.port_recorder(),
            memory_traffic_bytes=self.fabric.traffic_bytes,
            scalar_cache_hits=self.fabric.cache.hits,
            scalar_cache_misses=self.fabric.cache.misses,
            dispatch_stall_cycles=self.core.stalls.stalls("dispatch"),
            category_cycles=self.core.stalls.categories(),
        )
