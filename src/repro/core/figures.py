"""Reproduction of the paper's headline figures and tables.

Everything here consumes an executed :class:`~repro.core.experiment.SweepResult`
and produces plain row dictionaries — ready for a CSV file, a JSON report or a
terminal table — so the reproduction artifacts need no plotting dependency:

* :func:`speedup_table` / :func:`speedup_curves` — Figure 5: REF→DVA speedup
  per program as memory latency grows.
* :func:`queue_occupancy_rows` — Figure 6: cycles spent at each AVDQ
  occupancy level.
* :func:`bypass_traffic_table` — Section 7: loads serviced by the bypass and
  the memory traffic it saves.
"""

from __future__ import annotations

import csv
from typing import Dict, IO, List, Sequence, Union

from repro.common.errors import ConfigurationError
from repro.core.experiment import SweepResult

Row = Dict[str, object]


def _require_architecture(sweep: SweepResult, name: str) -> None:
    # Check the labels the sweep actually produced, not the spec's base
    # architecture names: a machine-axis sweep labels its cells with canonical
    # spec strings ("dva@lanes=2"), and those are valid figure targets too.
    labels = sweep.architecture_labels()
    if name.lower() not in labels:
        known = ", ".join(labels)
        raise ConfigurationError(
            f"sweep does not include architecture {name!r} (swept: {known})"
        )


def speedup_table(
    sweep: SweepResult, baseline: str = "ref", target: str = "dva"
) -> List[Row]:
    """Figure 5-style rows: per (program, latency) speedup of ``target`` over ``baseline``."""
    _require_architecture(sweep, baseline)
    _require_architecture(sweep, target)
    rows: List[Row] = []
    for program in sweep.spec.programs:
        for latency in sweep.spec.latencies:
            base = sweep.get(program, latency, baseline)
            other = sweep.get(program, latency, target)
            rows.append(
                {
                    "program": program,
                    "latency": latency,
                    f"{baseline}_cycles": base.total_cycles,
                    f"{target}_cycles": other.total_cycles,
                    "speedup": round(other.speedup_over(base), 4),
                }
            )
    return rows


def speedup_curves(
    sweep: SweepResult, baseline: str = "ref", target: str = "dva"
) -> Dict[str, Dict[int, float]]:
    """Figure 5 as curves: ``{program: {latency: speedup}}``."""
    curves: Dict[str, Dict[int, float]] = {}
    for row in speedup_table(sweep, baseline, target):
        program = str(row["program"])
        curves.setdefault(program, {})[int(row["latency"])] = float(row["speedup"])  # type: ignore[arg-type]
    return curves


def queue_occupancy_rows(sweep: SweepResult, architecture: str = "dva") -> List[Row]:
    """Figure 6-style rows: cycles at each AVDQ occupancy level.

    One row per (program, latency, occupancy level), with the fraction of
    total cycles spent at that level.  Only decoupled architectures record the
    AVDQ, so results without an ``avdq_histogram`` detail are rejected.
    """
    _require_architecture(sweep, architecture)
    rows: List[Row] = []
    for result in sweep.by_architecture(architecture):
        histogram = result.detail.get("avdq_histogram")
        if histogram is None:
            raise ConfigurationError(
                f"architecture {architecture!r} records no AVDQ occupancy "
                "(Figure 6 needs a decoupled architecture)"
            )
        total = max(result.total_cycles, 1)
        for level, cycles in histogram:  # type: ignore[union-attr]
            rows.append(
                {
                    "program": result.program,
                    "latency": result.latency,
                    "occupancy": level,
                    "cycles": cycles,
                    "fraction": round(cycles / total, 4),
                }
            )
    return rows


def bypass_traffic_table(
    sweep: SweepResult, bypass: str = "dva", reference: str = "ref"
) -> List[Row]:
    """Section 7-style rows: bypass hit rate and memory-traffic savings.

    Compares the bypassing architecture's port traffic against the reference
    machine's for the same cell; ``traffic_reduction`` is the fraction of REF
    traffic the decoupled machine avoided (negative when spilling through the
    queues added traffic instead).
    """
    _require_architecture(sweep, bypass)
    _require_architecture(sweep, reference)
    rows: List[Row] = []
    for program in sweep.spec.programs:
        for latency in sweep.spec.latencies:
            dva = sweep.get(program, latency, bypass)
            ref = sweep.get(program, latency, reference)
            vector_loads = dva.detail.get("instructions_per_processor", {}).get(  # type: ignore[union-attr]
                "vector_loads", 0
            )
            bypassed_loads = int(dva.detail.get("bypassed_loads", 0))  # type: ignore[arg-type]
            ref_traffic = ref.memory_traffic_bytes
            reduction = (
                (ref_traffic - dva.memory_traffic_bytes) / ref_traffic
                if ref_traffic
                else 0.0
            )
            rows.append(
                {
                    "program": program,
                    "latency": latency,
                    "vector_loads": vector_loads,
                    "bypassed_loads": bypassed_loads,
                    "bypassed_bytes": dva.detail.get("bypassed_bytes", 0),
                    "bypass_load_fraction": round(
                        bypassed_loads / vector_loads if vector_loads else 0.0, 4
                    ),
                    f"{reference}_traffic_bytes": ref_traffic,
                    f"{bypass}_traffic_bytes": dva.memory_traffic_bytes,
                    "traffic_reduction": round(reduction, 4),
                }
            )
    return rows


def write_csv(rows: Sequence[Row], destination: Union[str, IO[str]]) -> None:
    """Write rows (all sharing the first row's key set) as a CSV file."""
    if not rows:
        raise ConfigurationError("cannot write a CSV file with no rows")
    fieldnames = list(rows[0].keys())
    if isinstance(destination, str):
        with open(destination, "w", newline="") as handle:
            _write_csv_rows(rows, fieldnames, handle)
    else:
        _write_csv_rows(rows, fieldnames, destination)


def _write_csv_rows(rows: Sequence[Row], fieldnames: List[str], handle: IO[str]) -> None:
    writer = csv.DictWriter(handle, fieldnames=fieldnames)
    writer.writeheader()
    writer.writerows(rows)


def format_table(rows: Sequence[Row]) -> str:
    """Render rows as an aligned text table for terminal output."""
    if not rows:
        return "(no rows)"
    headers = list(rows[0].keys())
    table = [[str(row.get(header, "")) for header in headers] for row in rows]
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in table))
        for i in range(len(headers))
    ]
    def render(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    lines = [render(headers), render(["-" * width for width in widths])]
    lines.extend(render(line) for line in table)
    return "\n".join(lines)
