"""Declarative experiments: sweep grids and the runner that executes them.

The paper's central experiment is a grid — six Perfect Club programs × memory
latencies {1, 10, 50, 100} × machines {REF, DVA} (§4–§7).  A
:class:`SweepSpec` declares such a grid, an :class:`Experiment` binds it to a
base :class:`~repro.core.config.RunConfig`, and a :class:`Runner` executes
every cell either serially or across a ``multiprocessing`` pool.

Trace generation is the repeated cost across cells (every latency and
architecture of one program re-simulates the same trace), so the runner builds
each program's trace exactly once: the serial path keeps a per-runner
:class:`TraceCache`, and the parallel path ships one task per program whose
worker builds the trace once and sweeps all of that program's cells.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.core.config import RunConfig
from repro.core.registry import Simulator, architecture
from repro.core.result import RunResult
from repro.trace.record import Trace
from repro.workloads.perfect_club import load_program


@dataclass(frozen=True)
class SweepCell:
    """One point of a sweep grid."""

    program: str
    latency: int
    architecture: str


@dataclass(frozen=True)
class SweepSpec:
    """A (programs × latencies × architectures) grid.

    Program names are normalized to the registry's upper-case form and
    architecture names to lower case, so specs parsed from a command line
    compare equal to specs built in code.
    """

    programs: Tuple[str, ...]
    latencies: Tuple[int, ...]
    architectures: Tuple[str, ...] = ("ref", "dva")
    scale: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "programs", tuple(str(p).upper() for p in self.programs)
        )
        object.__setattr__(
            self, "latencies", tuple(int(lat) for lat in self.latencies)
        )
        object.__setattr__(
            self, "architectures", tuple(str(a).lower() for a in self.architectures)
        )
        if not self.programs:
            raise ConfigurationError("a sweep needs at least one program")
        if not self.latencies:
            raise ConfigurationError("a sweep needs at least one memory latency")
        if not self.architectures:
            raise ConfigurationError("a sweep needs at least one architecture")
        if any(latency < 0 for latency in self.latencies):
            raise ConfigurationError("memory latencies cannot be negative")
        if self.scale <= 0:
            raise ConfigurationError("trace scale must be positive")

    @classmethod
    def from_strings(
        cls,
        programs: str,
        latencies: str,
        architectures: str = "ref,dva",
        scale: float = 1.0,
    ) -> "SweepSpec":
        """Parse comma-separated lists, as given on the command line."""
        try:
            parsed_latencies = tuple(
                int(s) for s in (s.strip() for s in latencies.split(",")) if s
            )
        except ValueError as exc:
            raise ConfigurationError(
                f"latencies must be integers, got {latencies!r}"
            ) from exc
        return cls(
            programs=tuple(p for p in (s.strip() for s in programs.split(",")) if p),
            latencies=parsed_latencies,
            architectures=tuple(
                a for a in (s.strip() for s in architectures.split(",")) if a
            ),
            scale=scale,
        )

    def cells(self) -> Iterator[SweepCell]:
        """Grid cells in deterministic program-major order."""
        for program in self.programs:
            for latency in self.latencies:
                for arch in self.architectures:
                    yield SweepCell(program, latency, arch)

    def __len__(self) -> int:
        return len(self.programs) * len(self.latencies) * len(self.architectures)


class TraceCache:
    """Builds each (program, scale) trace at most once."""

    def __init__(self) -> None:
        self._traces: Dict[Tuple[str, float], Trace] = {}

    def get(self, program: str, scale: float) -> Trace:
        key = (program.upper(), scale)
        trace = self._traces.get(key)
        if trace is None:
            trace = load_program(program).build_trace(scale=scale)
            self._traces[key] = trace
        return trace

    def __len__(self) -> int:
        return len(self._traces)


def _run_cells(
    trace: Trace, pairs: Sequence[Tuple[int, Simulator]], config: RunConfig
) -> List[RunResult]:
    """Sweep one trace across its (latency, simulator) cells."""
    return [
        simulator.simulate(trace, config.with_latency(latency))
        for latency, simulator in pairs
    ]


def _run_program_cells(
    task: Tuple[str, float, Sequence[Tuple[int, Simulator]], RunConfig]
) -> List[RunResult]:
    """Worker: build one program's trace, then sweep its cells.

    Module-level so ``multiprocessing`` can pickle it under both the fork and
    spawn start methods.  The task carries the resolved :class:`Simulator`
    objects rather than registry names, so runtime-registered extensions work
    in workers too — provided the simulator object itself pickles.
    """
    program, scale, pairs, config = task
    trace = load_program(program).build_trace(scale=scale)
    return _run_cells(trace, pairs, config)


class Runner:
    """Executes sweep grids, serially or across a process pool.

    ``jobs=1`` runs in-process against a shared :class:`TraceCache`;
    ``jobs>1`` distributes one task per program over a ``multiprocessing``
    pool (workers build their program's trace themselves, so the parent's
    cache is not populated).  Both paths produce identical results in
    identical order — the simulators are deterministic and each cell is
    independent — which the test suite asserts.
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ConfigurationError("runner needs at least one job")
        self.jobs = jobs
        self.trace_cache = TraceCache()

    def run(self, spec: SweepSpec, config: Optional[RunConfig] = None) -> "SweepResult":
        """Execute every cell of ``spec`` and collect the results."""
        config = config if config is not None else RunConfig()
        for program in spec.programs:
            load_program(program)  # fail fast on unknown programs

        # Resolve names once, up front: unknown architectures fail before any
        # simulation, and workers receive the simulator objects themselves.
        pairs = [
            (latency, architecture(arch))
            for latency in spec.latencies
            for arch in spec.architectures
        ]
        tasks = [(program, spec.scale, pairs, config) for program in spec.programs]

        if self.jobs == 1 or len(spec.programs) == 1:
            per_program = [
                _run_cells(self.trace_cache.get(program, scale), task_pairs, task_config)
                for program, scale, task_pairs, task_config in tasks
            ]
        else:
            workers = min(self.jobs, len(tasks))
            with multiprocessing.Pool(processes=workers) as pool:
                per_program = pool.map(_run_program_cells, tasks)

        results = [result for program_results in per_program for result in program_results]
        return SweepResult(spec=spec, results=results)


@dataclass
class SweepResult:
    """All cell results of one executed sweep, in grid order."""

    spec: SweepSpec
    results: List[RunResult]

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def get(self, program: str, latency: int, architecture_name: str) -> RunResult:
        """The result of one cell; raises when the cell was not in the grid."""
        key = (program.upper(), int(latency), architecture_name.lower())
        for result in self.results:
            if result.cell_key == key:
                return result
        raise ConfigurationError(f"sweep has no cell {key!r}")

    def by_architecture(self, architecture_name: str) -> List[RunResult]:
        """All results produced by one architecture, in grid order."""
        name = architecture_name.lower()
        return [result for result in self.results if result.architecture == name]

    def summaries(self) -> List[Dict[str, object]]:
        """Per-cell headline dictionaries, in grid order."""
        return [result.summary() for result in self.results]

    def to_json(self) -> Dict[str, object]:
        """A dictionary that survives ``json.dumps``/``json.loads`` unchanged."""
        return {
            "spec": {
                "programs": list(self.spec.programs),
                "latencies": list(self.spec.latencies),
                "architectures": list(self.spec.architectures),
                "scale": self.spec.scale,
            },
            "results": [result.to_json() for result in self.results],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "SweepResult":
        """Rebuild a :class:`SweepResult` from :meth:`to_json` output."""
        spec_data = data["spec"]
        assert isinstance(spec_data, Mapping)
        spec = SweepSpec(
            programs=tuple(spec_data["programs"]),  # type: ignore[arg-type]
            latencies=tuple(spec_data["latencies"]),  # type: ignore[arg-type]
            architectures=tuple(spec_data["architectures"]),  # type: ignore[arg-type]
            scale=float(spec_data["scale"]),  # type: ignore[arg-type]
        )
        results = [RunResult.from_json(item) for item in data["results"]]  # type: ignore[union-attr]
        return cls(spec=spec, results=results)


@dataclass
class Experiment:
    """A sweep grid bound to a base run configuration.

    The grid's per-cell latency overrides the base configuration's; everything
    else (chaining flags, queue sizes, cache geometry) applies to every cell.
    """

    spec: SweepSpec
    config: RunConfig = field(default_factory=RunConfig)
    name: str = ""

    def run(self, runner: Optional[Runner] = None, jobs: int = 1) -> SweepResult:
        """Execute the experiment with ``runner`` (or a fresh one)."""
        runner = runner if runner is not None else Runner(jobs=jobs)
        return runner.run(self.spec, self.config)


def run_sweep(
    spec: SweepSpec, config: Optional[RunConfig] = None, jobs: int = 1
) -> SweepResult:
    """Convenience wrapper: execute ``spec`` with a fresh :class:`Runner`."""
    return Runner(jobs=jobs).run(spec, config)
