"""Declarative experiments: sweep grids and the runner that executes them.

The paper's central experiment is a grid — six Perfect Club programs × memory
latencies {1, 10, 50, 100} × machines {REF, DVA} (§4–§7).  A
:class:`SweepSpec` declares such a grid, an :class:`Experiment` binds it to a
base :class:`~repro.core.config.RunConfig`, and a :class:`Runner` executes
every cell either serially or across a ``multiprocessing`` pool.

Sweeps are not limited to the latency axis: any
:class:`~repro.core.machine.MachineSpec` field can be an axis too, so
``SweepSpec(programs=..., axes={"lanes": (1, 2, 4), "ports": (1, 2),
"latency": (1, 50, 100)})`` crosses every machine parameter with every
latency for every architecture in the grid.  Each cell's machine-axis values
are pinned onto the architecture's spec before simulation, the resolved
spec's canonical string becomes the cell's architecture label (``"dva"``,
``"dva@lanes=2"``, ...), and the resolved spec itself travels with the
:class:`~repro.core.result.RunResult` as provenance.

Trace generation is the repeated cost across cells (every latency and
architecture of one program re-simulates the same trace), so the runner builds
each program's trace at most once per process: the serial path keeps a
per-runner :class:`TraceCache`, and pool workers keep a process-local cache
that is seeded copy-on-write with whatever the parent had already built when
the pool forked and fills lazily otherwise — never per cell.  Workers also
run with the cyclic garbage collector off (they only run simulation batches,
and the simulators allocate heavily), collecting once per batch instead of
continuously.

Across *processes and days*, the repeated cost is simulation itself, and a
:class:`~repro.store.ResultStore` eliminates it: give the runner a store and
it consults it before dispatching cells (hits come back as results marked
``cached=True``, their programs' traces are never even built), simulates only
the misses, and writes each miss back the moment it completes — in the
worker, not at the end of the sweep — so a killed sweep resumes with zero
re-simulated cells and an identical warm re-run is pure cache hits.  Cells
whose simulator is not spec-backed have no content-addressed identity and
transparently bypass the store.
"""

from __future__ import annotations

import gc
import multiprocessing
import multiprocessing.pool
import os
import sys
import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.common.errors import ConfigurationError, WorkloadError
from repro.core.config import RunConfig
from repro.core.machine import (
    LATENCY_AXIS,
    axis_combinations,
    canonical_axis_name,
    parse_axis_values,
)
from repro.core.registry import Simulator, resolve_architecture
from repro.core.result import RunResult
from repro.store import ResultStore, cell_key
from repro.trace.record import Trace
from repro.workloads.perfect_club import load_program

Overrides = Tuple[Tuple[str, object], ...]
Axes = Tuple[Tuple[str, Tuple[object, ...]], ...]

#: One dispatchable unit of work: (latency, resolved simulator, cache key or
#: ``None`` when the cell is uncacheable or no store is in play).
CellTask = Tuple[int, Simulator, Optional[str]]

#: Estimated trace lengths, memoized per (program, scale): the program models
#: are tiny dataclasses but there is no reason to rebuild one per cell.
_LENGTH_CACHE: Dict[Tuple[str, float], int] = {}


def estimate_cell_cost(program: str, scale: float, latency: int) -> int:
    """A unitless estimate of one cell's simulation cost, for scheduling.

    Cost is (latency + 1) x the program's estimated dynamic trace length: a
    latency-100 cell stalls the cycle-by-cycle engine through roughly two
    orders of magnitude more idle cycles than a latency-1 cell of the same
    trace, so latency dominates and trace length breaks ties across programs.
    Used to dispatch work longest-job-first — by the :class:`Runner` (so
    static batches stop starving on long-latency cells), the sweep service's
    batch scheduler, and the cluster manifest (costliest cells are claimed
    first).  Unknown programs cost 1: scheduling must never fail a cell that
    validation has already admitted.
    """
    key = (program.upper(), float(scale))
    length = _LENGTH_CACHE.get(key)
    if length is None:
        try:
            length = load_program(program).estimated_trace_length(scale)
        except WorkloadError:
            length = 1
        _LENGTH_CACHE[key] = length
    return (int(latency) + 1) * length


@dataclass(frozen=True)
class CellProgress:
    """One progress event of a running sweep: a cell's result became available.

    ``done``/``total`` count grid cells; ``cached``/``simulated`` split the
    finished cells by whether the result store answered them.  Serial sweeps
    report cell by cell; parallel sweeps report each worker batch as it
    returns.
    """

    done: int
    total: int
    cached: int
    simulated: int
    program: str
    latency: int
    architecture: str
    from_store: bool


#: A sweep progress callback, called once per finished cell.
ProgressCallback = Callable[[CellProgress], None]


class _ProgressTracker:
    """Counts finished cells and fans events out to the user's callback."""

    def __init__(self, callback: ProgressCallback, total: int) -> None:
        self.callback = callback
        self.total = total
        self.done = 0
        self.cached = 0
        self.simulated = 0

    def report(self, result: RunResult) -> None:
        self.done += 1
        if result.cached:
            self.cached += 1
        else:
            self.simulated += 1
        self.callback(
            CellProgress(
                done=self.done,
                total=self.total,
                cached=self.cached,
                simulated=self.simulated,
                program=result.program,
                latency=result.latency,
                architecture=result.architecture,
                from_store=result.cached,
            )
        )

    def report_all(self, results: Sequence[RunResult]) -> None:
        for result in results:
            self.report(result)


@dataclass(frozen=True)
class SweepCell:
    """One point of a sweep grid.

    ``architecture`` is the grid's (base) architecture name; ``overrides``
    holds the cell's machine-axis values as ``(axis, value)`` pairs.  The
    executed result's architecture *label* is the base name when there are no
    overrides, and the merged spec's canonical string otherwise.
    """

    program: str
    latency: int
    architecture: str
    overrides: Overrides = ()


def _split_spec_list(text: str) -> Tuple[str, ...]:
    """Split a comma-separated architecture list that may contain inline specs.

    A bare comma separates entries, but a token containing ``=`` (and no
    ``@`` of its own — that would start the next spec) is an assignment
    belonging to the previous entry's ``@`` clause, so
    ``"ref,dva@lanes=2,ports=2"`` is two entries and
    ``"dva@bypass=off,ref@lanes=2"`` is two as well.
    """
    entries: List[str] = []
    for token in (t.strip() for t in text.split(",")):
        if not token:
            continue
        if "=" in token and "@" not in token and entries and "@" in entries[-1]:
            entries[-1] += "," + token
        else:
            entries.append(token)
    return tuple(entries)


@dataclass(frozen=True)
class SweepSpec:
    """A (programs × latencies × machine axes × architectures) grid.

    Program names are normalized to the registry's upper-case form and
    architecture names to lower case, so specs parsed from a command line
    compare equal to specs built in code.  ``architectures`` entries may be
    registry names or inline machine-spec strings (``"dva@lanes=2"``).

    ``axes`` declares extra sweep dimensions over
    :class:`~repro.core.machine.MachineSpec` fields, as a mapping (or pair
    sequence) of axis name → values, e.g. ``{"lanes": (1, 2, 4), "ports":
    (1, 2)}``.  A ``"latency"`` axis is folded into :attr:`latencies` (it is
    the one :class:`~repro.core.config.RunConfig` axis), so it may be given
    either way but not both.
    """

    programs: Tuple[str, ...]
    latencies: Tuple[int, ...] = ()
    architectures: Tuple[str, ...] = ("ref", "dva")
    scale: float = 1.0
    axes: Axes = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "programs", tuple(str(p).upper() for p in self.programs)
        )
        object.__setattr__(
            self, "architectures", tuple(str(a).lower() for a in self.architectures)
        )
        latencies = tuple(int(lat) for lat in self.latencies)
        axes: List[Tuple[str, Tuple[object, ...]]] = []
        axis_items = (
            self.axes.items() if isinstance(self.axes, Mapping) else self.axes
        )
        for name, values in axis_items:
            if isinstance(values, (int, bool, str)):
                values = (values,)
            values = parse_axis_values(name, values)
            key = canonical_axis_name(name)
            if key == LATENCY_AXIS:
                if latencies:
                    raise ConfigurationError(
                        "latencies given twice (both the 'latencies' field "
                        "and a 'latency' axis)"
                    )
                latencies = tuple(int(v) for v in values)  # type: ignore[arg-type]
                continue
            if any(key == existing for existing, _ in axes):
                raise ConfigurationError(f"sweep axis {key!r} declared twice")
            axes.append((key, values))
        object.__setattr__(self, "latencies", latencies)
        object.__setattr__(self, "axes", tuple(axes))
        if not self.programs:
            raise ConfigurationError("a sweep needs at least one program")
        if not self.latencies:
            raise ConfigurationError("a sweep needs at least one memory latency")
        if not self.architectures:
            raise ConfigurationError("a sweep needs at least one architecture")
        if any(latency < 0 for latency in self.latencies):
            raise ConfigurationError("memory latencies cannot be negative")
        if self.scale <= 0:
            raise ConfigurationError("trace scale must be positive")

    @classmethod
    def from_strings(
        cls,
        programs: str,
        latencies: str,
        architectures: str = "ref,dva",
        scale: float = 1.0,
        axes: Sequence[str] = (),
    ) -> "SweepSpec":
        """Parse comma-separated lists, as given on the command line.

        Each ``axes`` entry reads ``name=v1,v2,...`` (e.g. ``"lanes=1,2,4"``);
        ``architectures`` may mix registry names and inline specs, with the
        assignments of an inline spec's ``@`` clause kept together.
        """
        try:
            parsed_latencies = tuple(
                int(s) for s in (s.strip() for s in latencies.split(",")) if s
            )
        except ValueError as exc:
            raise ConfigurationError(
                f"latencies must be integers, got {latencies!r}"
            ) from exc
        parsed_axes: List[Tuple[str, Tuple[object, ...]]] = []
        for entry in axes:
            name, eq, values = entry.partition("=")
            if not eq or not name.strip():
                raise ConfigurationError(
                    f"malformed sweep axis {entry!r} (expected name=v1,v2,...)"
                )
            parsed_axes.append(
                (name.strip(), tuple(v.strip() for v in values.split(",") if v.strip()))
            )
        return cls(
            programs=tuple(p for p in (s.strip() for s in programs.split(",")) if p),
            latencies=parsed_latencies,
            architectures=_split_spec_list(architectures),
            scale=scale,
            axes=tuple(parsed_axes),
        )

    def axis_combinations(self) -> List[Overrides]:
        """Every machine-axis combination, axis-major (``[()]`` with no axes)."""
        return axis_combinations(self.axes)  # type: ignore[arg-type]

    def cells(self) -> Iterator[SweepCell]:
        """Grid cells in deterministic program-major order."""
        combos = self.axis_combinations()
        for program in self.programs:
            for latency in self.latencies:
                for combo in combos:
                    for arch in self.architectures:
                        yield SweepCell(program, latency, arch, overrides=combo)

    def __len__(self) -> int:
        cells = len(self.programs) * len(self.latencies) * len(self.architectures)
        for _, values in self.axes:
            cells *= len(values)
        return cells


def resolve_sweep_machines(spec: SweepSpec) -> List[Simulator]:
    """Resolve every (axis-combo × architecture) of ``spec`` into simulators.

    Unknown architectures, non-spec-backed machines under an axis sweep, and
    distinct grid cells that collapse onto the same machine label all fail
    here, before any simulation: the :class:`Runner` calls this up front,
    and the sweep service calls it at request admission so a bad sweep is
    rejected with a clean error instead of dying mid-run.  The returned
    simulators are axis-combo-major, matching the pair order of
    :meth:`SweepSpec.cells`.
    """
    machines: List[Simulator] = []
    seen_labels: Dict[str, Tuple[str, Overrides]] = {}
    for combo in spec.axis_combinations():
        for arch in spec.architectures:
            simulator = resolve_architecture(arch, combo)
            previous = seen_labels.get(simulator.name)
            if previous is not None:
                raise ConfigurationError(
                    f"sweep cells {previous!r} and {(arch, combo)!r} both "
                    f"resolve to machine {simulator.name!r}; every cell "
                    "must be a distinct machine"
                )
            seen_labels[simulator.name] = (arch, combo)
            machines.append(simulator)
    return machines


class TraceCache:
    """Builds each (program, scale) trace at most once.

    Cached traces are columnar
    (:class:`~repro.trace.columns.ColumnarTrace`-backed), so what pool
    workers inherit copy-on-write at fork time is a handful of flat arrays
    plus the small static-instruction table — not millions of per-record
    Python objects whose refcount updates would unshare the pages — which
    keeps large ``--scale`` sweeps in flat memory across the whole pool.
    """

    def __init__(self) -> None:
        self._traces: Dict[Tuple[str, float], Trace] = {}

    def get(self, program: str, scale: float) -> Trace:
        """The (program, scale) trace, built on first request and then reused."""
        key = (program.upper(), scale)
        trace = self._traces.get(key)
        if trace is None:
            trace = load_program(program).build_trace(scale=scale)
            self._traces[key] = trace
        return trace

    def entries(self) -> Dict[Tuple[str, float], Trace]:
        """A snapshot of everything cached so far."""
        return dict(self._traces)

    def seed(self, entries: Dict[Tuple[str, float], Trace]) -> None:
        """Adopt already-built traces (used to hand a cache across processes)."""
        self._traces.update(entries)

    def clear(self) -> None:
        """Drop every cached trace (the next ``get`` rebuilds)."""
        self._traces.clear()

    def __len__(self) -> int:
        return len(self._traces)


def _restore_provenance(found: RunResult, simulator: Simulator) -> RunResult:
    """A store hit relabelled with the *requesting* cell's provenance.

    Cell keys are timing-core-invariant (see :mod:`repro.store.keys`), so a
    hit may have been written by a cell whose label or spec pins a different
    core (``dva`` vs ``dva@core=event``).  The numbers are identical by the
    equivalence contract; only the provenance strings need to match the cell
    that asked, or a core-axis sweep would see duplicate labels.
    """
    spec = getattr(simulator, "spec", None)
    expected_spec = spec.to_json() if spec is not None else None
    if found.architecture == simulator.name and found.spec == expected_spec:
        return found
    return replace(found, architecture=simulator.name, spec=expected_spec)


def _run_cells(
    trace: Trace,
    tasks: Sequence[CellTask],
    config: RunConfig,
    store: Optional[ResultStore],
    scale: float,
    on_result: Optional[Callable[[RunResult], None]] = None,
) -> List[RunResult]:
    """Sweep one trace across its cells, persisting each as it completes.

    Write-back happens per cell, not per batch, so a simulation process
    killed mid-batch leaves every already-finished cell in the store.
    ``on_result`` fires per cell, after the store write (serial progress
    reporting; pool workers run without it).
    """
    results: List[RunResult] = []
    for latency, simulator, key in tasks:
        result = simulator.simulate(trace, config.with_latency(latency))
        if store is not None and key is not None:
            result = replace(result, store_key=key)
            store.put(key, result, scale=scale)
        results.append(result)
        if on_result is not None:
            on_result(result)
    return results


# Per-process trace cache used by pool workers.  The parent seeds it right
# before the pool forks, so fork-started workers inherit the parent's traces
# copy-on-write; anything missing (spawn start method, or sweeps run after
# the pool was created) is built once per worker and cached for the pool's
# whole lifetime.
_WORKER_CACHE = TraceCache()


def _worker_init() -> None:
    """Initialize one pool worker: cyclic GC off.

    Pool workers only ever run simulation batches, so they trade the cyclic
    garbage collector's continuous scanning for one collection at the end of
    each batch — the simulators allocate heavily, and the worker's heap is
    bounded by the batch either way.  Traces are not built here: each worker
    builds (or, under fork, inherits) them on first use, so workers never
    pay for programs they are not assigned.
    """
    gc.disable()


def _run_program_cells(
    task: Tuple[str, float, Sequence[CellTask], RunConfig, Optional[str]]
) -> List[RunResult]:
    """Worker: sweep one batch of a program's cells over its cached trace.

    Module-level so ``multiprocessing`` can pickle it under both the fork and
    spawn start methods.  The task carries the resolved :class:`Simulator`
    objects rather than registry names, so runtime-registered extensions work
    in workers too — provided the simulator object itself pickles.  When the
    parent runs with a result store, the task carries the store *root* (a
    plain path) and the worker opens its own handle: constructing a
    :class:`~repro.store.ResultStore` touches no files, and each completed
    cell is written back immediately so killed sweeps keep their progress.
    """
    program, scale, cell_tasks, config, store_root = task
    store = ResultStore(store_root) if store_root is not None else None
    trace = _WORKER_CACHE.get(program, scale)
    try:
        return _run_cells(trace, cell_tasks, config, store, scale)
    finally:
        if not gc.isenabled():
            gc.collect()


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork on Linux (traces inherit copy-on-write), platform default elsewhere."""
    if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _available_parallelism() -> int:
    """CPUs this process may actually run on (affinity-aware where possible)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _balanced_chunks(costs: Sequence[int], chunks: int) -> List[List[int]]:
    """Deal task indices into at most ``chunks`` cost-balanced groups.

    ``costs`` is expected cost-descending (the runner sorts misses that way);
    dealing each task onto the currently lightest group is the classic
    longest-processing-time-first heuristic, so the groups finish at roughly
    the same time instead of one group hoarding every expensive cell.  Groups
    keep their tasks in the incoming order; empty groups are dropped.
    """
    chunks = max(1, min(chunks, len(costs)))
    groups: List[List[int]] = [[] for _ in range(chunks)]
    loads = [0] * chunks
    for index, cost in enumerate(costs):
        target = min(range(chunks), key=loads.__getitem__)
        groups[target].append(index)
        loads[target] += cost
    return [group for group in groups if group]


class Runner:
    """Executes sweep grids, serially or across a persistent process pool.

    ``jobs`` is a ceiling, not a demand: the runner never uses more workers
    than the machine can actually run in parallel, so asking for ``jobs=2``
    on a one-CPU host degrades gracefully to the in-process serial path
    instead of paying pool and scheduling overhead for no speedup (pass
    ``adaptive=False`` to force the pool regardless, e.g. to test it).

    The serial path runs in-process against a shared :class:`TraceCache`.
    The parallel path distributes batches of cells over a ``multiprocessing``
    pool that is created on the first parallel run and reused for the
    runner's lifetime, so repeated sweeps pay for worker startup and trace
    building once: fork-started workers inherit whatever traces the parent
    had already built, and build anything else lazily, once per worker.
    When the grid has fewer programs than workers, each program's cells are
    split into chunks so every worker gets work.  Both paths produce
    identical results in identical order — the simulators are deterministic
    and each cell is independent — which the test suite asserts.

    With a :class:`~repro.store.ResultStore` attached (``store=`` — an
    instance, or a path to open one at), the runner becomes *incremental*:
    store hits are loaded instead of simulated (their traces are not even
    built), misses are written back cell-by-cell as they complete, and the
    hit/miss split of the last run is reported on the returned
    :class:`SweepResult` via its per-result ``cached`` flags.

    The pool is released by :meth:`close`, by using the runner as a context
    manager, or at garbage collection.
    """

    def __init__(
        self,
        jobs: int = 1,
        adaptive: bool = True,
        store: Union[ResultStore, str, Path, None] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError("runner needs at least one job")
        self.jobs = jobs
        self.adaptive = adaptive
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.trace_cache = TraceCache()
        self._pool: Optional[multiprocessing.pool.Pool] = None
        # The sweep service calls run_batch from several executor threads at
        # once; pool creation and first-touch trace builds are the two
        # critical sections (the pool's own methods are thread-safe).
        self._pool_lock = threading.Lock()
        self._trace_lock = threading.Lock()

    @property
    def effective_jobs(self) -> int:
        """Workers the runner will actually use for a parallel sweep."""
        if self.adaptive:
            return min(self.jobs, _available_parallelism())
        return self.jobs

    def run(
        self,
        spec: SweepSpec,
        config: Optional[RunConfig] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> "SweepResult":
        """Execute every cell of ``spec`` and collect the results.

        With a store attached, only cells the store cannot answer are
        simulated; everything else is loaded and marked ``cached=True``.
        Results come back in grid order either way.

        ``progress`` receives one :class:`CellProgress` per finished cell
        (store hits first, then simulated cells — cell by cell when serial,
        batch by batch when parallel), so long sweeps are observable.
        """
        config = config if config is not None else RunConfig()
        tracker = (
            _ProgressTracker(progress, len(spec)) if progress is not None else None
        )
        for program in spec.programs:
            load_program(program)  # fail fast on unknown programs

        # Resolve names once, up front: unknown architectures, non-spec-backed
        # machines under an axis sweep, and cells that collapse onto the same
        # machine all fail before any simulation.  Workers receive the
        # resolved simulator objects themselves (plain frozen dataclasses, so
        # they pickle), not registry names.
        machines = resolve_sweep_machines(spec)
        pairs = [
            (latency, simulator)
            for latency in spec.latencies
            for simulator in machines
        ]

        # Consult the store: every grid slot is either a hit (a ready result)
        # or a miss (a CellTask still to simulate).  Misses are cost-ordered —
        # longest job first, so a latency-100 cell starts before the cheap
        # latency-1 cells of the same program instead of anchoring the tail of
        # a static batch — and each task's original pair index travels with it
        # (``positions``), so re-assembly below restores exact grid order no
        # matter how dispatch reordered the work.
        hits: Dict[Tuple[int, int], RunResult] = {}
        misses: List[List[CellTask]] = []
        miss_positions: List[List[int]] = []
        for program_index, program in enumerate(spec.programs):
            program_misses: List[CellTask] = []
            positions: List[int] = []
            for pair_index, (latency, simulator) in enumerate(pairs):
                key = None
                if self.store is not None:
                    key = cell_key(program, spec.scale, latency, simulator, config)
                    if key is not None:
                        found = self.store.get(key)
                        if found is not None:
                            found = _restore_provenance(found, simulator)
                            hits[(program_index, pair_index)] = found
                            if tracker is not None:
                                tracker.report(found)
                            continue
                program_misses.append((latency, simulator, key))
                positions.append(pair_index)
            if len(program_misses) > 1:
                order = sorted(
                    range(len(program_misses)),
                    key=lambda i: -estimate_cell_cost(
                        program, spec.scale, program_misses[i][0]
                    ),
                )
                program_misses = [program_misses[i] for i in order]
                positions = [positions[i] for i in order]
            misses.append(program_misses)
            miss_positions.append(positions)
        miss_programs = [
            (index, program)
            for index, program in enumerate(spec.programs)
            if misses[index]
        ]
        miss_count = sum(len(batch) for batch in misses)

        # A single-cell dispatch gains nothing from the pool, but only skip
        # it when adaptive: adaptive=False means "force the pool regardless"
        # (e.g. to prove a custom simulator pickles into workers).
        if miss_count == 0:
            per_program: List[List[RunResult]] = [[] for _ in spec.programs]
        elif self.effective_jobs == 1 or (self.adaptive and miss_count == 1):
            per_program = self._run_serial(spec, miss_programs, misses, config, tracker)
        else:
            per_program = self._run_parallel(spec, miss_programs, misses, config, tracker)

        for program_index in range(len(spec.programs)):
            for position, result in zip(
                miss_positions[program_index], per_program[program_index]
            ):
                hits[(program_index, position)] = result
        results = [
            hits[(program_index, pair_index)]
            for program_index in range(len(spec.programs))
            for pair_index in range(len(pairs))
        ]

        if self.store is not None and miss_count:
            # Workers (or the serial loop) wrote the objects; merge this
            # sweep's cells into the advisory index once, in the parent —
            # O(cells written), never a full store scan.
            self.store.update_index(
                [
                    (result.store_key, result)
                    for result in results
                    if result.store_key is not None and not result.cached
                ],
                scale=spec.scale,
            )
        return SweepResult(spec=spec, results=results)

    def _run_serial(
        self,
        spec: SweepSpec,
        miss_programs: Sequence[Tuple[int, str]],
        misses: Sequence[Sequence[CellTask]],
        config: RunConfig,
        tracker: Optional[_ProgressTracker] = None,
    ) -> List[List[RunResult]]:
        """Run every miss batch in-process.

        A runner asked for more than one job is in batch-throughput mode even
        when the machine caps it to in-process execution, so it simulates the
        way the pool workers do: cyclic GC paused during each batch and a
        collection between batches (the caller's GC state is restored after).
        Only programs that actually have misses get their traces built.
        """
        traces = {
            index: self.trace_cache.get(program, spec.scale)
            for index, program in miss_programs
        }
        throughput_mode = self.jobs > 1 and gc.isenabled()
        if throughput_mode:
            gc.disable()
        try:
            per_program: List[List[RunResult]] = [[] for _ in spec.programs]
            on_result = tracker.report if tracker is not None else None
            for index, _program in miss_programs:
                per_program[index] = _run_cells(
                    traces[index], misses[index], config, self.store, spec.scale,
                    on_result=on_result,
                )
                if throughput_mode:
                    gc.collect()
            return per_program
        finally:
            if throughput_mode:
                gc.enable()

    def _run_parallel(
        self,
        spec: SweepSpec,
        miss_programs: Sequence[Tuple[int, str]],
        misses: Sequence[Sequence[CellTask]],
        config: RunConfig,
        tracker: Optional[_ProgressTracker] = None,
    ) -> List[List[RunResult]]:
        """Distribute the miss batches over the worker pool, costliest first.

        Each program's (cost-ordered) tasks are dealt into per-worker chunks
        longest-job-first, so every chunk carries a balanced share of the
        expensive high-latency cells instead of one chunk hoarding them, and
        the chunks themselves are submitted costliest first so the pool
        starts the longest work immediately.  Results are mapped back to
        each program's miss order explicitly, so reordering dispatch can
        never reorder results.

        With a progress tracker attached the batches stream back through
        ``imap`` (still in submission order) and each batch's cells are
        reported the moment the batch lands.
        """
        store_root = str(self.store.root) if self.store is not None else None
        chunks_per_program = -(-self.effective_jobs // len(miss_programs))
        # One entry per dispatched chunk:
        # (program index, program, local task indices, chunk cost).
        entries: List[Tuple[int, str, List[int], int]] = []
        for index, program in miss_programs:
            costs = [
                estimate_cell_cost(program, spec.scale, latency)
                for latency, _simulator, _key in misses[index]
            ]
            for local in _balanced_chunks(costs, chunks_per_program):
                entries.append(
                    (index, program, local, sum(costs[i] for i in local))
                )
        entries.sort(key=lambda entry: -entry[3])
        tasks = [
            (
                program,
                spec.scale,
                tuple(misses[index][i] for i in local),
                config,
                store_root,
            )
            for index, program, local, _cost in entries
        ]
        pool = self._ensure_pool()
        if tracker is not None:
            flat = []
            for batch in pool.imap(_run_program_cells, tasks):
                tracker.report_all(batch)
                flat.append(batch)
        else:
            flat = pool.map(_run_program_cells, tasks)
        per_program: List[List[RunResult]] = [
            [None] * len(program_misses)  # type: ignore[list-item]
            for program_misses in misses
        ]
        for (index, _program, local, _cost), batch in zip(entries, flat):
            for position, result in zip(local, batch):
                per_program[index][position] = result
        return per_program

    def run_batch(
        self,
        program: str,
        scale: float,
        tasks: Sequence[CellTask],
        config: RunConfig,
    ) -> List[RunResult]:
        """Execute one batch of a single program's cells, off the grid path.

        This is the dispatch surface the sweep service's scheduler uses for
        cold cells: with more than one effective job the batch is applied to
        the persistent worker pool (safe from several threads at once — the
        pool serializes its task queue internally), otherwise it is
        simulated in the calling thread against the runner's trace cache.
        Store write-back matches the sweep path — per cell, in the process
        that simulated it; merging the advisory index is the caller's job,
        as it is for :meth:`run`.
        """
        tasks = tuple(tasks)
        if not tasks:
            return []
        if self.effective_jobs > 1:
            store_root = str(self.store.root) if self.store is not None else None
            pool = self._ensure_pool()
            return pool.apply(
                _run_program_cells, ((program, scale, tasks, config, store_root),)
            )
        with self._trace_lock:
            trace = self.trace_cache.get(program, scale)
        return _run_cells(trace, tasks, config, self.store, scale)

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        """The persistent worker pool, created on first use (thread-safe).

        Traces the parent has already built (e.g. by an earlier serial run of
        this runner) are exposed to fork-started workers copy-on-write; every
        other trace is built lazily, once per worker that needs it, so a cold
        multi-program sweep builds its traces in parallel across workers.
        """
        with self._pool_lock:
            if self._pool is None:
                _WORKER_CACHE.seed(self.trace_cache.entries())
                try:
                    self._pool = _pool_context().Pool(
                        processes=self.effective_jobs, initializer=_worker_init
                    )
                finally:
                    # The parent-side copies have served their purpose (the
                    # pool has forked); worker-side caches live in the
                    # workers.
                    _WORKER_CACHE.clear()
            return self._pool

    def close(self) -> None:
        """Release the worker pool (idempotent; the runner stays usable)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass


@dataclass
class SweepResult:
    """All cell results of one executed sweep, in grid order.

    Construction builds a ``cell_key → result`` index once, so :meth:`get`
    is O(1) per lookup instead of a linear scan, and a grid that produced
    the same (program, latency, architecture-label) twice — which would make
    lookups ambiguous — is rejected immediately.  The index assumes
    :attr:`results` is not mutated afterwards.
    """

    spec: SweepSpec
    results: List[RunResult]

    def __post_init__(self) -> None:
        index: Dict[tuple, RunResult] = {}
        for result in self.results:
            key = result.cell_key
            if key in index:
                raise ConfigurationError(
                    f"sweep contains duplicate cell {key!r}"
                )
            index[key] = result
        self._index = index

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def cached_count(self) -> int:
        """How many cells were answered by the result store (0 without one)."""
        return sum(1 for result in self.results if result.cached)

    @property
    def simulated_count(self) -> int:
        """How many cells were actually simulated in this run."""
        return len(self.results) - self.cached_count

    def get(self, program: str, latency: int, architecture_name: str) -> RunResult:
        """The result of one cell; raises when the cell was not in the grid.

        ``architecture_name`` is the cell's label: the architecture name for
        plain grid cells, or the canonical spec string (``"dva@lanes=2"``)
        for machine-axis cells.
        """
        key = (program.upper(), int(latency), architecture_name.lower())
        try:
            return self._index[key]
        except KeyError:
            raise ConfigurationError(f"sweep has no cell {key!r}") from None

    def architecture_labels(self) -> List[str]:
        """Distinct architecture labels present in the results, in grid order."""
        labels: List[str] = []
        for result in self.results:
            if result.architecture not in labels:
                labels.append(result.architecture)
        return labels

    def by_architecture(self, architecture_name: str) -> List[RunResult]:
        """All results produced by one architecture label, in grid order."""
        name = architecture_name.lower()
        return [result for result in self.results if result.architecture == name]

    def summaries(self) -> List[Dict[str, object]]:
        """Per-cell headline dictionaries, in grid order."""
        return [result.summary() for result in self.results]

    def to_json(self) -> Dict[str, object]:
        """A dictionary that survives ``json.dumps``/``json.loads`` unchanged."""
        return {
            "spec": {
                "programs": list(self.spec.programs),
                "latencies": list(self.spec.latencies),
                "architectures": list(self.spec.architectures),
                "scale": self.spec.scale,
                "axes": [[name, list(values)] for name, values in self.spec.axes],
            },
            "results": [result.to_json() for result in self.results],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "SweepResult":
        """Rebuild a :class:`SweepResult` from :meth:`to_json` output."""
        spec_data = data["spec"]
        assert isinstance(spec_data, Mapping)
        spec = SweepSpec(
            programs=tuple(spec_data["programs"]),  # type: ignore[arg-type]
            latencies=tuple(spec_data["latencies"]),  # type: ignore[arg-type]
            architectures=tuple(spec_data["architectures"]),  # type: ignore[arg-type]
            scale=float(spec_data["scale"]),  # type: ignore[arg-type]
            axes=tuple(
                (str(name), tuple(values))
                for name, values in spec_data.get("axes", [])  # type: ignore[union-attr]
            ),
        )
        results = [RunResult.from_json(item) for item in data["results"]]  # type: ignore[union-attr]
        return cls(spec=spec, results=results)


@dataclass
class Experiment:
    """A sweep grid bound to a base run configuration.

    The grid's per-cell latency overrides the base configuration's; everything
    else (chaining flags, queue sizes, cache geometry) applies to every cell.
    """

    spec: SweepSpec
    config: RunConfig = field(default_factory=RunConfig)
    name: str = ""

    def run(
        self,
        runner: Optional[Runner] = None,
        jobs: int = 1,
        store: Union[ResultStore, str, Path, None] = None,
    ) -> SweepResult:
        """Execute the experiment with ``runner`` (or a fresh one).

        ``jobs`` and ``store`` configure the fresh runner and are ignored
        when an explicit ``runner`` is given (it already carries both).
        """
        runner = runner if runner is not None else Runner(jobs=jobs, store=store)
        return runner.run(self.spec, self.config)


def run_sweep(
    spec: SweepSpec,
    config: Optional[RunConfig] = None,
    jobs: int = 1,
    store: Union[ResultStore, str, Path, None] = None,
    progress: Optional[ProgressCallback] = None,
) -> SweepResult:
    """Convenience wrapper: execute ``spec`` with a fresh :class:`Runner`.

    Pass ``store`` (a :class:`~repro.store.ResultStore` or a directory path)
    to make the sweep incremental: cells already in the store are loaded
    instead of simulated, and fresh cells are persisted for next time.
    ``progress`` receives one :class:`CellProgress` per finished cell.
    """
    return Runner(jobs=jobs, store=store).run(spec, config, progress=progress)
