"""The unified experiment API — the package's public surface.

Everything the paper's experiments need is reachable from here without
touching the per-architecture packages:

* :class:`Simulator` protocol and the architecture registry (``"ref"``,
  ``"dva"``, ``"dva-nobypass"``; extensible via :func:`register_architecture`)
  adapting both simulators behind one ``simulate(trace, config)`` call that
  returns a unified, JSON-serializable :class:`RunResult`.
* :class:`SweepSpec` / :class:`Experiment` declaring
  (programs × latencies × architectures) grids and the :class:`Runner`
  executing them serially or across a ``multiprocessing`` pool with
  per-program trace caching.
* :mod:`repro.core.figures` computing the paper's headline artifacts
  (Figure 5 speedup curves, Figure 6 queue-occupancy histograms, the
  Section 7 bypass-traffic table) as plain rows.
* :mod:`repro.core.cli` backing the ``python -m repro`` command line.
"""

from repro.core.config import RunConfig
from repro.core.experiment import (
    Experiment,
    Runner,
    SweepCell,
    SweepResult,
    SweepSpec,
    TraceCache,
    run_sweep,
)
from repro.core.registry import (
    DecoupledArchitecture,
    ReferenceArchitecture,
    Simulator,
    architecture,
    architecture_names,
    register_architecture,
    simulate,
    unregister_architecture,
)
from repro.core.result import RunResult
from repro.core import figures

__all__ = [
    "DecoupledArchitecture",
    "Experiment",
    "ReferenceArchitecture",
    "RunConfig",
    "RunResult",
    "Runner",
    "Simulator",
    "SweepCell",
    "SweepResult",
    "SweepSpec",
    "TraceCache",
    "architecture",
    "architecture_names",
    "figures",
    "register_architecture",
    "run_sweep",
    "simulate",
    "unregister_architecture",
]
