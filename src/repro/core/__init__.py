"""The unified experiment API — the package's public surface.

Everything the paper's experiments need is reachable from here without
touching the per-architecture packages:

* :class:`MachineSpec` — a declarative, validated machine description
  (family, lanes, ports, bypass, chaining, queue depths, scalar-cache
  geometry) that round-trips through strings (``dva@lanes=2,ports=2``),
  JSON and TOML.  Named presets (``"ref"``, ``"dva"``, ``"dva-nobypass"``,
  ``"ref-2lane"``, ``"dva-2port"``) are :class:`MachineSpec` instances.
* :class:`Simulator` protocol and the architecture registry resolving
  presets and inline specs into runnable simulators
  (:class:`SpecArchitecture`); extensible via :func:`register_architecture`
  with either a spec or a ready-made simulator.  Results come back as a
  unified, JSON-serializable :class:`RunResult` carrying the resolved spec
  as provenance.
* :class:`SweepSpec` / :class:`Experiment` declaring (programs × latencies ×
  machine axes × architectures) grids — any :class:`MachineSpec` field can
  be a sweep axis — and the :class:`Runner` executing them serially or
  across a ``multiprocessing`` pool with per-program trace caching.
* :class:`~repro.store.ResultStore` / :func:`~repro.store.cell_key`
  (re-exported from :mod:`repro.store`) — the persistent content-addressed
  result cache; hand a store to the :class:`Runner` (or ``run_sweep``'s
  ``store=`` argument) and sweeps become incremental and resumable.
* :mod:`repro.core.figures` computing the paper's headline artifacts
  (Figure 5 speedup curves, Figure 6 queue-occupancy histograms, the
  Section 7 bypass-traffic table) as plain rows.
* :mod:`repro.core.cli` backing the ``python -m repro`` command line.
"""

from repro.core.config import RunConfig
from repro.core.experiment import (
    CellProgress,
    Experiment,
    Runner,
    SweepCell,
    SweepResult,
    SweepSpec,
    TraceCache,
    resolve_sweep_machines,
    run_sweep,
)
from repro.core.machine import PRESETS, FieldInfo, MachineSpec, Preset
from repro.core.registry import (
    DecoupledArchitecture,
    ReferenceArchitecture,
    Simulator,
    SpecArchitecture,
    architecture,
    architecture_names,
    machine_spec,
    register_architecture,
    resolve_architecture,
    simulate,
    unregister_architecture,
)
from repro.core.result import RunResult
from repro.core import figures
from repro.store import ResultStore, cell_key

__all__ = [
    "CellProgress",
    "DecoupledArchitecture",
    "Experiment",
    "FieldInfo",
    "MachineSpec",
    "PRESETS",
    "Preset",
    "ReferenceArchitecture",
    "ResultStore",
    "RunConfig",
    "RunResult",
    "Runner",
    "cell_key",
    "Simulator",
    "SpecArchitecture",
    "SweepCell",
    "SweepResult",
    "SweepSpec",
    "TraceCache",
    "architecture",
    "architecture_names",
    "figures",
    "machine_spec",
    "register_architecture",
    "resolve_architecture",
    "resolve_sweep_machines",
    "run_sweep",
    "simulate",
    "unregister_architecture",
]
