"""The architecture-independent run result.

Both simulators produce rich, architecture-specific dataclasses
(:class:`~repro.refarch.result.ReferenceResult`,
:class:`~repro.dva.result.DecoupledResult`) full of interval recorders and
occupancy timelines.  The experiment layer needs none of that machinery — it
needs numbers that compare across architectures, travel through
``multiprocessing`` pickles and land in JSON files unchanged.
:class:`RunResult` is that common denominator: the shared headline metrics as
first-class fields plus the full ``to_json()`` payload of the underlying
result in :attr:`detail`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional

from repro.common.errors import SimulationError
from repro.dva.result import DecoupledResult
from repro.refarch.result import ReferenceResult


@dataclass(frozen=True)
class RunResult:
    """The unified, JSON-serializable summary of one simulation run.

    Attributes:
        architecture: registry name of the architecture that produced the run
            (``"ref"``, ``"dva"``, ``"dva-nobypass"``, or a registered
            extension).
        program: name of the traced program.
        latency: memory latency the run was simulated at.
        total_cycles: execution time in cycles.
        instructions: dynamic instructions simulated.
        memory_traffic_bytes: bytes moved over the memory port.
        scalar_cache_hits / scalar_cache_misses: scalar-cache behaviour.
        detail: the underlying result's full ``to_json()`` payload —
            architecture-specific keys such as ``avdq_histogram`` (DVA) or
            ``category_cycles`` (REF) live here.
        spec: provenance of the machine that produced the run — the resolved
            :class:`~repro.core.machine.MachineSpec` as its ``to_json()``
            payload — or ``None`` for simulators not described by a spec.
        cached: ``True`` when this result was loaded from a
            :class:`~repro.store.ResultStore` rather than simulated in this
            run.  Provenance only — excluded from equality, so a cached
            result compares equal to the fresh simulation it was saved from.
        store_key: the result's content-addressed cache key (set whenever a
            store was consulted, on hits and fresh writes alike), or
            ``None`` when the run did not involve a store or the cell is
            not cacheable.  Also excluded from equality.
    """

    architecture: str
    program: str
    latency: int
    total_cycles: int
    instructions: int
    memory_traffic_bytes: int = 0
    scalar_cache_hits: int = 0
    scalar_cache_misses: int = 0
    detail: Dict[str, object] = field(default_factory=dict)
    spec: Optional[Dict[str, object]] = None
    cached: bool = field(default=False, compare=False)
    store_key: Optional[str] = field(default=None, compare=False)

    # -- constructors ----------------------------------------------------------------

    @classmethod
    def from_reference(
        cls,
        result: ReferenceResult,
        architecture: str = "ref",
        spec: Optional[Dict[str, object]] = None,
    ) -> "RunResult":
        """Wrap a reference-architecture result."""
        return cls._from_detail(architecture, result.to_json(), spec=spec)

    @classmethod
    def from_decoupled(
        cls,
        result: DecoupledResult,
        architecture: str = "dva",
        spec: Optional[Dict[str, object]] = None,
    ) -> "RunResult":
        """Wrap a decoupled-architecture result."""
        return cls._from_detail(architecture, result.to_json(), spec=spec)

    @classmethod
    def _from_detail(
        cls,
        architecture: str,
        detail: Dict[str, object],
        spec: Optional[Dict[str, object]] = None,
    ) -> "RunResult":
        return cls(
            architecture=architecture,
            program=str(detail["program"]),
            latency=int(detail["latency"]),  # type: ignore[arg-type]
            total_cycles=int(detail["total_cycles"]),  # type: ignore[arg-type]
            instructions=int(detail["instructions"]),  # type: ignore[arg-type]
            memory_traffic_bytes=int(detail["memory_traffic_bytes"]),  # type: ignore[arg-type]
            scalar_cache_hits=int(detail["scalar_cache_hits"]),  # type: ignore[arg-type]
            scalar_cache_misses=int(detail["scalar_cache_misses"]),  # type: ignore[arg-type]
            detail=detail,
            spec=spec,
        )

    # -- derived quantities -----------------------------------------------------------

    @property
    def cell_key(self) -> tuple:
        """The (program, latency, architecture) coordinate of this run."""
        return (self.program, self.latency, self.architecture)

    def speedup_over(self, baseline: "RunResult") -> float:
        """Execution-time speedup of this run relative to ``baseline``."""
        if baseline.program != self.program or baseline.latency != self.latency:
            raise SimulationError(
                f"speedup compares runs of the same cell; got {baseline.cell_key} "
                f"vs {self.cell_key}"
            )
        if self.total_cycles == 0:
            return 0.0
        return baseline.total_cycles / self.total_cycles

    def summary(self) -> Dict[str, object]:
        """The flat headline dictionary, tagged with the architecture name."""
        return {"architecture": self.architecture, **self.detail}

    # -- serialization ----------------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        """A dictionary that survives ``json.dumps``/``json.loads`` unchanged.

        Store provenance (``cached``, ``store_key``) is emitted only when a
        store was actually involved, so payloads from store-less runs are
        unchanged from earlier releases.
        """
        payload: Dict[str, object] = {
            "architecture": self.architecture,
            "detail": dict(self.detail),
        }
        if self.spec is not None:
            payload["spec"] = dict(self.spec)
        if self.cached or self.store_key is not None:
            payload["provenance"] = {
                "cached": self.cached,
                "store_key": self.store_key,
            }
        return payload

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "RunResult":
        """Rebuild a :class:`RunResult` from :meth:`to_json` output."""
        detail = data["detail"]
        if not isinstance(detail, Mapping):
            raise SimulationError("RunResult JSON payload lacks a 'detail' mapping")
        spec = data.get("spec")
        result = cls._from_detail(
            str(data["architecture"]),
            dict(detail),
            spec=dict(spec) if isinstance(spec, Mapping) else None,
        )
        provenance = data.get("provenance")
        if isinstance(provenance, Mapping):
            key = provenance.get("store_key")
            result = replace(
                result,
                cached=bool(provenance.get("cached", False)),
                store_key=str(key) if key is not None else None,
            )
        return result
