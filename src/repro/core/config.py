"""Unified run configuration shared by every architecture adapter.

A :class:`RunConfig` carries everything one sweep cell needs besides the trace
itself: the memory latency under study plus the architecture-specific
parameter blocks.  Keeping both blocks in one frozen object lets a single
configuration drive heterogeneous architectures — each adapter picks the block
it understands and ignores the other — and makes sweep cells trivially
picklable for the multiprocessing runner.

A :class:`~repro.core.machine.MachineSpec` sits *above* this object: the
fields a spec pins (lanes, ports, bypass, queue depths, ...) override the
matching block values at simulation time, and everything the spec leaves
unpinned falls through to the blocks here.  The blocks are therefore the
sweep-wide baseline and the spec is the per-machine delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigurationError
from repro.dva.config import DecoupledConfig
from repro.engine import validate_core
from repro.refarch.config import ReferenceConfig


@dataclass(frozen=True)
class RunConfig:
    """Everything one simulation run needs besides the trace.

    Attributes:
        latency: main-memory latency in cycles (the paper sweeps 1–100).
        reference: parameters of the reference (non-decoupled) machine.
        decoupled: parameters of the decoupled machine.  Architectures that
            fix the bypass setting (``"dva"``, ``"dva-nobypass"``) override
            ``enable_bypass`` and keep everything else.
        core: timing-core control flow (``"tick"`` or ``"event"``).  The two
            cores are cycle-identical by contract (the differential fuzz
            suite pins it), so the selection changes how a run is computed,
            never what it measures — store keys deliberately ignore it.
    """

    latency: int = 1
    reference: ReferenceConfig = field(default_factory=ReferenceConfig)
    decoupled: DecoupledConfig = field(default_factory=DecoupledConfig)
    core: str = "tick"

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError("memory latency cannot be negative")
        validate_core(self.core)

    def with_latency(self, latency: int) -> "RunConfig":
        """A copy of this configuration at a different memory latency."""
        return replace(self, latency=latency)

    def with_core(self, core: str) -> "RunConfig":
        """A copy of this configuration on a different timing core."""
        return replace(self, core=core)
