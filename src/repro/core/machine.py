"""Declarative machine descriptions: architectures as data, not code.

The paper's results are ablations over machine parameters — memory latency,
store→load bypass on/off, datapath width — and every one of those knobs is a
*value*, so the machine itself should be one too.  A :class:`MachineSpec` is
exactly that: a validated, frozen description of one machine — the simulator
family (``ref`` or ``dva``), lanes, memory ports, the bypass and chaining
switches, the decoupled queue depths and the scalar-cache geometry — that
round-trips through strings, JSON and TOML unchanged and that the registry
(:mod:`repro.core.registry`) resolves into a runnable simulator over the
shared :mod:`repro.engine` pools.

Fields are tri-state: ``None`` means *inherit* the value from the
:class:`~repro.core.config.RunConfig` block at simulation time, anything else
*pins* the field so the spec always means the same machine no matter what
configuration it is run under (the registry names ``"dva"`` and
``"dva-nobypass"`` pin the bypass for exactly this reason).

Spec strings use the grammar::

    spec        := base [ "@" assignment { "," assignment } ]
    base        := preset name ("ref", "dva", "dva-nobypass", ...) — the
                   family names are themselves presets
    assignment  := key "=" value
    value       := integer | "on" | "off" | "true" | "false" | "yes" | "no"

so ``dva@lanes=2,ports=2,bypass=off`` is a two-lane, two-port decoupled
machine without the bypass.  :meth:`MachineSpec.to_string` emits the canonical
form (primary keys, non-default pins only), and
``MachineSpec.from_string(spec.to_string())`` is the identity for any spec
parsed from a string.  Note the string form cannot express *inherit*: a
hand-built spec that leaves a preset-pinned field unpinned (e.g.
``MachineSpec(family="dva")`` with no bypass pin) stringifies to the preset
name, whose pins differ.  JSON and TOML preserve the tri-state exactly; use
them when inherit semantics must survive serialization.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.common.errors import ConfigurationError
from repro.dva.config import DecoupledConfig, QueueSizes
from repro.memory.scalar_cache import ScalarCacheConfig
from repro.refarch.config import ReferenceConfig

FAMILIES = ("ref", "dva")

FieldValue = Union[int, bool, str]


@dataclass(frozen=True)
class FieldInfo:
    """Schema of one sweepable :class:`MachineSpec` field.

    Attributes:
        attribute: the :class:`MachineSpec` attribute the field stores to.
        key: the primary key used in spec strings (``ports`` rather than
            ``memory_ports``).
        aliases: accepted alternative keys (the attribute name always is).
        kind: ``"int"``, ``"bool"`` or ``"choice"``.
        families: the simulator families the field applies to.
        lo / hi: inclusive valid range for integer fields.
        power_of_two: integer values must additionally be powers of two.
        choices: the accepted words of a ``"choice"`` field.
        default: the canonical default — the value the field takes when a
            spec string does not mention it; also what :meth:`MachineSpec.to_string`
            elides.
        description: one line for ``repro list-archs --schema``.
    """

    attribute: str
    key: str
    aliases: Tuple[str, ...]
    kind: str
    families: Tuple[str, ...]
    default: FieldValue
    lo: int = 0
    hi: int = 0
    power_of_two: bool = False
    description: str = ""
    choices: Tuple[str, ...] = ()

    @property
    def range_text(self) -> str:
        if self.kind == "bool":
            return "on|off"
        if self.kind == "choice":
            return "|".join(self.choices)
        text = f"{self.lo}..{self.hi}"
        if self.power_of_two:
            text += " (power of two)"
        return text


FIELDS: Tuple[FieldInfo, ...] = (
    FieldInfo(
        "lanes", "lanes", (), "int", ("ref", "dva"), 1, lo=1, hi=64,
        description="parallel lanes per vector functional unit",
    ),
    FieldInfo(
        "memory_ports", "ports", (), "int", ("ref", "dva"), 1,
        lo=1, hi=16,
        description="memory-port units sharing the address bus",
    ),
    FieldInfo(
        "bypass", "bypass", (), "bool", ("dva",), True,
        description="service loads from the VADQ→AVDQ store→load bypass (paper §7)",
    ),
    FieldInfo(
        "chaining", "chaining", ("load_chaining",), "bool", ("ref",), False,
        description="allow consumers to chain off vector loads (off on the C34)",
    ),
    FieldInfo(
        "instruction_queue", "iq", (), "int", ("dva",), 16,
        lo=1, hi=4096,
        description="slots in each of APIQ, VPIQ and SPIQ",
    ),
    FieldInfo(
        "vector_load_data", "avdq", (), "int", ("dva",), 256,
        lo=1, hi=65536,
        description="AVDQ slots (whole vector registers of load data)",
    ),
    FieldInfo(
        "vector_store_data", "vadq", (), "int", ("dva",), 16,
        lo=1, hi=65536,
        description="VADQ slots (vector store data; the VSAQ follows it)",
    ),
    FieldInfo(
        "scalar_store_address", "ssaq", (), "int", ("dva",), 16,
        lo=1, hi=65536,
        description="SSAQ slots (scalar store addresses)",
    ),
    FieldInfo(
        "scalar_data", "sdq", (), "int", ("dva",), 256,
        lo=1, hi=65536,
        description="scalar data queue slots between AP and SP",
    ),
    FieldInfo(
        "cache_line_bytes", "cache_line", ("line_bytes",),
        "int", ("ref", "dva"), 32, lo=4, hi=4096, power_of_two=True,
        description="scalar-cache line size in bytes",
    ),
    FieldInfo(
        "cache_lines", "cache_lines", ("lines",), "int", ("ref", "dva"), 1024,
        lo=1, hi=1048576,
        description="scalar-cache lines (capacity = line bytes × lines)",
    ),
    FieldInfo(
        "core", "core", (), "choice", ("ref", "dva"), "tick",
        choices=("tick", "event"),
        description="timing-core control flow (cycle-identical; tick is the oracle)",
    ),
)

_BY_KEY: Dict[str, FieldInfo] = {}
for _info in FIELDS:
    for _key in (_info.key, _info.attribute, *_info.aliases):
        _BY_KEY.setdefault(_key, _info)

_TRUE_WORDS = frozenset({"on", "true", "yes", "1"})
_FALSE_WORDS = frozenset({"off", "false", "no", "0"})


def field_infos() -> Tuple[FieldInfo, ...]:
    """The sweepable fields, in canonical (spec-string) order."""
    return FIELDS


def lookup_field(name: str) -> FieldInfo:
    """Resolve a field by primary key, attribute name or alias."""
    try:
        return _BY_KEY[name.strip().lower()]
    except KeyError:
        known = ", ".join(info.key for info in FIELDS)
        raise ConfigurationError(
            f"unknown machine field {name!r} (known: {known})"
        ) from None


def parse_field_value(info: FieldInfo, text: str) -> FieldValue:
    """Parse one spec-string value according to the field's kind."""
    word = text.strip().lower()
    if info.kind == "bool":
        if word in _TRUE_WORDS:
            return True
        if word in _FALSE_WORDS:
            return False
        raise ConfigurationError(
            f"field {info.key!r} takes on/off, got {text!r}"
        )
    if info.kind == "choice":
        if word in info.choices:
            return word
        raise ConfigurationError(
            f"field {info.key!r} takes {info.range_text}, got {text!r}"
        )
    try:
        return int(word)
    except ValueError:
        raise ConfigurationError(
            f"field {info.key!r} takes an integer, got {text!r}"
        ) from None


def _format_value(info: FieldInfo, value: FieldValue) -> str:
    if info.kind == "bool":
        return "on" if value else "off"
    return str(value)  # ints and choice words both print as-is


def format_override(key: str, value: FieldValue) -> str:
    """One ``key=value`` spec-string assignment, canonical key and formatting."""
    info = lookup_field(key)
    return f"{info.key}={_format_value(info, value)}"


def parse_assignments(assignments: str, context: str) -> Dict[str, FieldValue]:
    """Parse a spec string's ``key=value,...`` clause into attribute pins.

    ``context`` is the full spec string, used only for error messages.
    """
    if not assignments.strip():
        raise ConfigurationError(f"machine spec {context!r} has no assignments")
    overrides: Dict[str, FieldValue] = {}
    for part in assignments.split(","):
        key, eq, value = part.partition("=")
        if not eq or not key.strip() or not value.strip():
            raise ConfigurationError(
                f"malformed assignment {part.strip()!r} in machine spec "
                f"{context!r} (expected key=value)"
            )
        info = lookup_field(key)
        if info.attribute in overrides:
            raise ConfigurationError(
                f"field {info.key!r} assigned twice in machine spec {context!r}"
            )
        overrides[info.attribute] = parse_field_value(info, value)
    return overrides


@dataclass(frozen=True)
class MachineSpec:
    """One machine, described as data.

    ``family`` selects the simulator (``"ref"`` — the in-order reference
    vector machine — or ``"dva"`` — the decoupled machine).  Every other
    field is optional: ``None`` inherits the corresponding
    :class:`~repro.core.config.RunConfig` block value at simulation time,
    anything else pins the field regardless of the run configuration.
    Fields that only exist on one family (the bypass and the queue depths on
    ``dva``, load chaining on ``ref``) are rejected on the other.
    """

    family: str
    lanes: Optional[int] = None
    memory_ports: Optional[int] = None
    bypass: Optional[bool] = None
    chaining: Optional[bool] = None
    instruction_queue: Optional[int] = None
    vector_load_data: Optional[int] = None
    vector_store_data: Optional[int] = None
    scalar_store_address: Optional[int] = None
    scalar_data: Optional[int] = None
    cache_line_bytes: Optional[int] = None
    cache_lines: Optional[int] = None
    core: Optional[str] = None

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ConfigurationError(
                f"unknown machine family {self.family!r} "
                f"(known: {', '.join(FAMILIES)})"
            )
        for info in FIELDS:
            value = getattr(self, info.attribute)
            if value is None:
                continue
            if self.family not in info.families:
                raise ConfigurationError(
                    f"field {info.key!r} is not valid for family "
                    f"{self.family!r} (applies to: {', '.join(info.families)})"
                )
            if info.kind == "bool":
                if not isinstance(value, bool):
                    raise ConfigurationError(
                        f"field {info.key!r} takes on/off, got {value!r}"
                    )
                continue
            if info.kind == "choice":
                if value not in info.choices:
                    raise ConfigurationError(
                        f"field {info.key!r} takes {info.range_text}, got {value!r}"
                    )
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"field {info.key!r} takes an integer, got {value!r}"
                )
            if not info.lo <= value <= info.hi:
                raise ConfigurationError(
                    f"field {info.key!r} must be in {info.range_text}, got {value}"
                )
            if info.power_of_two and value & (value - 1):
                raise ConfigurationError(
                    f"field {info.key!r} must be a power of two, got {value}"
                )

    # -- introspection ---------------------------------------------------------------

    def pins(self) -> Dict[str, FieldValue]:
        """The explicitly pinned fields, by attribute name, in canonical order."""
        return {
            info.attribute: getattr(self, info.attribute)
            for info in FIELDS
            if getattr(self, info.attribute) is not None
        }

    def effective(self) -> Dict[str, FieldValue]:
        """Every applicable field with its pinned or canonical-default value."""
        return {
            info.attribute: (
                getattr(self, info.attribute)
                if getattr(self, info.attribute) is not None
                else info.default
            )
            for info in FIELDS
            if self.family in info.families
        }

    def with_pins(self, **overrides: FieldValue) -> "MachineSpec":
        """A copy with extra fields pinned (keys may be primary, alias or attribute)."""
        resolved = {
            lookup_field(name).attribute: value for name, value in overrides.items()
        }
        return replace(self, **resolved)

    # -- string form -----------------------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "MachineSpec":
        """Parse ``base[@key=value,...]``; the base may be any preset name.

        The registry's :func:`~repro.core.registry.architecture` resolves the
        base against *registered* names too (so ``"my-custom@lanes=2"`` works
        once ``"my-custom"`` is registered); this classmethod alone only
        knows the built-in presets.
        """
        base, _, assignments = text.strip().partition("@")
        base = base.strip().lower()
        if not base:
            raise ConfigurationError(f"machine spec {text!r} has no base machine")
        if base in PRESETS:
            spec = PRESETS[base].spec
        else:
            known = ", ".join(PRESETS)
            raise ConfigurationError(
                f"unknown machine preset {base!r} (known: {known})"
            )
        if "@" not in text:
            return spec
        return spec.with_pins(**parse_assignments(assignments, text))

    def to_string(self) -> str:
        """The canonical spec string (primary keys, non-default pins only).

        Inverse of :meth:`from_string` for any spec parsed from a string.
        Lossy for hand-built specs that leave a field *unpinned* where the
        family preset pins it: the string names the preset, whose pins
        differ from inherit semantics — serialize such specs with
        :meth:`to_json`/:meth:`to_toml` instead.
        """
        parts = [
            f"{info.key}={_format_value(info, getattr(self, info.attribute))}"
            for info in FIELDS
            if getattr(self, info.attribute) is not None
            and getattr(self, info.attribute) != info.default
        ]
        if not parts:
            return self.family
        return f"{self.family}@{','.join(parts)}"

    # -- JSON / TOML form ------------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        """A dictionary that survives ``json.dumps``/``json.loads`` unchanged."""
        payload: Dict[str, object] = {"family": self.family}
        payload.update(self.pins())
        return payload

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "MachineSpec":
        """Rebuild a spec from :meth:`to_json` output (unknown keys rejected)."""
        if "family" not in data:
            raise ConfigurationError("machine spec JSON needs a 'family' key")
        pins: Dict[str, FieldValue] = {}
        for name, value in data.items():
            if name == "family":
                continue
            info = lookup_field(str(name))
            pins[info.attribute] = value  # type: ignore[assignment]
        return cls(family=str(data["family"]), **pins)

    def to_toml(self) -> str:
        """The spec as a flat TOML document."""
        lines = [f'family = "{self.family}"']
        for info in FIELDS:
            value = getattr(self, info.attribute)
            if value is None:
                continue
            if info.kind == "bool":
                lines.append(f"{info.attribute} = {'true' if value else 'false'}")
            elif isinstance(value, str):
                lines.append(f'{info.attribute} = "{value}"')
            else:
                lines.append(f"{info.attribute} = {value}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_toml(cls, text: str) -> "MachineSpec":
        """Parse :meth:`to_toml` output (any flat TOML table works)."""
        return cls.from_json(_parse_flat_toml(text))

    # -- resolution against the RunConfig blocks --------------------------------------

    def apply_reference(self, config: ReferenceConfig) -> ReferenceConfig:
        """``config`` with this spec's pins applied (family must be ``ref``)."""
        self._require_family("ref")
        updates: Dict[str, object] = {}
        if self.lanes is not None:
            updates["lanes"] = self.lanes
        if self.memory_ports is not None:
            updates["memory_ports"] = self.memory_ports
        if self.chaining is not None:
            updates["allow_load_chaining"] = self.chaining
        cache = self._apply_cache(config.scalar_cache)
        if cache is not None:
            updates["scalar_cache"] = cache
        return replace(config, **updates) if updates else config

    def apply_decoupled(self, config: DecoupledConfig) -> DecoupledConfig:
        """``config`` with this spec's pins applied (family must be ``dva``)."""
        self._require_family("dva")
        updates: Dict[str, object] = {}
        if self.lanes is not None:
            updates["lanes"] = self.lanes
        if self.memory_ports is not None:
            updates["memory_ports"] = self.memory_ports
        if self.bypass is not None:
            updates["enable_bypass"] = self.bypass
        queues = self._apply_queues(config.queues)
        if queues is not None:
            updates["queues"] = queues
        cache = self._apply_cache(config.scalar_cache)
        if cache is not None:
            updates["scalar_cache"] = cache
        return replace(config, **updates) if updates else config

    def _require_family(self, family: str) -> None:
        if self.family != family:
            raise ConfigurationError(
                f"spec {self.to_string()!r} is a {self.family!r}-family machine, "
                f"not {family!r}"
            )

    def _apply_cache(self, cache: ScalarCacheConfig) -> Optional[ScalarCacheConfig]:
        updates: Dict[str, int] = {}
        if self.cache_line_bytes is not None:
            updates["line_bytes"] = self.cache_line_bytes
        if self.cache_lines is not None:
            updates["lines"] = self.cache_lines
        return replace(cache, **updates) if updates else None

    def _apply_queues(self, queues: QueueSizes) -> Optional[QueueSizes]:
        updates: Dict[str, int] = {}
        if self.instruction_queue is not None:
            updates["instruction_queue"] = self.instruction_queue
        if self.vector_load_data is not None:
            updates["vector_load_data"] = self.vector_load_data
        if self.vector_store_data is not None:
            updates["vector_store_data"] = self.vector_store_data
        if self.scalar_store_address is not None:
            updates["scalar_store_address"] = self.scalar_store_address
        if self.scalar_data is not None:
            updates["scalar_data"] = self.scalar_data
        return replace(queues, **updates) if updates else None


def _parse_flat_toml(text: str) -> Dict[str, object]:
    """Parse a flat TOML table: stdlib ``tomllib`` when present, else minimal.

    The fallback understands exactly what :meth:`MachineSpec.to_toml` emits
    (bare ``key = value`` lines with string, boolean and integer values), so
    specs round-trip on Python 3.10 where ``tomllib`` does not exist.
    """
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python 3.10
        tomllib = None
    if tomllib is not None:
        try:
            return dict(tomllib.loads(text))
        except tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(f"invalid machine spec TOML: {exc}") from exc
    data: Dict[str, object] = {}
    for line in text.splitlines():  # pragma: no cover - Python 3.10
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        key, eq, value = line.partition("=")
        if not eq:
            raise ConfigurationError(f"invalid machine spec TOML line {line!r}")
        key, value = key.strip(), value.strip()
        if value.startswith('"') and value.endswith('"') and len(value) >= 2:
            data[key] = value[1:-1]
        elif value in ("true", "false"):
            data[key] = value == "true"
        else:
            try:
                data[key] = int(value)
            except ValueError:
                raise ConfigurationError(
                    f"invalid machine spec TOML value {value!r}"
                ) from None
    return data


# -- presets ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Preset:
    """A named, documented :class:`MachineSpec` — the registry's built-ins."""

    name: str
    description: str
    spec: MachineSpec


# The paper's machines and the engine-derived variants.  The family names
# themselves are presets, so a spec-string base is always a preset name.
# Each preset pins its datapath (and, on dva, the bypass) so the name always
# means the same machine no matter the run configuration; everything it
# leaves unpinned inherits from the RunConfig block.
PRESETS: Dict[str, Preset] = {
    preset.name: preset
    for preset in (
        Preset(
            "ref",
            "reference in-order vector machine (paper §2.1)",
            MachineSpec(family="ref", lanes=1, memory_ports=1),
        ),
        Preset(
            "dva",
            "decoupled vector machine with store→load bypass (paper §7)",
            MachineSpec(family="dva", bypass=True, lanes=1, memory_ports=1),
        ),
        Preset(
            "dva-nobypass",
            "decoupled vector machine without the bypass (paper §5)",
            MachineSpec(family="dva", bypass=False, lanes=1, memory_ports=1),
        ),
        Preset(
            "ref-2lane",
            "reference machine with a two-lane vector unit",
            MachineSpec(family="ref", lanes=2, memory_ports=1),
        ),
        Preset(
            "dva-2port",
            "decoupled machine (bypass on) with two memory ports",
            MachineSpec(family="dva", bypass=True, lanes=1, memory_ports=2),
        ),
    )
}


# -- sweep axes ------------------------------------------------------------------------

# The one RunConfig axis: per-cell memory latency.  Everything else a sweep
# can vary is a MachineSpec field.
LATENCY_AXIS = "latency"


def canonical_axis_name(name: str) -> str:
    """Normalize a sweep-axis name: ``latency`` or any machine-field key."""
    key = name.strip().lower()
    if key == LATENCY_AXIS:
        return LATENCY_AXIS
    return lookup_field(key).key


def parse_axis_values(name: str, values: Iterable[object]) -> Tuple[FieldValue, ...]:
    """Validate and normalize one axis' values (strings are parsed)."""
    key = canonical_axis_name(name)
    parsed: List[FieldValue] = []
    if key == LATENCY_AXIS:
        for value in values:
            try:
                latency = int(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"latencies must be integers, got {value!r}"
                ) from None
            if latency < 0:
                raise ConfigurationError("memory latencies cannot be negative")
            parsed.append(latency)
    else:
        info = lookup_field(key)
        for value in values:
            parsed.append(
                parse_field_value(info, value)
                if isinstance(value, str)
                else value  # type: ignore[arg-type]
            )
    if not parsed:
        raise ConfigurationError(f"sweep axis {key!r} needs at least one value")
    if len(set(parsed)) != len(parsed):
        raise ConfigurationError(f"sweep axis {key!r} repeats a value")
    return tuple(parsed)


def axis_combinations(
    axes: Iterable[Tuple[str, Tuple[FieldValue, ...]]],
) -> List[Tuple[Tuple[str, FieldValue], ...]]:
    """Every (name, value) combination of the axes, axis-major, in order.

    With no axes this is ``[()]`` — one empty combination — so callers can
    iterate unconditionally.
    """
    axes = list(axes)
    if not axes:
        return [()]
    names = [name for name, _ in axes]
    products = itertools.product(*(values for _, values in axes))
    return [tuple(zip(names, combo)) for combo in products]


__all__ = [
    "FAMILIES",
    "FIELDS",
    "FieldInfo",
    "LATENCY_AXIS",
    "MachineSpec",
    "PRESETS",
    "Preset",
    "axis_combinations",
    "canonical_axis_name",
    "field_infos",
    "lookup_field",
    "parse_axis_values",
    "parse_field_value",
]
