"""Differential fuzzing of the tick and event timing cores.

The two timing cores (:mod:`repro.engine.events` explains the inversion)
promise *cycle identity*: for any trace and any machine, the event-driven
skip-ahead core must produce exactly the result the one-pass tick oracle
produces — same total cycles, same per-category stall counters, same final
scoreboard — or raise exactly the same error.  This module generates random
(machine, program, latency) cases and checks that promise, one case at a
time.

Everything here is deterministic in the seed: :func:`case_seed` derives one
case seed per index from a master seed, :func:`generate_case` expands a case
seed into a fully-described :class:`FuzzCase`, and :func:`run_case` runs the
case on both cores and reports the first divergence (or ``None``).  The CI
batch in ``tests/engine/test_event_equivalence.py`` and the standalone
driver ``scripts/fuzz_cores.py`` both build on these three functions, so a
CI failure always comes with a one-line repro command.

The harness deliberately instantiates the simulation *states* directly
(rather than going through :class:`~repro.core.registry.SpecArchitecture`)
so it can compare the final scoreboard — internal machine state the public
result does not carry.  Results are still compared via ``to_json()``, the
exact payload the store persists.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.memory.model import MemoryModel
from repro.workloads import synthetic
from repro.workloads.kernel import KernelSchedule
from repro.workloads.program_model import ProgramModel, ProgramTargets

#: Synthetic kernel factories the fuzzer draws programs from.
KERNELS: Tuple[str, ...] = (
    "daxpy",
    "stream_triad",
    "stencil3",
    "compute_bound",
    "reduction",
    "spill_heavy",
    "gather_scatter",
    "strided",
)

#: Memory latencies exercised — the paper's extremes plus two interior points.
LATENCIES: Tuple[int, ...] = (1, 7, 50, 100)

#: Default master seed (today's date when the suite was written); the CI batch
#: uses it so failures are reproducible across machines.
DEFAULT_SEED = 20260808


def case_seed(master: int, index: int) -> int:
    """The per-case seed derived from a master seed and a case index.

    A multiplicative hash keeps neighbouring indices uncorrelated while
    staying trivially recomputable from the repro command's two integers.
    """
    return (master * 1_000_003 + index) & 0xFFFFFFFF


@dataclass(frozen=True)
class FuzzCase:
    """One fully-described differential test case.

    Every field that shapes timing is explicit, so ``describe()`` is a
    complete record of what diverged.  Reference-family cases ignore the
    queue-depth fields; decoupled-family cases ignore ``chaining``.
    """

    seed: int
    family: str
    kernel: str
    elements: int
    max_vector_length: int
    invocations: int
    latency: int
    lanes: int
    ports: int
    chaining: bool = False
    bypass: bool = False
    instruction_queue: int = 16
    vector_load_data: int = 256
    vector_store_data: int = 16
    scalar_store_address: int = 16
    scalar_data: int = 256

    def describe(self) -> str:
        common = (
            f"seed={self.seed} family={self.family} kernel={self.kernel} "
            f"elements={self.elements} mvl={self.max_vector_length} "
            f"invocations={self.invocations} latency={self.latency} "
            f"lanes={self.lanes} ports={self.ports}"
        )
        if self.family == "ref":
            return f"{common} chaining={'on' if self.chaining else 'off'}"
        return (
            f"{common} bypass={'on' if self.bypass else 'off'} "
            f"iq={self.instruction_queue} avdq={self.vector_load_data} "
            f"vadq={self.vector_store_data} ssaq={self.scalar_store_address} "
            f"sdq={self.scalar_data}"
        )

    def build_trace(self):
        """The dynamic instruction trace this case simulates."""
        factory = getattr(synthetic, self.kernel)
        kernel = factory(
            self.elements,
            max_vector_length=self.max_vector_length,
            invocations=self.invocations,
        )
        model = ProgramModel(
            name=f"fuzz-{self.seed}",
            description="differential fuzz case",
            schedules=(KernelSchedule(kernel, 1),),
            targets=ProgramTargets(),
            prologue_scalar_instructions=8,
        )
        return model.build_trace(scale=1.0)

    def build_config(self):
        """The family configuration block this case pins."""
        if self.family == "ref":
            from repro.refarch.config import ReferenceConfig

            return ReferenceConfig(
                allow_load_chaining=self.chaining,
                lanes=self.lanes,
                memory_ports=self.ports,
            )
        from repro.dva.config import DecoupledConfig, QueueSizes

        return DecoupledConfig(
            queues=QueueSizes(
                instruction_queue=self.instruction_queue,
                vector_load_data=self.vector_load_data,
                vector_store_data=self.vector_store_data,
                scalar_store_address=self.scalar_store_address,
                scalar_data=self.scalar_data,
            ),
            enable_bypass=self.bypass,
            lanes=self.lanes,
            memory_ports=self.ports,
        )

    def _state_class(self, core: str):
        if self.family == "ref":
            from repro.refarch.event_core import _EventReferenceState
            from repro.refarch.simulator import _SimulationState

            return _EventReferenceState if core == "event" else _SimulationState
        from repro.dva.event_core import _EventDecoupledState
        from repro.dva.simulator import _DecoupledState

        return _EventDecoupledState if core == "event" else _DecoupledState

    def simulate(self, core: str, trace=None):
        """Run this case on one core.

        Returns ``(result_json, scoreboard_snapshot, error_message)``; on a
        :class:`SimulationError` the first two are ``None`` and the message
        carries the exact error text (the cores must raise identically).
        """
        if trace is None:
            trace = self.build_trace()
        state_class = self._state_class(core)
        state = state_class(MemoryModel(latency=self.latency), self.build_config())
        try:
            state.consume(trace)
            result = state.finish(trace)
        except SimulationError as exc:
            return None, None, str(exc)
        return result.to_json(), _scoreboard_snapshot(state), None


def _scoreboard_snapshot(state) -> List[Tuple[str, int, Optional[int], str]]:
    """The final scoreboard as a sorted, comparable list of tuples."""
    entries = state.core.scoreboard._entries
    return sorted(
        (repr(register), entry.ready, entry.chain_start, repr(entry.owner))
        for register, entry in entries.items()
    )


def generate_case(seed: int) -> FuzzCase:
    """Expand one case seed into a fully-described :class:`FuzzCase`."""
    rng = random.Random(seed)
    family = rng.choice(("ref", "dva"))
    kernel = rng.choice(KERNELS)
    elements = rng.choice((8, 17, 64, 200))
    max_vector_length = rng.choice((16, 64))
    invocations = rng.choice((1, 2, 3))
    latency = rng.choice(LATENCIES)
    lanes = rng.choice((1, 2, 3, 4))
    ports = rng.choice((1, 2, 3))
    if family == "ref":
        return FuzzCase(
            seed=seed,
            family=family,
            kernel=kernel,
            elements=elements,
            max_vector_length=max_vector_length,
            invocations=invocations,
            latency=latency,
            lanes=lanes,
            ports=ports,
            chaining=rng.choice((False, True)),
        )
    return FuzzCase(
        seed=seed,
        family=family,
        kernel=kernel,
        elements=elements,
        max_vector_length=max_vector_length,
        invocations=invocations,
        latency=latency,
        lanes=lanes,
        ports=ports,
        bypass=rng.choice((False, True)),
        instruction_queue=rng.choice((1, 2, 4, 16)),
        vector_load_data=rng.choice((1, 2, 4, 256)),
        vector_store_data=rng.choice((1, 2, 4, 16)),
        scalar_store_address=rng.choice((1, 2, 16)),
        scalar_data=rng.choice((2, 4, 256)),
    )


def run_case(case: FuzzCase) -> Optional[str]:
    """Run one case on both cores; ``None`` on identity, else a diagnosis.

    The trace is built once and shared — trace generation is deterministic
    and read-only, but sharing it also rules out the generator as a source
    of divergence.
    """
    trace = case.build_trace()
    tick_json, tick_board, tick_error = case.simulate("tick", trace)
    event_json, event_board, event_error = case.simulate("event", trace)
    if tick_error is not None or event_error is not None:
        if tick_error == event_error:
            return None
        return (
            f"error divergence: tick={tick_error!r} event={event_error!r}\n"
            f"  case: {case.describe()}"
        )
    if tick_json != event_json:
        diffs = sorted(
            key
            for key in set(tick_json) | set(event_json)
            if tick_json.get(key) != event_json.get(key)
        )
        return (
            f"result divergence in fields {diffs}: "
            f"tick={[tick_json.get(k) for k in diffs]} "
            f"event={[event_json.get(k) for k in diffs]}\n"
            f"  case: {case.describe()}"
        )
    if tick_board != event_board:
        pairs = [
            (t, e) for t, e in zip(tick_board, event_board) if t != e
        ] or [(tick_board[-1], event_board[-1])]
        return (
            f"scoreboard divergence: tick={pairs[0][0]} event={pairs[0][1]}\n"
            f"  case: {case.describe()}"
        )
    return None


def repro_command(master: int, index: int) -> str:
    """The minimized one-case repro command printed on a mismatch."""
    return (
        f"PYTHONPATH=src python scripts/fuzz_cores.py "
        f"--seed {master} --case {index}"
    )


__all__ = [
    "DEFAULT_SEED",
    "FuzzCase",
    "KERNELS",
    "LATENCIES",
    "case_seed",
    "generate_case",
    "repro_command",
    "run_case",
]
