"""The :class:`Simulator` protocol and the architecture registry.

The two simulators in the library grew incompatible entry points
(``ReferenceSimulator(memory, config).run(trace)`` versus
``DecoupledSimulator(memory, config).run(trace)`` with different config and
result types).  This module hides both behind one shape::

    result = architecture("dva").simulate(trace, RunConfig(latency=50))

Architectures are *data*: every built-in name is a
:class:`~repro.core.machine.MachineSpec` preset resolved into a
:class:`SpecArchitecture`, and inline spec strings resolve on the fly, so

    architecture("dva@lanes=2,ports=2,bypass=off")

is a machine nobody had to write code for.  The registry is seeded with the
paper's three machines — ``"ref"``, ``"dva"`` (store→load bypass enabled,
paper §7) and ``"dva-nobypass"`` (the §5 baseline decoupled machine) — plus
two engine-derived variants, ``"ref-2lane"`` and ``"dva-2port"``, and stays
extensible through :func:`register_architecture` (now a thin wrapper over
spec resolution: pass a :class:`MachineSpec` or any ready-made simulator).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Protocol, Tuple, Union, runtime_checkable

from repro.common.errors import ConfigurationError
from repro.core.config import RunConfig
from repro.core.machine import (
    PRESETS,
    MachineSpec,
    format_override,
    lookup_field,
    parse_assignments,
)
from repro.core.result import RunResult
from repro.dva.simulator import DecoupledSimulator
from repro.memory.model import MemoryModel
from repro.refarch.simulator import ReferenceSimulator
from repro.trace.record import Trace


@runtime_checkable
class Simulator(Protocol):
    """Anything that can turn a trace plus a run configuration into a result.

    Implementations must be stateless across calls (one ``simulate`` call must
    not affect the next) so the sweep runner can reuse them freely across
    cells and processes.
    """

    name: str
    description: str

    def simulate(self, trace: Trace, config: RunConfig) -> RunResult:
        """Simulate ``trace`` under ``config`` and return the unified result."""
        ...


@dataclass(frozen=True)
class SpecArchitecture:
    """A :class:`MachineSpec` resolved into a runnable :class:`Simulator`.

    The spec's pinned fields override the matching block of the
    :class:`~repro.core.config.RunConfig` (so registry names always mean what
    they say); everything it leaves unpinned is taken from the run
    configuration.  The adapter is a frozen dataclass of plain data, so sweep
    cells pickle into pool workers whether the spec came from a preset, an
    inline string or a runtime registration.
    """

    name: str
    description: str
    spec: MachineSpec

    # Convenience passthroughs so callers (and older code) can introspect the
    # machine without reaching into ``spec``.
    @property
    def family(self) -> str:
        return self.spec.family

    @property
    def lanes(self) -> Optional[int]:
        return self.spec.lanes

    @property
    def memory_ports(self) -> Optional[int]:
        return self.spec.memory_ports

    @property
    def bypass(self) -> Optional[bool]:
        return self.spec.bypass

    def simulate(self, trace: Trace, config: RunConfig) -> RunResult:
        """Run ``trace`` on this machine: the spec's pins override ``config``."""
        memory = MemoryModel(latency=config.latency)
        provenance = self.spec.to_json()
        core = self.spec.core if self.spec.core is not None else config.core
        if self.spec.family == "ref":
            simulator = ReferenceSimulator(
                memory, config=self.spec.apply_reference(config.reference), core=core
            )
            return RunResult.from_reference(
                simulator.run(trace), architecture=self.name, spec=provenance
            )
        simulator = DecoupledSimulator(
            memory, config=self.spec.apply_decoupled(config.decoupled), core=core
        )
        return RunResult.from_decoupled(
            simulator.run(trace), architecture=self.name, spec=provenance
        )


# -- deprecated adapter shims ----------------------------------------------------------


@dataclass(frozen=True)
class ReferenceArchitecture:
    """Deprecated adapter-kwargs shim; use a :class:`MachineSpec` instead.

    Kept for one release so existing call sites
    (``ReferenceArchitecture(lanes=2)``) keep working; it simply resolves the
    equivalent ``MachineSpec(family="ref", ...)`` and delegates.
    """

    name: str = "ref"
    description: str = "reference in-order vector machine (paper §2.1)"
    lanes: int = 1
    memory_ports: int = 1

    def __post_init__(self) -> None:
        warnings.warn(
            "ReferenceArchitecture is deprecated and will be removed next "
            "release; use MachineSpec.from_string('ref@lanes=..,ports=..') "
            "with register_architecture instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def as_spec(self) -> MachineSpec:
        """The equivalent :class:`MachineSpec` this shim resolves to."""
        return MachineSpec(
            family="ref", lanes=self.lanes, memory_ports=self.memory_ports
        )

    def simulate(self, trace: Trace, config: RunConfig) -> RunResult:
        """Delegate to the equivalent :class:`SpecArchitecture`."""
        resolved = SpecArchitecture(self.name, self.description, self.as_spec())
        return resolved.simulate(trace, config)


@dataclass(frozen=True)
class DecoupledArchitecture:
    """Deprecated adapter-kwargs shim; use a :class:`MachineSpec` instead.

    Kept for one release so existing call sites
    (``DecoupledArchitecture(memory_ports=2)``) keep working; it resolves the
    equivalent ``MachineSpec(family="dva", ...)`` and delegates.
    """

    name: str = "dva"
    description: str = "decoupled vector machine with store→load bypass (paper §7)"
    bypass: bool = True
    lanes: int = 1
    memory_ports: int = 1

    def __post_init__(self) -> None:
        warnings.warn(
            "DecoupledArchitecture is deprecated and will be removed next "
            "release; use MachineSpec.from_string('dva@lanes=..,bypass=..') "
            "with register_architecture instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def as_spec(self) -> MachineSpec:
        """The equivalent :class:`MachineSpec` this shim resolves to."""
        return MachineSpec(
            family="dva",
            bypass=self.bypass,
            lanes=self.lanes,
            memory_ports=self.memory_ports,
        )

    def simulate(self, trace: Trace, config: RunConfig) -> RunResult:
        """Delegate to the equivalent :class:`SpecArchitecture`."""
        resolved = SpecArchitecture(self.name, self.description, self.as_spec())
        return resolved.simulate(trace, config)


# -- the registry ----------------------------------------------------------------------


_REGISTRY: Dict[str, Simulator] = {}


def register_architecture(
    simulator: Union[Simulator, MachineSpec],
    *,
    name: Optional[str] = None,
    description: str = "",
    replace: bool = False,
) -> Simulator:
    """Add a simulator — or a :class:`MachineSpec` to resolve — to the registry.

    A :class:`MachineSpec` is resolved into a :class:`SpecArchitecture` first
    (``name`` defaults to the spec's canonical string), so registration is a
    thin wrapper over spec resolution.  Names are case-insensitive.
    Registering an existing name raises unless ``replace=True``, to catch
    accidental collisions between extensions.  Returns the registered
    simulator so the call can be used as a decorator tail.
    """
    if isinstance(simulator, MachineSpec):
        simulator = SpecArchitecture(
            name=name if name is not None else simulator.to_string(),
            description=description,
            spec=simulator,
        )
    key = simulator.name.lower()
    if not key:
        raise ConfigurationError("architecture name cannot be empty")
    if key in _REGISTRY and not replace:
        raise ConfigurationError(
            f"architecture {simulator.name!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[key] = simulator
    return simulator


def unregister_architecture(name: str) -> None:
    """Remove a registered architecture (used by tests and ablation scripts)."""
    _REGISTRY.pop(name.lower(), None)


def architecture(name: str) -> Simulator:
    """Look up an architecture by name, or resolve an inline spec string.

    Registered names (case-insensitive) win; anything containing ``@`` is
    parsed as a ``base@key=value,...`` machine spec — the base may be any
    registered spec-backed architecture (including runtime registrations),
    not just the built-in presets — and resolved on the fly without being
    registered.
    """
    key = name.lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        if "@" in key:
            spec = _parse_inline_spec(key)
            return SpecArchitecture(
                name=spec.to_string(),
                description=f"inline spec ({spec.to_string()})",
                spec=spec,
            )
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown architecture {name!r} (known: {known}; "
            "inline specs look like 'dva@lanes=2,ports=2')"
        ) from None


def _parse_inline_spec(text: str) -> MachineSpec:
    """Parse ``base@key=value,...`` resolving the base through the registry.

    A registered spec-backed base (runtime registrations included) takes
    precedence; otherwise the built-in presets are tried, so the plain
    ``MachineSpec.from_string`` grammar remains a subset of this one.
    """
    base, _, assignments = text.partition("@")
    registered = _REGISTRY.get(base.strip())
    if registered is None:
        return MachineSpec.from_string(text)
    spec = getattr(registered, "spec", None)
    if not isinstance(spec, MachineSpec):
        raise ConfigurationError(
            f"architecture {base.strip()!r} is not spec-backed; it cannot "
            "be extended with an @-clause"
        )
    return spec.with_pins(**parse_assignments(assignments, text))


def resolve_architecture(
    name: str, overrides: Union[Mapping[str, object], Tuple[Tuple[str, object], ...]] = ()
) -> Simulator:
    """Resolve an architecture name (or inline spec) plus sweep-axis overrides.

    Without overrides this is :func:`architecture`.  With overrides the base
    must be spec-backed (a :class:`SpecArchitecture`); the resolved
    simulator's name — the sweep cell's label — is the *base name* plus the
    override assignments (``"dva-2port@lanes=2"``), not the merged spec's
    canonical string, so labels keep the registered base's identity: two
    bases whose canonical strings coincide (e.g. a fully-pinned preset and a
    partially-pinned registration that inherits the rest from the RunConfig)
    stay distinguishable, and every label re-resolves through
    :func:`architecture` to the same machine.
    """
    base = architecture(name)
    pins = dict(overrides)
    if not pins:
        return base
    spec = getattr(base, "spec", None)
    if not isinstance(spec, MachineSpec):
        raise ConfigurationError(
            f"architecture {name!r} is not spec-backed; machine-axis sweeps "
            "need a MachineSpec preset or inline spec"
        )
    merged = spec.with_pins(**pins)
    # Overrides the base already pins at that exact value change nothing, so
    # they are elided from the label ("dva" stays "dva" at lanes=1); any
    # override that does change the machine appears.  Distinct axis combos
    # therefore always get distinct labels under one base: at most one value
    # per axis can equal the base's pin.
    visible = {
        key: value
        for key, value in pins.items()
        if getattr(spec, lookup_field(key).attribute) != value
    }
    if not visible:
        return SpecArchitecture(name=base.name, description=base.description, spec=merged)
    # When the base name already carries an @-clause, rebuild it rather than
    # blindly appending: an override of a field the clause assigns must
    # replace that assignment, or the label would carry the key twice
    # ("dva@lanes=2,lanes=1") — misleading and unparseable.
    prefix, _, clause = base.name.partition("@")
    parts: List[str] = []
    if clause:
        existing = parse_assignments(clause, base.name)
        for key in visible:
            existing.pop(lookup_field(key).attribute, None)
        parts = [format_override(attr, value) for attr, value in existing.items()]
    parts.extend(format_override(key, value) for key, value in visible.items())
    return SpecArchitecture(
        name=f"{prefix}@{','.join(parts)}",
        description=base.description,
        spec=merged,
    )


def machine_spec(name: str) -> MachineSpec:
    """The :class:`MachineSpec` behind a registered name or inline string."""
    simulator = architecture(name)
    spec = getattr(simulator, "spec", None)
    if not isinstance(spec, MachineSpec):
        raise ConfigurationError(
            f"architecture {name!r} is not described by a MachineSpec"
        )
    return spec


_BUILTIN_ORDER = tuple(PRESETS)


def architecture_names() -> List[str]:
    """Registered architecture names, built-ins first."""
    builtin = [name for name in _BUILTIN_ORDER if name in _REGISTRY]
    extensions = sorted(set(_REGISTRY) - set(builtin))
    return builtin + extensions


def simulate(
    trace: Trace,
    architecture_name: str,
    latency: Optional[int] = None,
    config: Optional[RunConfig] = None,
) -> RunResult:
    """One-call entry point: simulate ``trace`` on a named architecture.

    ``latency`` is a convenience shortcut for the common case; pass a full
    :class:`RunConfig` to control the architectural parameter blocks too.
    """
    if config is None:
        config = RunConfig(latency=latency if latency is not None else 1)
    elif latency is not None:
        config = config.with_latency(latency)
    return architecture(architecture_name).simulate(trace, config)


for _preset in PRESETS.values():
    register_architecture(
        _preset.spec, name=_preset.name, description=_preset.description
    )
