"""The :class:`Simulator` protocol and the architecture registry.

The two simulators in the library grew incompatible entry points
(``ReferenceSimulator(memory, config).run(trace)`` versus
``DecoupledSimulator(memory, config).run(trace)`` with different config and
result types).  This module hides both behind one shape::

    result = architecture("dva").simulate(trace, RunConfig(latency=50))

Architectures are looked up by name in a process-wide registry seeded with the
paper's three machines — ``"ref"``, ``"dva"`` (store→load bypass enabled,
paper §7) and ``"dva-nobypass"`` (the §5 baseline decoupled machine) — plus
two engine-derived variants, ``"ref-2lane"`` (two-lane vector unit) and
``"dva-2port"`` (dual memory port), and is extensible through
:func:`register_architecture` for ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, runtime_checkable

from repro.common.errors import ConfigurationError
from repro.core.config import RunConfig
from repro.core.result import RunResult
from repro.dva.simulator import DecoupledSimulator
from repro.memory.model import MemoryModel
from repro.refarch.simulator import ReferenceSimulator
from repro.trace.record import Trace


@runtime_checkable
class Simulator(Protocol):
    """Anything that can turn a trace plus a run configuration into a result.

    Implementations must be stateless across calls (one ``simulate`` call must
    not affect the next) so the sweep runner can reuse them freely across
    cells and processes.
    """

    name: str
    description: str

    def simulate(self, trace: Trace, config: RunConfig) -> RunResult:
        """Simulate ``trace`` under ``config`` and return the unified result."""
        ...


@dataclass(frozen=True)
class ReferenceArchitecture:
    """Adapter exposing :class:`ReferenceSimulator` through the protocol.

    ``lanes`` and ``memory_ports`` pin the machine's datapath width so that
    registry names always mean what they say (``"ref"`` is the paper's
    one-lane, one-port machine; ``"ref-2lane"`` has a two-lane vector unit);
    every other reference parameter is taken from the run configuration.
    """

    name: str = "ref"
    description: str = "reference in-order vector machine (paper §2.1)"
    lanes: int = 1
    memory_ports: int = 1

    def simulate(self, trace: Trace, config: RunConfig) -> RunResult:
        reference = config.reference.with_variant(self.lanes, self.memory_ports)
        simulator = ReferenceSimulator(
            MemoryModel(latency=config.latency), config=reference
        )
        return RunResult.from_reference(simulator.run(trace), architecture=self.name)


@dataclass(frozen=True)
class DecoupledArchitecture:
    """Adapter exposing :class:`DecoupledSimulator` through the protocol.

    ``bypass`` pins the store→load bypass setting regardless of what the
    caller's :class:`~repro.dva.config.DecoupledConfig` says, so that the
    registry names ``"dva"`` and ``"dva-nobypass"`` always mean what they say;
    ``lanes`` and ``memory_ports`` pin the datapath width the same way
    (``"dva-2port"`` has two memory ports).  Every other decoupled parameter
    is taken from the run configuration.
    """

    name: str = "dva"
    description: str = "decoupled vector machine with store→load bypass (paper §7)"
    bypass: bool = True
    lanes: int = 1
    memory_ports: int = 1

    def simulate(self, trace: Trace, config: RunConfig) -> RunResult:
        decoupled = config.decoupled.with_bypass(self.bypass).with_variant(
            self.lanes, self.memory_ports
        )
        simulator = DecoupledSimulator(
            MemoryModel(latency=config.latency), config=decoupled
        )
        return RunResult.from_decoupled(simulator.run(trace), architecture=self.name)


_REGISTRY: Dict[str, Simulator] = {}


def register_architecture(simulator: Simulator, *, replace: bool = False) -> Simulator:
    """Add ``simulator`` to the registry under its ``name``.

    Names are case-insensitive.  Registering an existing name raises unless
    ``replace=True``, to catch accidental collisions between extensions.
    Returns the simulator so the call can be used as a decorator tail.
    """
    key = simulator.name.lower()
    if not key:
        raise ConfigurationError("architecture name cannot be empty")
    if key in _REGISTRY and not replace:
        raise ConfigurationError(
            f"architecture {simulator.name!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[key] = simulator
    return simulator


def unregister_architecture(name: str) -> None:
    """Remove a registered architecture (used by tests and ablation scripts)."""
    _REGISTRY.pop(name.lower(), None)


def architecture(name: str) -> Simulator:
    """Look up an architecture by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown architecture {name!r} (known: {known})"
        ) from exc


_BUILTIN_ORDER = ("ref", "dva", "dva-nobypass", "ref-2lane", "dva-2port")


def architecture_names() -> List[str]:
    """Registered architecture names, built-ins first."""
    builtin = [name for name in _BUILTIN_ORDER if name in _REGISTRY]
    extensions = sorted(set(_REGISTRY) - set(builtin))
    return builtin + extensions


def simulate(
    trace: Trace,
    architecture_name: str,
    latency: Optional[int] = None,
    config: Optional[RunConfig] = None,
) -> RunResult:
    """One-call entry point: simulate ``trace`` on a named architecture.

    ``latency`` is a convenience shortcut for the common case; pass a full
    :class:`RunConfig` to control the architectural parameter blocks too.
    """
    if config is None:
        config = RunConfig(latency=latency if latency is not None else 1)
    elif latency is not None:
        config = config.with_latency(latency)
    return architecture(architecture_name).simulate(trace, config)


register_architecture(ReferenceArchitecture())
register_architecture(DecoupledArchitecture())
register_architecture(
    DecoupledArchitecture(
        name="dva-nobypass",
        description="decoupled vector machine without the bypass (paper §5)",
        bypass=False,
    )
)
# Engine-derived variants: one configuration knob over the shared
# ResourcePool/MemoryFabric primitives, not new simulators.
register_architecture(
    ReferenceArchitecture(
        name="ref-2lane",
        description="reference machine with a two-lane vector unit",
        lanes=2,
    )
)
register_architecture(
    DecoupledArchitecture(
        name="dva-2port",
        description="decoupled machine (bypass on) with two memory ports",
        memory_ports=2,
    )
)
