"""Command-line interface: ``python -m repro``.

Six subcommands drive the experiment API end to end:

* ``list-programs`` — the available Perfect Club program models and the
  registered architectures they can run on.
* ``list-archs`` — the registered architectures with their canonical machine
  specs; ``--schema`` adds every machine field, its valid range and each
  preset's full field values.
* ``run`` — simulate one (program, architecture, latency) cell.  The
  architecture may be an inline machine spec (``dva@lanes=2,ports=2``).
* ``sweep`` — execute a declarative grid and print per-cell summaries plus a
  Figure 5-style speedup table.  ``--axis name=v1,v2,...`` (repeatable) adds
  machine-parameter sweep axes crossed with the latency axis.  Sweeps are
  incremental by default: completed cells are persisted in the result store
  (``~/.cache/repro``, overridable via ``--store-dir`` or ``REPRO_CACHE_DIR``)
  and never re-simulated; ``--no-store`` opts out.
* ``figures`` — run the paper's headline grid and write the Figure 5,
  Figure 6 and Section 7 artifacts as CSV files (also store-backed).
* ``cache`` — inspect and manage the result store: ``stats``, ``gc``
  (eviction by age and/or size, plus reaping dead cluster state), ``clear``.
* ``serve`` — run the long-lived sweep service: an asyncio HTTP daemon whose
  JSON API answers warm cells from the store in microseconds, deduplicates
  identical in-flight cells across clients, and streams per-cell progress
  (see :mod:`repro.service`).
* ``worker`` — join distributed sweeps as one cooperating worker process:
  claim manifest cells through the shared store directory, simulate them,
  steal from crashed peers (see :mod:`repro.cluster`).
* ``cluster`` — observe distributed sweeps: ``status`` prints each
  manifest's progress, claims and per-worker counters.

``sweep --distributed`` composes the two cluster roles on one machine:
publish the manifest, spawn ``--workers`` worker processes, assemble.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.common.errors import ConfigurationError, ReproError
from repro.core import figures as figures_module
from repro.core import machine as machine_module
from repro.core.config import RunConfig
from repro.core.experiment import CellProgress, Runner, SweepResult, SweepSpec
from repro.core.registry import (
    architecture,
    architecture_names,
    machine_spec,
    simulate,
)
from repro.store import ResultStore, default_store_root
from repro.workloads.perfect_club import load_program, program_names


_STORE_DIR_HELP = (
    "result-store directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)"
)


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    """The store on/off switch and location flag shared by sweeping commands."""
    parser.add_argument(
        "--store",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="cache completed cells in the persistent result store so "
        "interrupted or repeated runs never re-simulate them "
        "(--no-store disables)",
    )
    parser.add_argument(
        "--store-dir", default=None, help=_STORE_DIR_HELP
    )


def _store_from_args(args: argparse.Namespace) -> Optional[ResultStore]:
    """The :class:`ResultStore` the command should use, or ``None`` when off."""
    if not getattr(args, "store", False):
        return None
    return ResultStore(args.store_dir)


def build_parser() -> argparse.ArgumentParser:
    """The full ``python -m repro`` argparse tree.

    Public so tooling can introspect the real interface —
    ``scripts/gen_cli_docs.py`` renders ``docs/cli.md`` from exactly this
    parser, and CI fails when the two drift apart.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of 'Decoupled Vector Architectures' "
            "(Espasa & Valero, HPCA 1996)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list-programs", help="list the available benchmark program models"
    )
    list_parser.set_defaults(handler=_cmd_list_programs)

    archs_parser = subparsers.add_parser(
        "list-archs", help="list the registered architectures"
    )
    archs_parser.add_argument(
        "--schema",
        action="store_true",
        help="print every machine field with its valid range and each "
        "preset's full MachineSpec",
    )
    archs_parser.set_defaults(handler=_cmd_list_archs)

    run_parser = subparsers.add_parser(
        "run", help="simulate one program on one architecture"
    )
    run_parser.add_argument("--program", required=True, help="benchmark program name")
    run_parser.add_argument(
        "--arch",
        default="dva",
        help=f"architecture ({', '.join(architecture_names())}) "
        "or an inline spec like dva@lanes=2,ports=2,bypass=off",
    )
    run_parser.add_argument(
        "--latency", type=int, default=1, help="memory latency in cycles"
    )
    run_parser.add_argument(
        "--scale", type=float, default=1.0, help="trace scale factor"
    )
    run_parser.add_argument(
        "--core",
        choices=("tick", "event"),
        default="tick",
        help="timing-core control flow: the one-pass tick oracle or the "
        "event-driven skip-ahead scheduler (cycle-identical by contract)",
    )
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a (programs x latencies x architectures) grid"
    )
    sweep_parser.add_argument(
        "--programs", required=True, help="comma-separated program names"
    )
    sweep_parser.add_argument(
        "--latencies",
        default="",
        help="comma-separated memory latencies (or give the latency axis "
        "as --axis latency=v1,v2,...)",
    )
    sweep_parser.add_argument(
        "--arch",
        default="ref,dva",
        help="comma-separated architectures, registry names or inline specs "
        "(default: ref,dva)",
    )
    sweep_parser.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help="extra sweep axis over a machine field, e.g. --axis lanes=1,2,4 "
        "--axis ports=1,2 (repeatable; crossed with the latency axis)",
    )
    sweep_parser.add_argument(
        "--scale", type=float, default=1.0, help="trace scale factor"
    )
    sweep_parser.add_argument(
        "--core",
        choices=("tick", "event"),
        default="tick",
        help="timing-core control flow for every cell: the one-pass tick "
        "oracle or the event-driven skip-ahead scheduler (cycle-identical "
        "by contract; store keys ignore the choice, so warm cells hit "
        "either way)",
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial)"
    )
    sweep_parser.add_argument(
        "--distributed",
        action="store_true",
        help="run through repro.cluster: publish a cost-ranked cell manifest "
        "in the store directory, spawn --workers worker processes that "
        "claim cells through atomic lease files, and assemble the result "
        "when the manifest drains (requires the store)",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes to spawn with --distributed (default: 2); "
        "additional 'repro worker' processes on any host sharing the "
        "store directory join the same sweep",
    )
    sweep_parser.add_argument(
        "--lease", type=float, default=None, metavar="SECONDS",
        help="claim lease duration for --distributed; a crashed worker's "
        "cells become stealable after this (default: 30)",
    )
    sweep_parser.add_argument(
        "--output", help="write the full sweep result as JSON to this path"
    )
    sweep_parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per finished cell (done/total, cached vs "
        "simulated) so long sweeps are observable",
    )
    _add_store_arguments(sweep_parser)
    sweep_parser.set_defaults(handler=_cmd_sweep)

    figures_parser = subparsers.add_parser(
        "figures", help="reproduce the paper's figure/table artifacts as CSV"
    )
    figures_parser.add_argument(
        "--programs",
        default=",".join(program_names()),
        help="comma-separated program names (default: all six)",
    )
    figures_parser.add_argument(
        "--latencies",
        default="1,10,50,100",
        help="comma-separated memory latencies (default: the paper's sweep)",
    )
    figures_parser.add_argument(
        "--scale", type=float, default=1.0, help="trace scale factor"
    )
    figures_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial)"
    )
    figures_parser.add_argument(
        "--out-dir", default="figures", help="directory to write the CSV files into"
    )
    _add_store_arguments(figures_parser)
    figures_parser.set_defaults(handler=_cmd_figures)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect and manage the persistent result store"
    )
    cache_subparsers = cache_parser.add_subparsers(dest="cache_command", required=True)

    stats_parser = cache_subparsers.add_parser(
        "stats", help="entry counts and sizes of the store (refreshes the index)"
    )
    stats_parser.add_argument(
        "--store-dir", default=None, help=_STORE_DIR_HELP
    )
    stats_parser.add_argument(
        "--json", action="store_true", help="print the statistics as JSON"
    )
    stats_parser.set_defaults(handler=_cmd_cache_stats)

    gc_parser = cache_subparsers.add_parser(
        "gc",
        help="evict old entries and reclaim space "
        "(stale format versions are always removed)",
    )
    gc_parser.add_argument(
        "--store-dir", default=None, help=_STORE_DIR_HELP
    )
    gc_parser.add_argument(
        "--max-age-days", type=float, default=None,
        help="evict entries written longer ago than this many days",
    )
    gc_parser.add_argument(
        "--max-bytes", type=int, default=None,
        help="evict oldest entries until the store fits this many bytes",
    )
    gc_parser.add_argument(
        "--dry-run", action="store_true",
        help="report what would be evicted without deleting anything",
    )
    gc_parser.set_defaults(handler=_cmd_cache_gc)

    clear_parser = cache_subparsers.add_parser(
        "clear", help="delete every cached result (all format versions)"
    )
    clear_parser.add_argument(
        "--store-dir", default=None, help=_STORE_DIR_HELP
    )
    clear_parser.set_defaults(handler=_cmd_cache_clear)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the sweep service: an HTTP JSON API over the result store "
        "(warm cells answer from the store, concurrent identical requests "
        "share one simulation, progress streams as server-sent events)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="interface to bind"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8023, help="TCP port to bind (0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for cold cells (1 = simulate in-process)",
    )
    serve_parser.add_argument(
        "--store-dir", default=None, help=_STORE_DIR_HELP
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    worker_parser = subparsers.add_parser(
        "worker",
        help="join distributed sweeps as one worker process: claim cells "
        "from store-published manifests, simulate them, write results "
        "back through the store, steal expired claims from dead peers",
    )
    worker_parser.add_argument(
        "--store-dir", default=None, help=_STORE_DIR_HELP
    )
    worker_parser.add_argument(
        "--sweep",
        action="append",
        default=[],
        metavar="SWEEP_ID",
        help="serve only this sweep id and exit when it drains (repeatable; "
        "default: serve every manifest in the store)",
    )
    worker_parser.add_argument(
        "--once",
        action="store_true",
        help="drain every manifest currently in the store, then exit "
        "instead of polling for new ones",
    )
    worker_parser.add_argument(
        "--lease", type=float, default=None, metavar="SECONDS",
        help="claim lease duration; this worker's cells become stealable "
        "after missing heartbeats for this long (default: 30)",
    )
    worker_parser.add_argument(
        "--worker-id", default=None,
        help="worker identity used in claim files and status reporting "
        "(default: <hostname>-<pid>)",
    )
    worker_parser.set_defaults(handler=_cmd_worker)

    cluster_parser = subparsers.add_parser(
        "cluster", help="observe distributed sweeps coordinated through the store"
    )
    cluster_subparsers = cluster_parser.add_subparsers(
        dest="cluster_command", required=True
    )
    cluster_status_parser = cluster_subparsers.add_parser(
        "status",
        help="per-sweep progress, claim counts and per-worker "
        "claim/steal/complete counters",
    )
    cluster_status_parser.add_argument(
        "--store-dir", default=None, help=_STORE_DIR_HELP
    )
    cluster_status_parser.add_argument(
        "--json", action="store_true", help="print the status as JSON"
    )
    cluster_status_parser.set_defaults(handler=_cmd_cluster_status)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Library-level :class:`~repro.common.errors.ReproError` failures become
    exit code 2 with a one-line message, matching argparse's own behaviour
    for unparseable input.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        parser.exit(2, f"error: {exc}\n")
        return 2  # pragma: no cover - parser.exit raises SystemExit


# -- subcommand handlers ---------------------------------------------------------------


def _cmd_list_programs(args: argparse.Namespace) -> int:
    for name in program_names():
        model = load_program(name)
        print(f"{name:8s} {model.description}")
    print(f"\narchitectures: {', '.join(architecture_names())}")
    return 0


def _cmd_list_archs(args: argparse.Namespace) -> int:
    names = architecture_names()
    width = max(len(name) for name in names)
    for name in names:
        simulator = architecture(name)
        spec = getattr(simulator, "spec", None)
        spec_text = spec.to_string() if spec is not None else "(not spec-backed)"
        print(f"{name:{width}s}  {spec_text:24s}  {simulator.description}")
    if not args.schema:
        return 0

    print("\nmachine fields (spec-string keys; aliases in parentheses):")
    rows = [
        {
            "key": info.key,
            "aliases": ",".join(a for a in (info.attribute, *info.aliases)
                                if a != info.key) or "-",
            "type": info.kind,
            "range": info.range_text,
            "default": info.default if info.kind != "bool"
            else ("on" if info.default else "off"),
            "families": ",".join(info.families),
            "description": info.description,
        }
        for info in machine_module.field_infos()
    ]
    print(figures_module.format_table(rows))

    print("\npresets (pinned fields marked *, others inherit the RunConfig):")
    for name in names:
        try:
            spec = machine_spec(name)
        except ReproError:
            continue
        pins = spec.pins()
        fields = ", ".join(
            f"{attr}={value}{'*' if attr in pins else ''}"
            for attr, value in spec.effective().items()
        )
        print(f"  {name:{width}s}  family={spec.family}  {fields}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    architecture(args.arch)  # fail fast before the (slower) trace build
    trace = load_program(args.program).build_trace(scale=args.scale)
    config = RunConfig(latency=args.latency, core=getattr(args, "core", "tick"))
    result = simulate(trace, args.arch, config=config)
    print(json.dumps(result.summary(), indent=2))
    return 0


def _print_progress(event: "CellProgress") -> None:
    """One ``--progress`` line per finished cell, on stderr.

    Progress goes to stderr so scripts that parse the sweep's stdout (the
    summary table, ``--output`` confirmations) are unaffected.
    """
    source = "cached" if event.from_store else "simulated"
    print(
        f"[{event.done}/{event.total}] {event.program} "
        f"lat={event.latency} {event.architecture}: {source} "
        f"({event.cached} cached, {event.simulated} simulated)",
        file=sys.stderr,
    )


def _run_sweep(args: argparse.Namespace) -> SweepResult:
    spec = SweepSpec.from_strings(
        programs=args.programs,
        latencies=args.latencies,
        architectures=args.arch,
        scale=args.scale,
        axes=tuple(getattr(args, "axis", ()) or ()),
    )
    progress = _print_progress if getattr(args, "progress", False) else None
    core = getattr(args, "core", "tick")
    if getattr(args, "distributed", False):
        # Imported here so the cluster layer is only paid for when used.
        from repro.cluster import DEFAULT_LEASE_SECONDS, ClusterCoordinator

        if core != "tick":
            raise ConfigurationError(
                "--distributed workers always simulate on the tick core; "
                "drop --core event (results are cycle-identical either way)"
            )
        store = _store_from_args(args)
        if store is None:
            raise ConfigurationError(
                "--distributed coordinates through the result store; "
                "it cannot run with --no-store"
            )
        lease = args.lease if args.lease is not None else DEFAULT_LEASE_SECONDS
        return ClusterCoordinator(store).run_distributed(
            spec, workers=args.workers, lease_seconds=lease, progress=progress
        )
    return Runner(jobs=args.jobs, store=_store_from_args(args)).run(
        spec, config=RunConfig(core=core), progress=progress
    )


def _print_store_line(sweep: SweepResult, store: Optional[ResultStore]) -> None:
    if store is None:
        return
    print(
        f"store: {sweep.cached_count} cached, {sweep.simulated_count} "
        f"simulated ({store.root})"
    )


def _summary_rows(sweep: SweepResult) -> List[dict]:
    return [
        {
            "program": result.program,
            "latency": result.latency,
            "arch": result.architecture,
            "total_cycles": result.total_cycles,
            "instructions": result.instructions,
            "traffic_bytes": result.memory_traffic_bytes,
        }
        for result in sweep
    ]


def _print_speedup_table(sweep: SweepResult) -> None:
    baseline = "ref"
    labels = sweep.architecture_labels()
    targets = [name for name in labels if name != baseline]
    if baseline not in labels or not targets:
        print("\n(speedup table needs 'ref' plus at least one other architecture)")
        return
    for target in targets:
        print(f"\nFigure 5 — {target.upper()} speedup over REF:")
        print(figures_module.format_table(figures_module.speedup_table(sweep, target=target)))


def _cmd_sweep(args: argparse.Namespace) -> int:
    sweep = _run_sweep(args)
    shape = (f"{len(sweep.spec.programs)} programs x "
             f"{len(sweep.spec.latencies)} latencies x "
             f"{len(sweep.spec.architectures)} architectures")
    for name, values in sweep.spec.axes:
        shape += f" x {len(values)} {name}"
    print(f"sweep: {len(sweep)} cells ({shape})")
    _print_store_line(sweep, _store_from_args(args))
    print()
    print(figures_module.format_table(_summary_rows(sweep)))
    _print_speedup_table(sweep)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(sweep.to_json(), handle, indent=2)
        print(f"\nwrote {args.output}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    spec = SweepSpec.from_strings(
        programs=args.programs,
        latencies=args.latencies,
        architectures="ref,dva,dva-nobypass",
        scale=args.scale,
    )
    store = _store_from_args(args)
    sweep = Runner(jobs=args.jobs, store=store).run(spec)
    _print_store_line(sweep, store)
    os.makedirs(args.out_dir, exist_ok=True)

    artifacts = {
        "figure5_speedup.csv": figures_module.speedup_table(sweep),
        "figure5_speedup_nobypass.csv": figures_module.speedup_table(
            sweep, target="dva-nobypass"
        ),
        "figure6_avdq_occupancy.csv": figures_module.queue_occupancy_rows(sweep),
        "section7_bypass.csv": figures_module.bypass_traffic_table(sweep),
    }
    for filename, rows in artifacts.items():
        path = os.path.join(args.out_dir, filename)
        figures_module.write_csv(rows, path)
        print(f"wrote {path} ({len(rows)} rows)")

    sweep_path = os.path.join(args.out_dir, "sweep.json")
    with open(sweep_path, "w") as handle:
        json.dump(sweep.to_json(), handle, indent=2)
    print(f"wrote {sweep_path}")
    return 0


# -- cache management ------------------------------------------------------------------


def _cache_store(args: argparse.Namespace) -> ResultStore:
    return ResultStore(args.store_dir if args.store_dir else default_store_root())


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    store = _cache_store(args)
    stats = store.stats(refresh_index=True)
    if args.json:
        print(json.dumps(stats, indent=2))
        return 0
    print(f"store:     {stats['root']} (format v{stats['format']})")
    print(f"entries:   {stats['entry_count']}")
    print(f"size:      {stats['total_bytes']} bytes")
    by_architecture = stats["by_architecture"]
    assert isinstance(by_architecture, dict)
    for name in sorted(by_architecture):
        print(f"  {name:24s} {by_architecture[name]} entries")
    stale = stats["stale_version_dirs"]
    assert isinstance(stale, list)
    if stale:
        print(f"stale format versions: {', '.join(stale)} (run 'repro cache gc')")
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    store = _cache_store(args)
    report = store.gc(
        max_age_days=args.max_age_days,
        max_bytes=args.max_bytes,
        dry_run=args.dry_run,
    )
    verb = "would evict" if args.dry_run else "evicted"
    print(
        f"{verb} {report['evicted']} entries ({report['evicted_bytes']} bytes); "
        f"kept {report['kept']} ({report['kept_bytes']} bytes)"
    )
    removed = report["stale_version_dirs_removed"]
    assert isinstance(removed, list)
    if removed:
        what = "stale version dirs" if not args.dry_run else "stale version dirs to remove"
        print(f"{what}: {', '.join(removed)}")
    orphans = report["orphaned_tmp_files"]
    if orphans:
        what = "orphaned tmp files removed" if not args.dry_run else "orphaned tmp files to remove"
        print(f"{what}: {orphans}")
    claims = report.get("cluster_claims_reaped", 0)
    sweeps = report.get("cluster_sweeps_reaped", 0)
    if claims or sweeps:
        verb = "would reap" if args.dry_run else "reaped"
        print(
            f"cluster: {verb} {claims} stale claims, "
            f"{sweeps} drained sweep dirs"
        )
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    store = _cache_store(args)
    removed = store.clear()
    print(f"cleared {removed} entries from {store.root}")
    return 0


# -- the sweep service -----------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so the (asyncio-heavy) service layer is only paid for by
    # the one subcommand that needs it.
    from repro.service import serve

    serve(
        host=args.host,
        port=args.port,
        store=args.store_dir,
        jobs=args.jobs,
    )
    return 0


# -- distributed sweeps ----------------------------------------------------------------


def _cmd_worker(args: argparse.Namespace) -> int:
    # Imported here so the cluster layer is only paid for by the commands
    # that need it.
    from repro.cluster import DEFAULT_LEASE_SECONDS, ClusterWorker

    worker = ClusterWorker(
        _cache_store(args),
        worker_id=args.worker_id,
        lease_seconds=args.lease if args.lease is not None else DEFAULT_LEASE_SECONDS,
    )
    sweep_ids = list(args.sweep) or None
    print(
        f"worker {worker.worker_id}: store {worker.store.root}, "
        f"sweeps {sweep_ids if sweep_ids else '(all manifests)'}",
        file=sys.stderr,
    )
    try:
        counters = worker.run(sweep_ids=sweep_ids, once=args.once)
    except KeyboardInterrupt:
        counters = worker.status_payload()["counters"]
    assert isinstance(counters, dict)
    print(
        f"worker {worker.worker_id}: "
        + ", ".join(f"{name}={value}" for name, value in counters.items()),
        file=sys.stderr,
    )
    return 1 if counters.get("failed") else 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    from repro.cluster import cluster_status

    status = cluster_status(_cache_store(args))
    if args.json:
        print(json.dumps(status, indent=2))
        return 0
    sweeps = status["sweeps"]
    assert isinstance(sweeps, list)
    print(f"cluster root: {status['root']}")
    if not sweeps:
        print("no sweeps (no manifests published)")
        return 0
    for sweep in sweeps:
        print(
            f"\nsweep {sweep['sweep']} [{sweep['state']}]: "
            f"{sweep['done']}/{sweep['total']} cells done, "
            f"{sweep['remaining']} remaining, "
            f"{sweep['claims_active']} active claims"
            + (
                f", {sweep['claims_expired']} expired"
                if sweep["claims_expired"]
                else ""
            )
        )
        for worker in sweep["workers"]:
            liveness = "live" if worker["live"] else "stale"
            print(
                f"  worker {worker['worker']} [{liveness}]: "
                f"claimed={worker['claimed']} stolen={worker['stolen']} "
                f"completed={worker['completed']} failed={worker['failed']}"
            )
    return 0
