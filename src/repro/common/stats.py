"""Small statistics helpers shared across the library."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Tuple


class Histogram:
    """An integer-keyed histogram with integer weights.

    Used for queue-occupancy distributions (Figure 6) and vector-length
    distributions of workloads.
    """

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    def add(self, key: int, weight: int = 1) -> None:
        """Add ``weight`` observations of ``key``."""
        if weight == 0:
            return
        self._counts[key] = self._counts.get(key, 0) + weight

    def count(self, key: int) -> int:
        """Number of observations recorded for ``key``."""
        return self._counts.get(key, 0)

    def total(self) -> int:
        """Total weight across all keys."""
        return sum(self._counts.values())

    def keys(self) -> list[int]:
        return sorted(self._counts)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._counts.items()))

    def max_key(self) -> int:
        """Largest key with a non-zero count (0 for an empty histogram)."""
        return max(self._counts, default=0)

    def mean(self) -> float:
        """Weighted mean of the keys."""
        total = self.total()
        if total == 0:
            return 0.0
        return sum(key * count for key, count in self._counts.items()) / total

    def fraction_at_or_below(self, key: int) -> float:
        """Fraction of the total weight at keys less than or equal to ``key``."""
        total = self.total()
        if total == 0:
            return 0.0
        below = sum(count for k, count in self._counts.items() if k <= key)
        return below / total

    def as_dict(self) -> Dict[int, int]:
        """A plain ``dict`` copy of the histogram contents."""
        return dict(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self._counts == other._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({dict(sorted(self._counts.items()))!r})"


class RunningStats:
    """Streaming mean / variance / min / max accumulator (Welford's method)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.4g}, "
            f"stddev={self.stddev:.4g})"
        )


def weighted_mean(pairs: Iterable[Tuple[float, float]]) -> float:
    """Mean of ``value`` weighted by ``weight`` for ``(value, weight)`` pairs."""
    total_weight = 0.0
    total = 0.0
    for value, weight in pairs:
        total += value * weight
        total_weight += weight
    if total_weight == 0:
        return 0.0
    return total / total_weight


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values (0.0 for an empty input)."""
    log_sum = 0.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires strictly positive values")
        log_sum += math.log(value)
        count += 1
    if count == 0:
        return 0.0
    return math.exp(log_sum / count)
