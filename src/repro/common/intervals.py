"""Busy-interval bookkeeping for event-driven simulation.

The reference and decoupled simulators do not step cycle by cycle.  Instead,
each hardware resource (functional unit, memory port, queue slot) records the
half-open intervals ``[start, end)`` during which it was occupied.  The
functions here merge, intersect and measure those intervals so that per-cycle
statistics — such as the eight-state execution breakdown of Figure 1 — can be
recovered exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.common.errors import SimulationError


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open interval ``[start, end)`` measured in cycles."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(
                f"interval end ({self.end}) precedes start ({self.start})"
            )

    @property
    def length(self) -> int:
        """Number of cycles covered by the interval."""
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """Return ``True`` when the two intervals share at least one cycle."""
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "Interval") -> "Interval | None":
        """Return the overlapping part of the two intervals, or ``None``."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Interval(start, end)

    def __bool__(self) -> bool:
        return self.length > 0


class IntervalRecorder:
    """Accumulates busy intervals for one resource.

    The recorder accepts intervals in any order and tolerates overlapping
    pushes (overlaps are merged when the intervals are read back).  It is the
    building block used by the simulators to describe functional-unit and
    memory-port occupancy.

    Intervals are stored as two parallel integer lists — the simulators
    record one per issued instruction, so the hot path is two list appends;
    :class:`Interval` objects are materialized only when intervals are read
    back.
    """

    __slots__ = ("name", "_starts", "_ends")

    def __init__(self, name: str) -> None:
        self.name = name
        self._starts: list[int] = []
        self._ends: list[int] = []

    def record(self, start: int, end: int) -> None:
        """Record that the resource was busy over ``[start, end)``.

        Zero-length intervals are ignored so callers do not need to special
        case instructions that occupy a unit for zero cycles (for example a
        vector instruction with vector length zero).
        """
        if end > start:
            self._starts.append(start)
            self._ends.append(end)
        elif end < start:
            raise SimulationError(
                f"resource {self.name!r}: busy interval ends ({end}) before it starts ({start})"
            )

    def record_interval(self, interval: Interval) -> None:
        """Record an already-constructed :class:`Interval`."""
        self.record(interval.start, interval.end)

    @property
    def raw_intervals(self) -> Sequence[Interval]:
        """The intervals exactly as recorded (possibly overlapping)."""
        return tuple(
            Interval(start, end) for start, end in zip(self._starts, self._ends)
        )

    def merged_pairs(self) -> list[tuple[int, int]]:
        """The recorded intervals merged into disjoint sorted (start, end) pairs."""
        merged: list[list[int]] = []
        for start, end in sorted(zip(self._starts, self._ends)):
            if merged and start <= merged[-1][1]:
                tail = merged[-1]
                if end > tail[1]:
                    tail[1] = end
            else:
                merged.append([start, end])
        return [(start, end) for start, end in merged]

    def merged(self) -> list[Interval]:
        """Return the recorded intervals merged into disjoint, sorted pieces."""
        return [Interval(start, end) for start, end in self.merged_pairs()]

    def busy_time(self) -> int:
        """Total number of distinct cycles during which the resource was busy."""
        return sum(end - start for start, end in self.merged_pairs())

    def busy_at(self, cycle: int) -> bool:
        """Return ``True`` when the resource is busy during ``cycle``."""
        return any(
            start <= cycle < end for start, end in zip(self._starts, self._ends)
        )

    def last_end(self) -> int:
        """Cycle at which the resource last became free (0 when never used)."""
        if not self._ends:
            return 0
        return max(self._ends)

    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.raw_intervals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntervalRecorder(name={self.name!r}, intervals={len(self._starts)})"


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Merge possibly-overlapping intervals into disjoint sorted intervals."""
    ordered = sorted(intervals, key=lambda iv: (iv.start, iv.end))
    merged: list[Interval] = []
    for interval in ordered:
        if interval.length == 0:
            continue
        if merged and interval.start <= merged[-1].end:
            previous = merged[-1]
            if interval.end > previous.end:
                merged[-1] = Interval(previous.start, interval.end)
        else:
            merged.append(interval)
    return merged


def total_busy_time(intervals: Iterable[Interval]) -> int:
    """Number of distinct cycles covered by a collection of intervals."""
    return sum(iv.length for iv in merge_intervals(intervals))


@dataclass
class StateBreakdown:
    """Cycles spent in each combination of busy resources.

    The paper describes the reference machine with a 3-tuple
    ``(FU2, FU1, LD)`` and partitions execution time into the eight possible
    busy/idle combinations.  :func:`state_breakdown` computes this partition
    for an arbitrary number of resources; keys are tuples of booleans in the
    order the recorders were supplied.
    """

    resource_names: tuple[str, ...]
    cycles: dict[tuple[bool, ...], int] = field(default_factory=dict)
    total_cycles: int = 0

    def cycles_in(self, *busy: bool) -> int:
        """Cycles spent with exactly the given busy pattern."""
        return self.cycles.get(tuple(busy), 0)

    def cycles_all_idle(self) -> int:
        """Cycles spent with every resource idle — the paper's ``( , , )`` state."""
        return self.cycles_in(*([False] * len(self.resource_names)))

    def cycles_resource_idle(self, name: str) -> int:
        """Total cycles during which the named resource was idle."""
        index = self.resource_names.index(name)
        return sum(
            count for pattern, count in self.cycles.items() if not pattern[index]
        )

    def fraction(self, *busy: bool) -> float:
        """Fraction of total cycles spent with the given busy pattern."""
        if self.total_cycles == 0:
            return 0.0
        return self.cycles_in(*busy) / self.total_cycles


def state_breakdown(
    recorders: Sequence[IntervalRecorder], total_cycles: int
) -> StateBreakdown:
    """Partition ``[0, total_cycles)`` by which resources are busy.

    The breakdown is computed with a sweep over the interval endpoints, so its
    cost is proportional to the number of recorded intervals rather than to
    the number of cycles simulated.
    """
    names = tuple(recorder.name for recorder in recorders)
    result = StateBreakdown(resource_names=names, total_cycles=total_cycles)
    if total_cycles <= 0:
        return result

    merged_per_resource = [recorder.merged_pairs() for recorder in recorders]
    boundaries = {0, total_cycles}
    for intervals in merged_per_resource:
        for interval_start, interval_end in intervals:
            if interval_start < total_cycles:
                boundaries.add(interval_start)
            if interval_end < total_cycles:
                boundaries.add(interval_end)
    ordered = sorted(boundaries)

    cursors = [0] * len(recorders)
    for index, start in enumerate(ordered):
        end = ordered[index + 1] if index + 1 < len(ordered) else total_cycles
        if end <= start:
            continue
        pattern: list[bool] = []
        for res_index, intervals in enumerate(merged_per_resource):
            cursor = cursors[res_index]
            while cursor < len(intervals) and intervals[cursor][1] <= start:
                cursor += 1
            cursors[res_index] = cursor
            busy = cursor < len(intervals) and intervals[cursor][0] <= start
            pattern.append(busy)
        key = tuple(pattern)
        result.cycles[key] = result.cycles.get(key, 0) + (end - start)
    return result
