"""Exception hierarchy for the reproduction library.

Every error raised by the library derives from :class:`ReproError` so that
callers embedding the simulators can catch a single exception type at the
boundary of their own code.
"""


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An architectural or experiment configuration is invalid.

    Raised, for example, when a queue is given a non-positive capacity or a
    memory latency is negative.
    """


class WorkloadError(ReproError):
    """A workload or loop-kernel description cannot be compiled or generated."""


class TraceError(ReproError):
    """A dynamic trace is malformed or cannot be read/written."""


class SimulationError(ReproError):
    """A simulator reached an inconsistent state.

    This always indicates a bug in the simulator (or a trace that violates the
    ISA contract), never a legitimate architectural condition.
    """
