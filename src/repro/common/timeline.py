"""Occupancy timelines for queues.

Figure 6 of the paper plots, for each benchmark, how many cycles the AVDQ
(the vector load data queue) held 0, 1, 2, ... busy slots.  The decoupled
simulator records one ``(enter, leave)`` pair per queue element; the
:class:`OccupancyTimeline` sweeps those events to reconstruct the per-cycle
occupancy histogram without stepping cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.common.errors import SimulationError
from repro.common.stats import Histogram


@dataclass(frozen=True)
class Residency:
    """The lifetime of one element inside a queue: ``[enter, leave)``."""

    enter: int
    leave: int

    def __post_init__(self) -> None:
        if self.leave < self.enter:
            raise SimulationError(
                f"queue element leaves ({self.leave}) before it enters ({self.enter})"
            )


class OccupancyTimeline:
    """Records element residencies of a bounded queue and derives statistics."""

    def __init__(self, name: str, capacity: int | None = None) -> None:
        self.name = name
        self.capacity = capacity
        self._residencies: list[Residency] = []

    def record(self, enter: int, leave: int) -> None:
        """Record that one element occupied a slot during ``[enter, leave)``."""
        if leave == enter:
            return
        self._residencies.append(Residency(enter, leave))

    @property
    def residencies(self) -> tuple[Residency, ...]:
        return tuple(self._residencies)

    def occupancy_histogram(self, total_cycles: int) -> Histogram:
        """Cycles spent at each occupancy level over ``[0, total_cycles)``."""
        return occupancy_histogram(self._residencies, total_cycles)

    def max_occupancy(self) -> int:
        """The largest number of simultaneously-resident elements ever observed."""
        histogram = self.occupancy_histogram(self._horizon())
        occupied_levels = [level for level, count in histogram.items() if count > 0]
        return max(occupied_levels, default=0)

    def mean_occupancy(self, total_cycles: int) -> float:
        """Time-weighted mean number of busy slots over ``[0, total_cycles)``."""
        if total_cycles <= 0:
            return 0.0
        histogram = self.occupancy_histogram(total_cycles)
        weighted = sum(level * cycles for level, cycles in histogram.items())
        return weighted / total_cycles

    def _horizon(self) -> int:
        if not self._residencies:
            return 0
        return max(residency.leave for residency in self._residencies)

    def __len__(self) -> int:
        return len(self._residencies)


def occupancy_histogram(
    residencies: Iterable[Residency], total_cycles: int
) -> Histogram:
    """Compute cycles-at-each-occupancy-level from residency records.

    Cycles beyond the lifetime of the last element count as occupancy zero so
    the histogram always sums to ``total_cycles``.
    """
    histogram = Histogram()
    if total_cycles <= 0:
        return histogram

    events: list[tuple[int, int]] = []
    for residency in residencies:
        start = min(residency.enter, total_cycles)
        end = min(residency.leave, total_cycles)
        if end > start:
            events.append((start, +1))
            events.append((end, -1))

    if not events:
        histogram.add(0, total_cycles)
        return histogram

    events.sort()
    level = 0
    previous_time = 0
    index = 0
    while index < len(events):
        time = events[index][0]
        if time > previous_time:
            histogram.add(level, time - previous_time)
            previous_time = time
        while index < len(events) and events[index][0] == time:
            level += events[index][1]
            index += 1
    if previous_time < total_cycles:
        histogram.add(level, total_cycles - previous_time)
    return histogram
