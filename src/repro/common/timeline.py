"""Occupancy timelines for queues.

Figure 6 of the paper plots, for each benchmark, how many cycles the AVDQ
(the vector load data queue) held 0, 1, 2, ... busy slots.  The decoupled
simulator records one ``(enter, leave)`` pair per queue element; the
:class:`OccupancyTimeline` sweeps those events to reconstruct the per-cycle
occupancy histogram without stepping cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.common.errors import SimulationError
from repro.common.stats import Histogram


@dataclass(frozen=True)
class Residency:
    """The lifetime of one element inside a queue: ``[enter, leave)``."""

    enter: int
    leave: int

    def __post_init__(self) -> None:
        if self.leave < self.enter:
            raise SimulationError(
                f"queue element leaves ({self.leave}) before it enters ({self.enter})"
            )


class OccupancyTimeline:
    """Records element residencies of a bounded queue and derives statistics.

    Residencies live in two parallel integer lists (one entry per queue
    element, recorded at simulation wind-down for every element of every
    queue); :class:`Residency` views are materialized only on request.
    """

    __slots__ = ("name", "capacity", "_enters", "_leaves")

    def __init__(self, name: str, capacity: int | None = None) -> None:
        self.name = name
        self.capacity = capacity
        self._enters: list[int] = []
        self._leaves: list[int] = []

    def record(self, enter: int, leave: int) -> None:
        """Record that one element occupied a slot during ``[enter, leave)``."""
        if leave > enter:
            self._enters.append(enter)
            self._leaves.append(leave)
        elif leave < enter:
            raise SimulationError(
                f"queue element leaves ({leave}) before it enters ({enter})"
            )

    @property
    def residencies(self) -> tuple[Residency, ...]:
        return tuple(
            Residency(enter, leave)
            for enter, leave in zip(self._enters, self._leaves)
        )

    def occupancy_histogram(self, total_cycles: int) -> Histogram:
        """Cycles spent at each occupancy level over ``[0, total_cycles)``."""
        return _histogram_of_events(self._enters, self._leaves, total_cycles)

    def max_occupancy(self) -> int:
        """The largest number of simultaneously-resident elements ever observed."""
        histogram = self.occupancy_histogram(self._horizon())
        occupied_levels = [level for level, count in histogram.items() if count > 0]
        return max(occupied_levels, default=0)

    def mean_occupancy(self, total_cycles: int) -> float:
        """Time-weighted mean number of busy slots over ``[0, total_cycles)``."""
        if total_cycles <= 0:
            return 0.0
        histogram = self.occupancy_histogram(total_cycles)
        weighted = sum(level * cycles for level, cycles in histogram.items())
        return weighted / total_cycles

    def _horizon(self) -> int:
        if not self._leaves:
            return 0
        return max(self._leaves)

    def __len__(self) -> int:
        return len(self._enters)


def occupancy_histogram(
    residencies: Iterable[Residency], total_cycles: int
) -> Histogram:
    """Compute cycles-at-each-occupancy-level from residency records.

    Cycles beyond the lifetime of the last element count as occupancy zero so
    the histogram always sums to ``total_cycles``.
    """
    enters = []
    leaves = []
    for residency in residencies:
        enters.append(residency.enter)
        leaves.append(residency.leave)
    return _histogram_of_events(enters, leaves, total_cycles)


def _histogram_of_events(
    enters: list[int], leaves: list[int], total_cycles: int
) -> Histogram:
    """The occupancy sweep over parallel enter/leave lists."""
    histogram = Histogram()
    if total_cycles <= 0:
        return histogram

    events: list[tuple[int, int]] = []
    for enter, leave in zip(enters, leaves):
        start = enter if enter < total_cycles else total_cycles
        end = leave if leave < total_cycles else total_cycles
        if end > start:
            events.append((start, +1))
            events.append((end, -1))

    if not events:
        histogram.add(0, total_cycles)
        return histogram

    events.sort()
    level = 0
    previous_time = 0
    index = 0
    while index < len(events):
        time = events[index][0]
        if time > previous_time:
            histogram.add(level, time - previous_time)
            previous_time = time
        while index < len(events) and events[index][0] == time:
            level += events[index][1]
            index += 1
    if previous_time < total_cycles:
        histogram.add(level, total_cycles - previous_time)
    return histogram
