"""Shared infrastructure used by every subsystem of the reproduction.

The simulators in :mod:`repro.refarch` and :mod:`repro.dva` are event driven:
instead of stepping the machine cycle by cycle they record, for every hardware
resource, the *intervals* of time during which the resource was busy.  The
helpers in this package turn those interval records back into the per-cycle
quantities the paper reports (functional-unit state breakdowns, queue
occupancy histograms) without ever iterating over individual cycles.
"""

from repro.common.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceError,
    WorkloadError,
)
from repro.common.intervals import (
    Interval,
    IntervalRecorder,
    StateBreakdown,
    merge_intervals,
    state_breakdown,
    total_busy_time,
)
from repro.common.stats import Histogram, RunningStats, geometric_mean, weighted_mean
from repro.common.timeline import OccupancyTimeline, Residency, occupancy_histogram

__all__ = [
    "ConfigurationError",
    "Histogram",
    "Interval",
    "IntervalRecorder",
    "OccupancyTimeline",
    "ReproError",
    "Residency",
    "RunningStats",
    "SimulationError",
    "StateBreakdown",
    "TraceError",
    "WorkloadError",
    "geometric_mean",
    "merge_intervals",
    "occupancy_histogram",
    "state_breakdown",
    "total_busy_time",
    "weighted_mean",
]
