#!/usr/bin/env python
"""Smoke-test the distributed sweep layer end to end (run in CI).

On an ephemeral store directory:

1. a coordinator publishes the manifest for a 12-cell sweep and spawns
   **two** real ``repro worker`` subprocesses that claim cells through
   atomic lease files, simulate them, and write results through the store;
2. the assembled :class:`~repro.core.experiment.SweepResult` covers every
   grid cell and is numerically identical to a serial in-process run;
3. *both* workers claimed and completed at least one cell (the manifest
   was genuinely shared, not drained by one process while the other
   starved);
4. the warm re-run of the same spec publishes nothing, spawns nothing and
   simulates zero cells — everything is answered from the store;
5. ``repro cache gc`` leaves the fresh sweep's coordination state alone.

Exits non-zero (with the failing detail on stderr) on any violation, so a
CI step is just ``python scripts/cluster_smoke.py``.
"""

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import ResultStore, Runner, SweepSpec  # noqa: E402
from repro.cluster import ClusterCoordinator, cluster_status  # noqa: E402

SPEC = SweepSpec(
    programs=("dyfesm", "trfd"),
    latencies=(1, 50, 100),
    architectures=("ref", "dva"),
    scale=1.0,
)
WORKERS = 2


def check(condition, what, context=None):
    if not condition:
        raise SystemExit(
            f"FAIL: {what}\n  context: {json.dumps(context, indent=2, default=str)}"
        )
    print(f"ok: {what}")


def main():
    with tempfile.TemporaryDirectory(prefix="repro-cluster-smoke-") as root:
        store = ResultStore(root)
        coordinator = ClusterCoordinator(store)

        # 1-2: cold distributed run, compared cell-for-cell against serial.
        result = coordinator.run_distributed(
            SPEC, workers=WORKERS, timeout=600.0
        )
        check(len(result) == len(SPEC), f"all {len(SPEC)} grid cells assembled")
        check(
            result.simulated_count == len(SPEC) and result.cached_count == 0,
            "cold run simulated every cell",
            {"simulated": result.simulated_count, "cached": result.cached_count},
        )
        with tempfile.TemporaryDirectory(prefix="repro-serial-") as serial_root:
            serial = Runner(jobs=1, store=ResultStore(serial_root)).run(SPEC)
        check(
            result == serial,
            "distributed result is identical to a serial run",
            {
                "distributed": [r.total_cycles for r in result],
                "serial": [r.total_cycles for r in serial],
            },
        )

        # 3: the manifest was genuinely shared between the two processes.
        status = cluster_status(store)
        workers = [
            row for sweep in status["sweeps"] for row in sweep["workers"]
        ]
        check(
            len(workers) == WORKERS,
            f"{WORKERS} workers reported status",
            status,
        )
        for row in workers:
            check(
                row["claimed"] + row["stolen"] >= 1 and row["completed"] >= 1,
                f"worker {row['worker']} claimed and completed cells "
                f"(claimed={row['claimed']} stolen={row['stolen']} "
                f"completed={row['completed']})",
                status,
            )
        check(
            sum(row["completed"] for row in workers) == len(SPEC),
            "workers completed exactly the full grid between them",
            status,
        )
        check(
            all(row["failed"] == 0 for row in workers),
            "no worker reported failures",
            status,
        )

        # 4: warm re-run — store answers everything, nothing spawns.
        warm = coordinator.run_distributed(SPEC, workers=WORKERS)
        check(
            warm.simulated_count == 0 and warm.cached_count == len(SPEC),
            "warm re-run simulated zero cells",
            {"simulated": warm.simulated_count, "cached": warm.cached_count},
        )
        after = cluster_status(store)
        check(
            len(after["sweeps"]) == len(status["sweeps"]),
            "warm re-run published no new manifest",
            after,
        )

        # 5: gc leaves fresh (recently-touched) coordination state alone.
        report = store.gc()
        check(
            report["cluster_sweeps_reaped"] == 0
            and report["cluster_claims_reaped"] == 0,
            "cache gc left the fresh sweep's cluster state alone",
            report,
        )

    print("cluster smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
