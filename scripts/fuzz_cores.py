#!/usr/bin/env python
"""Differential fuzzer: the event core against the tick oracle.

Generates seeded random (machine, program, latency) cases via
:mod:`repro.core.fuzz` and asserts that the event-driven skip-ahead core
reproduces the tick core exactly — total cycles, per-category stall
counters, final scoreboard, and even the text of any simulation error.

Every case is deterministic in ``(--seed, index)``, so a failing batch
always prints the one-case repro command:

    PYTHONPATH=src python scripts/fuzz_cores.py --seed <master> --case <index>

Run a batch from the repository root:

    PYTHONPATH=src python scripts/fuzz_cores.py --seed 20260808 --cases 200
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core.fuzz import (  # noqa: E402
    DEFAULT_SEED,
    case_seed,
    generate_case,
    repro_command,
    run_case,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help=f"master seed; every case derives from it (default: {DEFAULT_SEED})",
    )
    parser.add_argument(
        "--cases", type=int, default=200,
        help="number of cases to run (default: 200)",
    )
    parser.add_argument(
        "--case", type=int, default=None, metavar="INDEX",
        help="run exactly one case by index (the minimized repro mode)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="print every case description, not just failures",
    )
    args = parser.parse_args(argv)

    indices = [args.case] if args.case is not None else range(args.cases)
    failures = 0
    started = time.perf_counter()
    for index in indices:
        case = generate_case(case_seed(args.seed, index))
        if args.verbose:
            print(f"case {index}: {case.describe()}")
        failure = run_case(case)
        if failure is None:
            continue
        failures += 1
        print(f"MISMATCH at case {index}:\n{failure}", file=sys.stderr)
        print(f"  repro: {repro_command(args.seed, index)}", file=sys.stderr)
    elapsed = time.perf_counter() - started
    total = len(list(indices))
    print(
        f"fuzz_cores: {total - failures}/{total} cases identical "
        f"(seed {args.seed}, {elapsed:.1f}s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
