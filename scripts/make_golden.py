#!/usr/bin/env python
"""Regenerate the golden-equivalence snapshot in tests/golden/golden_cycles.json.

The snapshot pins ``total_cycles`` and the key stall counters of every cell of
the grid (six Perfect Club programs x latencies {1, 50, 100} x the paper's
three machines).  It was generated from the pre-engine seed simulators and
must NOT be regenerated casually: the whole point of the file is that the
simulators — today resolved declaratively through ``MachineSpec`` presets —
reproduce the seed timing exactly, however they are implemented.  Regenerate only
when a deliberate, reviewed timing-model change makes the old numbers wrong:

    PYTHONPATH=src python scripts/make_golden.py
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro import Runner, SweepSpec  # noqa: E402

PROGRAMS = ("ARC2D", "BDNA", "DYFESM", "FLO52", "SPEC77", "TRFD")
LATENCIES = (1, 50, 100)
ARCHITECTURES = ("ref", "dva", "dva-nobypass")

# Stall/headline counters pinned per architecture, beyond total_cycles.
COMMON_KEYS = ("instructions", "memory_traffic_bytes",
               "scalar_cache_hits", "scalar_cache_misses")
REF_KEYS = ("dispatch_stall_cycles",)
DVA_KEYS = ("fetch_stall_cycles", "disambiguation_stalls", "bypassed_loads")


def snapshot_keys(architecture: str) -> tuple:
    extra = REF_KEYS if architecture.startswith("ref") else DVA_KEYS
    return ("total_cycles",) + COMMON_KEYS + extra


def main() -> int:
    spec = SweepSpec(
        programs=PROGRAMS, latencies=LATENCIES, architectures=ARCHITECTURES
    )
    sweep = Runner(jobs=1).run(spec)
    cells = {}
    for result in sweep:
        key = f"{result.program}/{result.latency}/{result.architecture}"
        cells[key] = {
            name: result.detail[name] for name in snapshot_keys(result.architecture)
        }

    destination = os.path.join(
        os.path.dirname(__file__), os.pardir, "tests", "golden", "golden_cycles.json"
    )
    os.makedirs(os.path.dirname(destination), exist_ok=True)
    payload = {
        "spec": {
            "programs": list(PROGRAMS),
            "latencies": list(LATENCIES),
            "architectures": list(ARCHITECTURES),
        },
        "cells": cells,
    }
    with open(destination, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.normpath(destination)} ({len(cells)} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
